"""Supplementary benchmark — warehouse batch analytics (§3.3 analytics layer).

Measures the per-outlet / per-rating-class roll-ups that the analytics layer
computes over the Distributed Storage with the batch-compute engine (the
Spark-job equivalent), and checks that the warehouse-side view agrees with the
paper's qualitative contrasts.

Three CI gates live here (no pytest-benchmark dependency):

* ``TestVectorizedEngineGate`` — the columnar execution engine: on a
  >=100k-row table the vectorised ``aggregate``/``scan_columns`` path must run
  a filtered group-by-count roll-up at least 5x faster than the row-at-a-time
  ``scan`` baseline with *identical* results, and stats-only
  ``count``/``min``/``max`` aggregates must complete without a single DFS
  read.
* ``TestGroupedPushdownGate`` — the grouped-aggregation pushdown: the full
  ``rating_class_summary`` roll-up over articles + posts + reactions via
  ``WarehouseTable.aggregate(group_by=...)`` must be at least 5x faster than a
  row-at-a-time baseline that builds the same per-outlet profiles from
  ``scan()`` row dicts, with identical results.
* ``TestParallelScanGate`` — intra-query parallelism: on a >=120k-row table
  whose (simulated) DFS charges a per-read fetch latency, a cold columnar
  scan fanned out over ``compute/executor`` workers must beat the same scan at
  ``workers=1`` while returning byte-identical output.

Any roll-up mismatch fails with a per-group diff, not a bare ``assert``.
When ``BENCH_TIMINGS_JSON`` is set, every gate's wall-clock timings are
written there as JSON (CI uploads the file as a workflow artifact).  Run just
the gates with::

    PYTHONPATH=src python -m pytest benchmarks/bench_warehouse_analytics.py \
        -q -s -k "vectorized or grouped or parallel"
"""

from __future__ import annotations

import json
import os
import random
import time
from collections import Counter, defaultdict
from datetime import datetime, timedelta

import pytest

from repro.compute.executor import LocalExecutor
from repro.core.analytics import (
    OutletActivityProfile,
    WarehouseAnalytics,
    summarize_profiles_by_rating,
)
from repro.models import RatingClass
from repro.storage.warehouse.dfs import DistributedFileSystem
from repro.storage.warehouse.warehouse import Warehouse


# ----------------------------------------------------------------------
# Timing artifact + readable roll-up diffs
# ----------------------------------------------------------------------

_TIMINGS: dict[str, dict[str, float]] = {}


def _record_timing(gate: str, **seconds: float) -> None:
    """Register a gate's wall-clock numbers for the JSON timing artifact."""
    _TIMINGS[gate] = {key: round(value, 6) for key, value in seconds.items()}


@pytest.fixture(scope="session", autouse=True)
def _write_timings_json():
    """Write collected gate timings to ``$BENCH_TIMINGS_JSON`` (CI artifact)."""
    yield
    path = os.environ.get("BENCH_TIMINGS_JSON")
    if not path or not _TIMINGS:
        return
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    payload = {
        "suite": "bench_warehouse_analytics",
        "written_at": datetime.utcnow().isoformat() + "Z",
        "timings_seconds": _TIMINGS,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"\nwrote benchmark timings to {path}")


def _assert_rollups_equal(label: str, expected: dict, actual: dict, limit: int = 20) -> None:
    """Fail with a per-group diff when two roll-up results differ.

    ``expected``/``actual`` map group keys to values (scalars or dicts).  A
    bare ``assert a == b`` on a 40-group roll-up prints two unreadable dict
    literals; this lists exactly the missing / unexpected / differing groups.
    """
    if expected == actual:
        return
    lines = [f"{label}: roll-up results differ"]
    diffs = []
    for key in sorted(expected.keys() - actual.keys(), key=repr):
        diffs.append(f"  missing group {key!r}: expected {expected[key]!r}")
    for key in sorted(actual.keys() - expected.keys(), key=repr):
        diffs.append(f"  unexpected group {key!r}: got {actual[key]!r}")
    for key in sorted(expected.keys() & actual.keys(), key=repr):
        if expected[key] != actual[key]:
            diffs.append(
                f"  group {key!r}: expected {expected[key]!r}, got {actual[key]!r}"
            )
    shown = diffs[:limit]
    if len(diffs) > limit:
        shown.append(f"  ... and {len(diffs) - limit} more differing group(s)")
    pytest.fail("\n".join(lines + shown))


def _best_seconds(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# Paper-scenario roll-ups (pytest-benchmark based)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def analytics(paper_platform):
    if paper_platform.warehouse.total_rows() == 0:
        paper_platform.run_daily_migration()
    return paper_platform.warehouse_analytics()


def test_warehouse_daily_counts(benchmark, analytics, paper_platform):
    counts = benchmark(lambda: analytics.daily_article_counts("covid19"))
    assert sum(counts.values()) > 0
    print(f"\n=== warehouse analytics — daily COVID-19 article counts over {len(counts)} days ===")
    print(f"total topic articles: {sum(counts.values())}, "
          f"peak day: {max(counts, key=counts.get)} ({max(counts.values())} articles)")


def test_warehouse_rating_class_summary(benchmark, analytics, paper_platform):
    summary = benchmark.pedantic(
        lambda: analytics.rating_class_summary(paper_platform.outlet_ratings, "covid19"),
        rounds=3,
        iterations=1,
    )

    print("\n=== warehouse analytics — per rating class roll-up ===")
    print(f"{'class':<12}{'outlets':>8}{'articles':>10}{'topic share':>13}{'reactions/article':>19}")
    for rating_value, stats in summary.items():
        print(
            f"{rating_value:<12}{stats['outlets']:>8.0f}{stats['articles']:>10.0f}"
            f"{stats['mean_topic_share']:>13.2f}{stats['mean_reactions_per_article']:>19.1f}"
        )

    low = [v for k, v in summary.items() if RatingClass(k).is_low_quality]
    high = [v for k, v in summary.items() if RatingClass(k).is_high_quality]
    assert low and high
    mean_low_share = sum(v["mean_topic_share"] for v in low) / len(low)
    mean_high_share = sum(v["mean_topic_share"] for v in high) / len(high)
    mean_low_reach = sum(v["mean_reactions_per_article"] for v in low) / len(low)
    mean_high_reach = sum(v["mean_reactions_per_article"] for v in high) / len(high)
    # The warehouse-side roll-up agrees with the Figure 4/5 contrasts.
    assert mean_low_share > mean_high_share
    assert mean_low_reach > mean_high_reach


# ======================================================================
# Vectorised columnar engine gate
# ======================================================================

N_GATE_ROWS = 120_000
REQUIRED_SPEEDUP = 5.0
REACTION_THRESHOLD = 60_000  # keeps ~40% of rows: selective but not trivial


@pytest.fixture(scope="module")
def gate_table():
    rng = random.Random(99)
    warehouse = Warehouse(block_rows=8192)
    table = warehouse.create_table(
        "events", ["event_id", "outlet", "day", "reactions"], "day", partition_by="value"
    )
    table.append(
        {
            "event_id": i,
            "outlet": f"outlet-{rng.randrange(40)}.example.com",
            "day": f"2020-02-{1 + i % 28:02d}",
            "reactions": rng.randrange(100_000),
        }
        for i in range(N_GATE_ROWS)
    )
    return warehouse, table


def test_vectorized_rollup_speedup_gate(gate_table):
    _warehouse, table = gate_table
    # The gate measures the full vectorized path the tentpole specifies:
    # selection vectors over raw column arrays *plus* the decoded-block LRU
    # cache serving repeated reads (scan(), the baseline, streams and bypasses
    # the cache by design).  That requires the whole table to stay resident —
    # fail loudly if a future resize silently turns this into a cold-read
    # benchmark with a different (≈2x) profile.
    assert table.block_count() <= table.cache_info()["capacity"], (
        "gate table no longer fits the block cache; retune N_GATE_ROWS/block_rows"
    )

    def row_at_a_time() -> dict[str, int]:
        counts: dict[str, int] = {}
        for row in table.scan(
            columns=["outlet", "reactions"],
            predicate=lambda r: r["reactions"] >= REACTION_THRESHOLD,
        ):
            counts[row["outlet"]] = counts.get(row["outlet"], 0) + 1
        return counts

    def vectorized() -> dict[str, int]:
        grouped = table.aggregate(
            {"n": ("count", "*")},
            range_filters=[("reactions", REACTION_THRESHOLD, None)],
            group_by="outlet",
        )
        return {outlet: row["n"] for outlet, row in grouped.items()}

    baseline_result = row_at_a_time()
    vectorized_result = vectorized()
    # identical roll-up, not just close — mismatches print a per-group diff
    _assert_rollups_equal("vectorized group-by-count", baseline_result, vectorized_result)

    baseline = _best_seconds(row_at_a_time)
    fast = _best_seconds(vectorized)
    speedup = baseline / fast if fast > 0 else float("inf")
    _record_timing(
        "vectorized_rollup", row_at_a_time=baseline, vectorized=fast, speedup=speedup
    )
    print(
        f"\n=== vectorised columnar engine — filtered group-by-count over {N_GATE_ROWS} rows ===\n"
        f"row-at-a-time: {baseline * 1e3:8.1f} ms   vectorised: {fast * 1e3:8.1f} ms   "
        f"speedup: {speedup:5.1f}x (gate: >={REQUIRED_SPEEDUP}x)"
    )
    assert speedup >= REQUIRED_SPEEDUP


def test_vectorized_stats_only_aggregates_zero_reads(gate_table):
    warehouse, table = gate_table
    before_reads = warehouse.dfs.read_count
    before_cache = table.cache_info()
    result = table.aggregate(
        {
            "total": ("count", "*"),
            "events": ("count", "event_id"),
            "lo": ("min", "reactions"),
            "hi": ("max", "reactions"),
        }
    )
    reads = warehouse.dfs.read_count - before_reads
    after_cache = table.cache_info()
    print(
        f"\n=== stats-only aggregates over {N_GATE_ROWS} rows: "
        f"{result} with {reads} DFS reads ==="
    )
    assert reads == 0
    # The earlier speedup test warmed the block cache, so also prove no block
    # was touched at all (cached or not) — the answer came from stats alone.
    assert after_cache["hits"] == before_cache["hits"]
    assert after_cache["misses"] == before_cache["misses"]
    assert result["total"] == N_GATE_ROWS and result["events"] == N_GATE_ROWS
    assert result["lo"] == min(table.read_column("reactions"))
    assert result["hi"] == max(table.read_column("reactions"))


# ======================================================================
# Grouped-pushdown gate: rating_class_summary via aggregate()
# ======================================================================

N_PUSHDOWN_ARTICLES = 12_000
N_PUSHDOWN_POSTS = 9_000
N_PUSHDOWN_REACTIONS = 110_000
N_PUSHDOWN_OUTLETS = 48
GROUPED_REQUIRED_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def pushdown_warehouse():
    """Articles + posts + reactions warehouse with per-outlet rating classes.

    Day partitioning over 45 days yields ~135 small blocks across the three
    tables; the cache is sized to that working set (analytics warehouses keep
    their hot history resident).  Reaction volume is heavy-tailed over posts —
    a few viral posts draw most reactions, as in the paper's data — which also
    keeps the per-block ``post_id`` cardinality inside the dictionary budget.
    """
    rng = random.Random(41)
    warehouse = Warehouse(block_rows=8192, cache_blocks=256)
    articles = warehouse.create_table(
        "articles",
        ["url", "outlet_domain", "published_at", "topics"],
        "published_at",
        sort_key=["published_at"],
    )
    posts = warehouse.create_table(
        "posts", ["post_id", "article_url", "created_at"], "created_at"
    )
    reactions = warehouse.create_table(
        "reactions", ["reaction_id", "post_id", "created_at"], "created_at"
    )

    outlets = [f"outlet-{i}.example.com" for i in range(N_PUSHDOWN_OUTLETS)]
    ratings = {
        outlet: list(RatingClass)[i % len(list(RatingClass))]
        for i, outlet in enumerate(outlets)
    }
    start = datetime(2020, 1, 15)

    article_urls = []
    article_rows = []
    for i in range(N_PUSHDOWN_ARTICLES):
        outlet = outlets[rng.randrange(N_PUSHDOWN_OUTLETS)]
        url = f"https://{outlet}/article-{i}"
        article_urls.append(url)
        article_rows.append(
            {
                "url": url,
                "outlet_domain": outlet,
                "published_at": start + timedelta(days=rng.randrange(45),
                                                  minutes=rng.randrange(1440)),
                "topics": ["covid19"] if rng.random() < 0.35 else ["politics"],
            }
        )
    articles.append(article_rows)

    post_ids = []
    post_rows = []
    for i in range(N_PUSHDOWN_POSTS):
        post_ids.append(f"post-{i}")
        post_rows.append(
            {
                "post_id": f"post-{i}",
                "article_url": article_urls[rng.randrange(N_PUSHDOWN_ARTICLES)],
                "created_at": start + timedelta(days=rng.randrange(45)),
            }
        )
    posts.append(post_rows)

    def viral_post_id() -> str:
        # ~97% of reactions land on ~300 viral posts (heavy-tailed reach).
        if rng.random() < 0.97:
            return post_ids[rng.randrange(300)]
        return post_ids[rng.randrange(N_PUSHDOWN_POSTS)]

    reactions.append(
        {
            "reaction_id": f"r-{i}",
            "post_id": viral_post_id(),
            "created_at": start + timedelta(days=rng.randrange(45)),
        }
        for i in range(N_PUSHDOWN_REACTIONS)
    )
    return warehouse, ratings


def _row_at_a_time_rating_summary(warehouse: Warehouse, ratings) -> dict:
    """The pre-pushdown baseline: full row dicts + per-row Python accumulation."""
    articles = warehouse.table("articles")
    url_to_outlet: dict[str, str] = {}
    articles_per_outlet: Counter = Counter()
    topic_per_outlet: Counter = Counter()
    active_days: dict[str, set] = defaultdict(set)
    for row in articles.scan():
        outlet = row["outlet_domain"]
        url_to_outlet[row["url"]] = outlet
        articles_per_outlet[outlet] += 1
        if "covid19" in (row["topics"] or []):
            topic_per_outlet[outlet] += 1
        active_days[outlet].add(row["published_at"].date())

    post_to_outlet: dict[str, str | None] = {}
    posts_per_outlet: Counter = Counter()
    for row in warehouse.table("posts").scan():
        outlet = url_to_outlet.get(row["article_url"])
        post_to_outlet[row["post_id"]] = outlet
        if outlet:
            posts_per_outlet[outlet] += 1

    reactions_per_outlet: Counter = Counter()
    for row in warehouse.table("reactions").scan():
        outlet = post_to_outlet.get(row["post_id"])
        if outlet:
            reactions_per_outlet[outlet] += 1

    profiles = {
        outlet: OutletActivityProfile(
            outlet_domain=outlet,
            articles=count,
            topic_articles=topic_per_outlet.get(outlet, 0),
            active_days=len(active_days[outlet]),
            posts=posts_per_outlet.get(outlet, 0),
            reactions=reactions_per_outlet.get(outlet, 0),
        )
        for outlet, count in articles_per_outlet.items()
    }
    return summarize_profiles_by_rating(profiles, ratings)


def test_grouped_pushdown_rating_summary_gate(pushdown_warehouse):
    warehouse, ratings = pushdown_warehouse
    analytics = WarehouseAnalytics(warehouse)
    n_rows = warehouse.total_rows()

    def pushdown() -> dict:
        return analytics.rating_class_summary(ratings, "covid19")

    baseline_result = _row_at_a_time_rating_summary(warehouse, ratings)
    pushdown_result = pushdown()
    _assert_rollups_equal("rating_class_summary", baseline_result, pushdown_result)

    baseline = _best_seconds(lambda: _row_at_a_time_rating_summary(warehouse, ratings))
    fast = _best_seconds(pushdown)
    speedup = baseline / fast if fast > 0 else float("inf")
    _record_timing(
        "grouped_pushdown_rating_summary",
        row_at_a_time=baseline, pushdown=fast, speedup=speedup,
    )
    print(
        f"\n=== grouped pushdown — rating_class_summary over {n_rows} rows "
        f"({len(ratings)} outlets, {len(baseline_result)} rating classes) ===\n"
        f"row-at-a-time: {baseline * 1e3:8.1f} ms   pushdown: {fast * 1e3:8.1f} ms   "
        f"speedup: {speedup:5.1f}x (gate: >={GROUPED_REQUIRED_SPEEDUP}x)"
    )
    assert speedup >= GROUPED_REQUIRED_SPEEDUP


# ======================================================================
# Parallel scan gate: workers=N beats workers=1, byte-identical output
# ======================================================================

N_PARALLEL_ROWS = 130_000
PARALLEL_WORKERS = 4
#: Simulated per-block fetch latency.  Real DFS reads are remote; parallel
#: scans win by overlapping those fetches (the sleep releases the GIL exactly
#: like socket I/O would).
PARALLEL_READ_LATENCY = 0.002
PARALLEL_REQUIRED_SPEEDUP = 1.15


def test_parallel_scan_beats_serial_gate():
    rng = random.Random(7)
    dfs = DistributedFileSystem(read_latency=PARALLEL_READ_LATENCY)
    # cache_blocks=0: every run is a cold scan that pays the fetch latency —
    # the scenario block-level parallelism exists for.
    warehouse = Warehouse(dfs=dfs, block_rows=8192, cache_blocks=0)
    table = warehouse.create_table(
        "events", ["event_id", "outlet", "day", "reactions"], "day", partition_by="value"
    )
    table.append(
        {
            "event_id": i,
            "outlet": f"outlet-{rng.randrange(40)}.example.com",
            "day": f"2020-02-{1 + i % 28:02d}",
            "reactions": rng.randrange(100_000),
        }
        for i in range(N_PARALLEL_ROWS)
    )
    serial_executor = LocalExecutor(max_workers=1)
    parallel_executor = LocalExecutor(max_workers=PARALLEL_WORKERS)

    def scan(executor: LocalExecutor) -> list:
        return list(
            table.scan_columns(
                ["outlet", "reactions"],
                range_filters=[("reactions", 40_000, None)],
                executor=executor,
            )
        )

    serial_result = scan(serial_executor)
    parallel_result = scan(parallel_executor)
    # byte-identical output, not merely equal: serialise both and compare.
    serial_bytes = json.dumps(serial_result).encode("utf-8")
    parallel_bytes = json.dumps(parallel_result).encode("utf-8")
    assert serial_bytes == parallel_bytes

    serial = _best_seconds(lambda: scan(serial_executor))
    parallel = _best_seconds(lambda: scan(parallel_executor))
    speedup = serial / parallel if parallel > 0 else float("inf")
    _record_timing(
        "parallel_scan", workers_1=serial, workers_n=parallel, speedup=speedup,
    )
    print(
        f"\n=== parallel columnar scan — {N_PARALLEL_ROWS} rows, "
        f"{table.block_count()} blocks, {PARALLEL_READ_LATENCY * 1e3:.0f} ms/block fetch ===\n"
        f"workers=1: {serial * 1e3:8.1f} ms   workers={PARALLEL_WORKERS}: "
        f"{parallel * 1e3:8.1f} ms   speedup: {speedup:5.2f}x "
        f"(gate: >={PARALLEL_REQUIRED_SPEEDUP}x, byte-identical output)"
    )
    assert speedup >= PARALLEL_REQUIRED_SPEEDUP
