"""Supplementary benchmark — warehouse batch analytics (§3.3 analytics layer).

Measures the per-outlet / per-rating-class roll-ups that the analytics layer
computes over the Distributed Storage with the batch-compute engine (the
Spark-job equivalent), and checks that the warehouse-side view agrees with the
paper's qualitative contrasts.
"""

from __future__ import annotations

import pytest

from repro.models import RatingClass


@pytest.fixture(scope="module")
def analytics(paper_platform):
    if paper_platform.warehouse.total_rows() == 0:
        paper_platform.run_daily_migration()
    return paper_platform.warehouse_analytics()


def test_warehouse_daily_counts(benchmark, analytics, paper_platform):
    counts = benchmark(lambda: analytics.daily_article_counts("covid19"))
    assert sum(counts.values()) > 0
    print(f"\n=== warehouse analytics — daily COVID-19 article counts over {len(counts)} days ===")
    print(f"total topic articles: {sum(counts.values())}, "
          f"peak day: {max(counts, key=counts.get)} ({max(counts.values())} articles)")


def test_warehouse_rating_class_summary(benchmark, analytics, paper_platform):
    summary = benchmark.pedantic(
        lambda: analytics.rating_class_summary(paper_platform.outlet_ratings, "covid19"),
        rounds=3,
        iterations=1,
    )

    print("\n=== warehouse analytics — per rating class roll-up ===")
    print(f"{'class':<12}{'outlets':>8}{'articles':>10}{'topic share':>13}{'reactions/article':>19}")
    for rating_value, stats in summary.items():
        print(
            f"{rating_value:<12}{stats['outlets']:>8.0f}{stats['articles']:>10.0f}"
            f"{stats['mean_topic_share']:>13.2f}{stats['mean_reactions_per_article']:>19.1f}"
        )

    low = [v for k, v in summary.items() if RatingClass(k).is_low_quality]
    high = [v for k, v in summary.items() if RatingClass(k).is_high_quality]
    assert low and high
    mean_low_share = sum(v["mean_topic_share"] for v in low) / len(low)
    mean_high_share = sum(v["mean_topic_share"] for v in high) / len(high)
    mean_low_reach = sum(v["mean_reactions_per_article"] for v in low) / len(low)
    mean_high_reach = sum(v["mean_reactions_per_article"] for v in high) / len(high)
    # The warehouse-side roll-up agrees with the Figure 4/5 contrasts.
    assert mean_low_share > mean_high_share
    assert mean_low_reach > mean_high_reach
