"""Supplementary benchmark — warehouse batch analytics (§3.3 analytics layer).

Measures the per-outlet / per-rating-class roll-ups that the analytics layer
computes over the Distributed Storage with the batch-compute engine (the
Spark-job equivalent), and checks that the warehouse-side view agrees with the
paper's qualitative contrasts.

Eight CI gates live here (no pytest-benchmark dependency):

* ``TestVectorizedEngineGate`` — the columnar execution engine: on a
  >=100k-row table the vectorised ``aggregate``/``scan_columns`` path must run
  a filtered group-by-count roll-up at least 5x faster than the row-at-a-time
  ``scan`` baseline with *identical* results, and stats-only
  ``count``/``min``/``max`` aggregates must complete without a single DFS
  read.
* ``TestGroupedPushdownGate`` — the grouped-aggregation pushdown: the full
  ``rating_class_summary`` roll-up over articles + posts + reactions via
  ``WarehouseTable.aggregate(group_by=...)`` must be at least 5x faster than a
  row-at-a-time baseline that builds the same per-outlet profiles from
  ``scan()`` row dicts, with identical results.
* ``TestParallelScanGate`` — intra-query parallelism: on a >=120k-row table
  whose (simulated) DFS charges a per-read fetch latency, a cold columnar
  scan fanned out over ``compute/executor`` workers must beat the same scan at
  ``workers=1`` while returning byte-identical output.
* ``TestCompressedDecodeGate`` — GIL-releasing block decode: with **zero**
  DFS read latency, a cold grouped aggregate over zlib-compressed
  format-4 blocks at ``workers=4`` must beat ``workers=1`` with
  byte-identical results (the speedup half of the gate needs a second CPU
  core and is skipped on single-core machines; byte-identity always runs).
* ``TestCompactionGate`` — per-partition compaction: a table fragmented by
  many small appends must shrink to at most a quarter of its block count,
  the DFS must hand back the freed bytes, and scans/aggregates must return
  byte-identical results before and after.
* ``TestMaterializedRollupGate`` — incremental materialized roll-ups: a warm
  materialized read must answer a grouped roll-up at least 5x faster than
  the direct grouped scan with identical per-group results, the
  migration-style refresh after an append must re-read only the changed
  partition, and the refreshed state must stay identical to the live path.
* ``TestCdcFreshnessGate`` — continuous change-data capture: after each burst
  of operational writes, one WAL-tail publish + delta apply must make every
  row visible in the warehouse within ``CDC_MAX_VISIBLE_LATENCY_S`` (the
  write→visible freshness budget), beat a full batch re-copy of the table,
  and leave merged base+delta reads bit-identical to a fresh batch copy of
  the final RDBMS state.
* ``TestWarehouseRecoveryGate`` — restart recovery: reopening a table over
  its existing DFS blocks via the persisted manifest must be at least 5x
  faster than the cold bootstrap batch copy of the same rows, rebuild the
  exactly-once delta index (a redelivered delta batch lands zero rows), and
  serve bit-identical merged reads.

Any roll-up mismatch fails with a per-group diff, not a bare ``assert``.
When ``BENCH_TIMINGS_JSON`` is set, every gate's wall-clock timings are
written there as ``gate -> {baseline_s, optimized_s, speedup}`` JSON — the
same schema as the committed ``BENCH_warehouse.json`` trajectory seed, so CI
artifacts append directly to it.  Run just the gates with::

    PYTHONPATH=src python -m pytest benchmarks/bench_warehouse_analytics.py \
        -q -s -k "vectorized or grouped or parallel or compressed or compaction \
        or rollup or freshness"
"""

from __future__ import annotations

import json
import os
import random
import time
from collections import Counter, defaultdict
from datetime import datetime, timedelta

import pytest

from _timings import record_gate_timing
from repro.compute.executor import LocalExecutor
from repro.core.analytics import (
    OutletActivityProfile,
    WarehouseAnalytics,
    summarize_profiles_by_rating,
)
from repro.models import RatingClass
from repro.storage.cdc import CdcPublisher, DeltaApplier
from repro.storage.migration import MigrationJob
from repro.storage.rdbms.database import Database
from repro.storage.rdbms.expressions import col
from repro.storage.rdbms.schema import Column, ColumnType, TableSchema
from repro.storage.warehouse.dfs import DistributedFileSystem
from repro.storage.warehouse.rollups import RollupSpec
from repro.storage.warehouse.warehouse import Warehouse
from repro.streaming.broker import MessageBroker


# ----------------------------------------------------------------------
# Timing artifact + readable roll-up diffs
# ----------------------------------------------------------------------

def _record_gate(gate: str, baseline_s: float, optimized_s: float) -> None:
    """Register a gate's timings in the trajectory schema.

    Every gate lands as ``gate -> {baseline_s, optimized_s, speedup}`` —
    the schema of the committed ``BENCH_warehouse.json`` seed, so each CI
    run's artifact is one more point on the same perf trajectory.  The
    shared session fixture in ``conftest.py`` writes the
    ``BENCH_TIMINGS_JSON`` file.
    """
    record_gate_timing("bench_warehouse_analytics", gate, baseline_s, optimized_s)


def _assert_rollups_equal(label: str, expected: dict, actual: dict, limit: int = 20) -> None:
    """Fail with a per-group diff when two roll-up results differ.

    ``expected``/``actual`` map group keys to values (scalars or dicts).  A
    bare ``assert a == b`` on a 40-group roll-up prints two unreadable dict
    literals; this lists exactly the missing / unexpected / differing groups.
    """
    if expected == actual:
        return
    lines = [f"{label}: roll-up results differ"]
    diffs = []
    for key in sorted(expected.keys() - actual.keys(), key=repr):
        diffs.append(f"  missing group {key!r}: expected {expected[key]!r}")
    for key in sorted(actual.keys() - expected.keys(), key=repr):
        diffs.append(f"  unexpected group {key!r}: got {actual[key]!r}")
    for key in sorted(expected.keys() & actual.keys(), key=repr):
        if expected[key] != actual[key]:
            diffs.append(
                f"  group {key!r}: expected {expected[key]!r}, got {actual[key]!r}"
            )
    shown = diffs[:limit]
    if len(diffs) > limit:
        shown.append(f"  ... and {len(diffs) - limit} more differing group(s)")
    pytest.fail("\n".join(lines + shown))


def _best_seconds(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# Paper-scenario roll-ups (pytest-benchmark based)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def analytics(paper_platform):
    if paper_platform.warehouse.total_rows() == 0:
        paper_platform.run_daily_migration()
    return paper_platform.warehouse_analytics()


def test_warehouse_daily_counts(benchmark, analytics, paper_platform):
    counts = benchmark(lambda: analytics.daily_article_counts("covid19"))
    assert sum(counts.values()) > 0
    print(f"\n=== warehouse analytics — daily COVID-19 article counts over {len(counts)} days ===")
    print(f"total topic articles: {sum(counts.values())}, "
          f"peak day: {max(counts, key=counts.get)} ({max(counts.values())} articles)")


def test_warehouse_rating_class_summary(benchmark, analytics, paper_platform):
    summary = benchmark.pedantic(
        lambda: analytics.rating_class_summary(paper_platform.outlet_ratings, "covid19"),
        rounds=3,
        iterations=1,
    )

    print("\n=== warehouse analytics — per rating class roll-up ===")
    print(f"{'class':<12}{'outlets':>8}{'articles':>10}{'topic share':>13}{'reactions/article':>19}")
    for rating_value, stats in summary.items():
        print(
            f"{rating_value:<12}{stats['outlets']:>8.0f}{stats['articles']:>10.0f}"
            f"{stats['mean_topic_share']:>13.2f}{stats['mean_reactions_per_article']:>19.1f}"
        )

    low = [v for k, v in summary.items() if RatingClass(k).is_low_quality]
    high = [v for k, v in summary.items() if RatingClass(k).is_high_quality]
    assert low and high
    mean_low_share = sum(v["mean_topic_share"] for v in low) / len(low)
    mean_high_share = sum(v["mean_topic_share"] for v in high) / len(high)
    mean_low_reach = sum(v["mean_reactions_per_article"] for v in low) / len(low)
    mean_high_reach = sum(v["mean_reactions_per_article"] for v in high) / len(high)
    # The warehouse-side roll-up agrees with the Figure 4/5 contrasts.
    assert mean_low_share > mean_high_share
    assert mean_low_reach > mean_high_reach


# ======================================================================
# Vectorised columnar engine gate
# ======================================================================

N_GATE_ROWS = 120_000
REQUIRED_SPEEDUP = 5.0
REACTION_THRESHOLD = 60_000  # keeps ~40% of rows: selective but not trivial


@pytest.fixture(scope="module")
def gate_table():
    rng = random.Random(99)
    warehouse = Warehouse(block_rows=8192)
    table = warehouse.create_table(
        "events", ["event_id", "outlet", "day", "reactions"], "day", partition_by="value"
    )
    table.append(
        {
            "event_id": i,
            "outlet": f"outlet-{rng.randrange(40)}.example.com",
            "day": f"2020-02-{1 + i % 28:02d}",
            "reactions": rng.randrange(100_000),
        }
        for i in range(N_GATE_ROWS)
    )
    return warehouse, table


def test_vectorized_rollup_speedup_gate(gate_table):
    _warehouse, table = gate_table
    # The gate measures the full vectorized path the tentpole specifies:
    # selection vectors over raw column arrays *plus* the decoded-block LRU
    # cache serving repeated reads (scan(), the baseline, streams and bypasses
    # the cache by design).  That requires the whole table to stay resident —
    # fail loudly if a future resize silently turns this into a cold-read
    # benchmark with a different (≈2x) profile.
    assert table.block_count() <= table.cache_info()["capacity"], (
        "gate table no longer fits the block cache; retune N_GATE_ROWS/block_rows"
    )

    def row_at_a_time() -> dict[str, int]:
        counts: dict[str, int] = {}
        for row in table.scan(
            columns=["outlet", "reactions"],
            predicate=lambda r: r["reactions"] >= REACTION_THRESHOLD,
        ):
            counts[row["outlet"]] = counts.get(row["outlet"], 0) + 1
        return counts

    def vectorized() -> dict[str, int]:
        grouped = table.aggregate(
            {"n": ("count", "*")},
            range_filters=[("reactions", REACTION_THRESHOLD, None)],
            group_by="outlet",
        )
        return {outlet: row["n"] for outlet, row in grouped.items()}

    baseline_result = row_at_a_time()
    vectorized_result = vectorized()
    # identical roll-up, not just close — mismatches print a per-group diff
    _assert_rollups_equal("vectorized group-by-count", baseline_result, vectorized_result)

    baseline = _best_seconds(row_at_a_time)
    fast = _best_seconds(vectorized)
    speedup = baseline / fast if fast > 0 else float("inf")
    _record_gate("vectorized_rollup", baseline, fast)
    print(
        f"\n=== vectorised columnar engine — filtered group-by-count over {N_GATE_ROWS} rows ===\n"
        f"row-at-a-time: {baseline * 1e3:8.1f} ms   vectorised: {fast * 1e3:8.1f} ms   "
        f"speedup: {speedup:5.1f}x (gate: >={REQUIRED_SPEEDUP}x)"
    )
    assert speedup >= REQUIRED_SPEEDUP


def test_vectorized_stats_only_aggregates_zero_reads(gate_table):
    warehouse, table = gate_table
    before_reads = warehouse.dfs.read_count
    before_cache = table.cache_info()
    result = table.aggregate(
        {
            "total": ("count", "*"),
            "events": ("count", "event_id"),
            "lo": ("min", "reactions"),
            "hi": ("max", "reactions"),
        }
    )
    reads = warehouse.dfs.read_count - before_reads
    after_cache = table.cache_info()
    print(
        f"\n=== stats-only aggregates over {N_GATE_ROWS} rows: "
        f"{result} with {reads} DFS reads ==="
    )
    assert reads == 0
    # The earlier speedup test warmed the block cache, so also prove no block
    # was touched at all (cached or not) — the answer came from stats alone.
    assert after_cache["hits"] == before_cache["hits"]
    assert after_cache["misses"] == before_cache["misses"]
    assert result["total"] == N_GATE_ROWS and result["events"] == N_GATE_ROWS
    assert result["lo"] == min(table.read_column("reactions"))
    assert result["hi"] == max(table.read_column("reactions"))


# ======================================================================
# Grouped-pushdown gate: rating_class_summary via aggregate()
# ======================================================================

N_PUSHDOWN_ARTICLES = 12_000
N_PUSHDOWN_POSTS = 9_000
N_PUSHDOWN_REACTIONS = 110_000
N_PUSHDOWN_OUTLETS = 48
GROUPED_REQUIRED_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def pushdown_warehouse():
    """Articles + posts + reactions warehouse with per-outlet rating classes.

    Day partitioning over 45 days yields ~135 small blocks across the three
    tables; the cache is sized to that working set (analytics warehouses keep
    their hot history resident).  Reaction volume is heavy-tailed over posts —
    a few viral posts draw most reactions, as in the paper's data — which also
    keeps the per-block ``post_id`` cardinality inside the dictionary budget.
    """
    rng = random.Random(41)
    warehouse = Warehouse(block_rows=8192, cache_blocks=256)
    articles = warehouse.create_table(
        "articles",
        ["url", "outlet_domain", "published_at", "topics"],
        "published_at",
        sort_key=["published_at"],
    )
    posts = warehouse.create_table(
        "posts", ["post_id", "article_url", "created_at"], "created_at"
    )
    reactions = warehouse.create_table(
        "reactions", ["reaction_id", "post_id", "created_at"], "created_at"
    )

    outlets = [f"outlet-{i}.example.com" for i in range(N_PUSHDOWN_OUTLETS)]
    ratings = {
        outlet: list(RatingClass)[i % len(list(RatingClass))]
        for i, outlet in enumerate(outlets)
    }
    start = datetime(2020, 1, 15)

    article_urls = []
    article_rows = []
    for i in range(N_PUSHDOWN_ARTICLES):
        outlet = outlets[rng.randrange(N_PUSHDOWN_OUTLETS)]
        url = f"https://{outlet}/article-{i}"
        article_urls.append(url)
        article_rows.append(
            {
                "url": url,
                "outlet_domain": outlet,
                "published_at": start + timedelta(days=rng.randrange(45),
                                                  minutes=rng.randrange(1440)),
                "topics": ["covid19"] if rng.random() < 0.35 else ["politics"],
            }
        )
    articles.append(article_rows)

    post_ids = []
    post_rows = []
    for i in range(N_PUSHDOWN_POSTS):
        post_ids.append(f"post-{i}")
        post_rows.append(
            {
                "post_id": f"post-{i}",
                "article_url": article_urls[rng.randrange(N_PUSHDOWN_ARTICLES)],
                "created_at": start + timedelta(days=rng.randrange(45)),
            }
        )
    posts.append(post_rows)

    def viral_post_id() -> str:
        # ~97% of reactions land on ~300 viral posts (heavy-tailed reach).
        if rng.random() < 0.97:
            return post_ids[rng.randrange(300)]
        return post_ids[rng.randrange(N_PUSHDOWN_POSTS)]

    reactions.append(
        {
            "reaction_id": f"r-{i}",
            "post_id": viral_post_id(),
            "created_at": start + timedelta(days=rng.randrange(45)),
        }
        for i in range(N_PUSHDOWN_REACTIONS)
    )
    return warehouse, ratings


def _row_at_a_time_rating_summary(warehouse: Warehouse, ratings) -> dict:
    """The pre-pushdown baseline: full row dicts + per-row Python accumulation."""
    articles = warehouse.table("articles")
    url_to_outlet: dict[str, str] = {}
    articles_per_outlet: Counter = Counter()
    topic_per_outlet: Counter = Counter()
    active_days: dict[str, set] = defaultdict(set)
    for row in articles.scan():
        outlet = row["outlet_domain"]
        url_to_outlet[row["url"]] = outlet
        articles_per_outlet[outlet] += 1
        if "covid19" in (row["topics"] or []):
            topic_per_outlet[outlet] += 1
        active_days[outlet].add(row["published_at"].date())

    post_to_outlet: dict[str, str | None] = {}
    posts_per_outlet: Counter = Counter()
    for row in warehouse.table("posts").scan():
        outlet = url_to_outlet.get(row["article_url"])
        post_to_outlet[row["post_id"]] = outlet
        if outlet:
            posts_per_outlet[outlet] += 1

    reactions_per_outlet: Counter = Counter()
    for row in warehouse.table("reactions").scan():
        outlet = post_to_outlet.get(row["post_id"])
        if outlet:
            reactions_per_outlet[outlet] += 1

    profiles = {
        outlet: OutletActivityProfile(
            outlet_domain=outlet,
            articles=count,
            topic_articles=topic_per_outlet.get(outlet, 0),
            active_days=len(active_days[outlet]),
            posts=posts_per_outlet.get(outlet, 0),
            reactions=reactions_per_outlet.get(outlet, 0),
        )
        for outlet, count in articles_per_outlet.items()
    }
    return summarize_profiles_by_rating(profiles, ratings)


def test_grouped_pushdown_rating_summary_gate(pushdown_warehouse):
    warehouse, ratings = pushdown_warehouse
    analytics = WarehouseAnalytics(warehouse)
    n_rows = warehouse.total_rows()

    def pushdown() -> dict:
        return analytics.rating_class_summary(ratings, "covid19")

    baseline_result = _row_at_a_time_rating_summary(warehouse, ratings)
    pushdown_result = pushdown()
    _assert_rollups_equal("rating_class_summary", baseline_result, pushdown_result)

    baseline = _best_seconds(lambda: _row_at_a_time_rating_summary(warehouse, ratings))
    fast = _best_seconds(pushdown)
    speedup = baseline / fast if fast > 0 else float("inf")
    _record_gate("grouped_pushdown_rating_summary", baseline, fast)
    print(
        f"\n=== grouped pushdown — rating_class_summary over {n_rows} rows "
        f"({len(ratings)} outlets, {len(baseline_result)} rating classes) ===\n"
        f"row-at-a-time: {baseline * 1e3:8.1f} ms   pushdown: {fast * 1e3:8.1f} ms   "
        f"speedup: {speedup:5.1f}x (gate: >={GROUPED_REQUIRED_SPEEDUP}x)"
    )
    assert speedup >= GROUPED_REQUIRED_SPEEDUP


# ======================================================================
# Parallel scan gate: workers=N beats workers=1, byte-identical output
# ======================================================================

N_PARALLEL_ROWS = 130_000
PARALLEL_WORKERS = 4
#: Simulated per-block fetch latency.  Real DFS reads are remote; parallel
#: scans win by overlapping those fetches (the sleep releases the GIL exactly
#: like socket I/O would).
PARALLEL_READ_LATENCY = 0.002
PARALLEL_REQUIRED_SPEEDUP = 1.15


def test_parallel_scan_beats_serial_gate():
    rng = random.Random(7)
    dfs = DistributedFileSystem(read_latency=PARALLEL_READ_LATENCY)
    # cache_blocks=0: every run is a cold scan that pays the fetch latency —
    # the scenario block-level parallelism exists for.
    warehouse = Warehouse(dfs=dfs, block_rows=8192, cache_blocks=0)
    table = warehouse.create_table(
        "events", ["event_id", "outlet", "day", "reactions"], "day", partition_by="value"
    )
    table.append(
        {
            "event_id": i,
            "outlet": f"outlet-{rng.randrange(40)}.example.com",
            "day": f"2020-02-{1 + i % 28:02d}",
            "reactions": rng.randrange(100_000),
        }
        for i in range(N_PARALLEL_ROWS)
    )
    serial_executor = LocalExecutor(max_workers=1)
    parallel_executor = LocalExecutor(max_workers=PARALLEL_WORKERS)

    def scan(executor: LocalExecutor) -> list:
        return list(
            table.scan_columns(
                ["outlet", "reactions"],
                range_filters=[("reactions", 40_000, None)],
                executor=executor,
            )
        )

    serial_result = scan(serial_executor)
    parallel_result = scan(parallel_executor)
    # byte-identical output, not merely equal: serialise both and compare.
    serial_bytes = json.dumps(serial_result).encode("utf-8")
    parallel_bytes = json.dumps(parallel_result).encode("utf-8")
    assert serial_bytes == parallel_bytes

    serial = _best_seconds(lambda: scan(serial_executor))
    parallel = _best_seconds(lambda: scan(parallel_executor))
    speedup = serial / parallel if parallel > 0 else float("inf")
    _record_gate("parallel_scan", serial, parallel)
    print(
        f"\n=== parallel columnar scan — {N_PARALLEL_ROWS} rows, "
        f"{table.block_count()} blocks, {PARALLEL_READ_LATENCY * 1e3:.0f} ms/block fetch ===\n"
        f"workers=1: {serial * 1e3:8.1f} ms   workers={PARALLEL_WORKERS}: "
        f"{parallel * 1e3:8.1f} ms   speedup: {speedup:5.2f}x "
        f"(gate: >={PARALLEL_REQUIRED_SPEEDUP}x, byte-identical output)"
    )
    assert speedup >= PARALLEL_REQUIRED_SPEEDUP


# ======================================================================
# Compressed-decode gate: workers overlap zlib decode at zero latency
# ======================================================================

N_COMPRESSED_ROWS = 130_000
COMPRESSED_WORKERS = 4
#: zlib decompression + typed-array materialisation release the GIL, so the
#: fan-out genuinely wins on multi-core machines even with instant (0 ms)
#: block fetches.  The margin is deliberately modest: shared CI runners give
#: 2-4 noisy cores and most per-block work (header JSON parse, selection,
#: grouping) stays GIL-bound Python.
COMPRESSED_REQUIRED_SPEEDUP = 1.05


def _compressed_table() -> tuple[Warehouse, "object"]:
    rng = random.Random(23)
    # read_latency=0 (the default): any parallel win must come from decode
    # overlap alone.  cache_blocks=0 keeps every run a cold decode.
    warehouse = Warehouse(block_rows=8192, cache_blocks=0)
    table = warehouse.create_table(
        "events", ["event_id", "outlet", "day", "reactions"], "day", partition_by="value"
    )
    table.append(
        {
            "event_id": i,
            "outlet": f"outlet-{rng.randrange(40)}.example.com",
            "day": f"2020-02-{1 + i % 28:02d}",
            "reactions": rng.randrange(100_000),
        }
        for i in range(N_COMPRESSED_ROWS)
    )
    return warehouse, table


def _grouped_rollup_bytes(table, executor: LocalExecutor) -> bytes:
    grouped = table.aggregate(
        {"n": ("count", "*"), "hi": ("max", "reactions")},
        range_filters=[("reactions", 30_000, None)],
        group_by="outlet",
        executor=executor,
    )
    return json.dumps(
        {outlet: row for outlet, row in sorted(grouped.items())}
    ).encode("utf-8")


def _grouped_count_bytes(table, executor: LocalExecutor) -> bytes:
    """The timed gate workload: a cold unfiltered grouped count.

    Thanks to lazy column materialisation this touches only the group
    column's dictionary codes per block, so roughly half of the per-block
    work is GIL-releasing zlib decompression — the part worker threads can
    genuinely overlap on a multi-core machine.
    """
    grouped = table.aggregate(
        {"n": ("count", "*")}, group_by="outlet", executor=executor
    )
    return json.dumps(
        {outlet: row for outlet, row in sorted(grouped.items())}
    ).encode("utf-8")


def test_compressed_blocks_shrink_the_wire():
    _warehouse, table = _compressed_table()
    stats = table.storage_stats()
    ratio = stats["compression_ratio"]
    print(
        f"\n=== compressed block format — {N_COMPRESSED_ROWS} rows, "
        f"{stats['block_count']} blocks ===\n"
        f"uncompressed: {stats['uncompressed_bytes']:>10} B   "
        f"wire: {stats['compressed_bytes']:>10} B   ratio: {ratio:.2f}x"
    )
    assert ratio >= 1.5, "zlib should shrink typical analytics blocks"


def test_compressed_decode_workers_beat_serial_gate():
    warehouse, table = _compressed_table()
    assert warehouse.dfs.read_latency == 0
    serial_executor = LocalExecutor(max_workers=1)
    parallel_executor = LocalExecutor(max_workers=COMPRESSED_WORKERS)

    # Byte-identical results at every worker count, always checked (the
    # deterministic merge must hold regardless of core count) — on the timed
    # grouped count and on a filtered + multi-aggregate variant.
    assert _grouped_count_bytes(table, serial_executor) == _grouped_count_bytes(
        table, parallel_executor
    )
    assert _grouped_rollup_bytes(table, serial_executor) == _grouped_rollup_bytes(
        table, parallel_executor
    )

    if (os.cpu_count() or 1) < 2:
        pytest.skip(
            "decode overlap needs a second core: zlib releases the GIL but a "
            "single CPU cannot run two decompressions at once"
        )

    serial = _best_seconds(lambda: _grouped_count_bytes(table, serial_executor), repeats=5)
    parallel = _best_seconds(lambda: _grouped_count_bytes(table, parallel_executor), repeats=5)
    speedup = serial / parallel if parallel > 0 else float("inf")
    _record_gate("compressed_decode", serial, parallel)
    print(
        f"\n=== compressed parallel decode — {N_COMPRESSED_ROWS} rows, "
        f"{table.block_count()} blocks, 0 ms read latency ===\n"
        f"workers=1: {serial * 1e3:8.1f} ms   workers={COMPRESSED_WORKERS}: "
        f"{parallel * 1e3:8.1f} ms   speedup: {speedup:5.2f}x "
        f"(gate: >={COMPRESSED_REQUIRED_SPEEDUP}x, byte-identical output)"
    )
    assert speedup >= COMPRESSED_REQUIRED_SPEEDUP


# ======================================================================
# Compaction gate: fewer blocks, less DFS space, identical results
# ======================================================================

N_COMPACTION_APPENDS = 40
COMPACTION_ROWS_PER_APPEND = 600
#: A fragmented partition must shrink to at most a quarter of its blocks.
COMPACTION_MAX_BLOCK_FRACTION = 0.25


def _fragmented_table() -> tuple[Warehouse, "object"]:
    """A day-partitioned table fed by many small appends (no sort key, so row
    order — and therefore scan output — is preserved bit-for-bit across
    compaction)."""
    rng = random.Random(51)
    warehouse = Warehouse(block_rows=8192, cache_blocks=0)
    table = warehouse.create_table(
        "events", ["event_id", "outlet", "day", "reactions"], "day", partition_by="value"
    )
    for batch in range(N_COMPACTION_APPENDS):
        table.append(
            {
                "event_id": batch * COMPACTION_ROWS_PER_APPEND + i,
                "outlet": f"outlet-{rng.randrange(40)}.example.com",
                "day": f"2020-02-{1 + i % 14:02d}",
                "reactions": rng.randrange(100_000),
            }
            for i in range(COMPACTION_ROWS_PER_APPEND)
        )
    return warehouse, table


def _scan_bytes(table) -> bytes:
    return json.dumps(
        list(
            table.scan_filtered(
                columns=["event_id", "outlet", "reactions"],
                range_filters=[("reactions", 20_000, None)],
            )
        )
    ).encode("utf-8")


def test_compaction_shrinks_blocks_and_preserves_results_gate():
    warehouse, table = _fragmented_table()
    dfs = warehouse.dfs

    blocks_before = table.block_count()
    used_before = sum(node.used_bytes for node in dfs.nodes.values())
    rollup_before = _grouped_rollup_bytes(table, LocalExecutor(max_workers=1))
    scan_before = _scan_bytes(table)
    fragmented_scan_s = _best_seconds(lambda: _scan_bytes(table))

    reports = warehouse.compact()

    blocks_after = table.block_count()
    used_after = sum(node.used_bytes for node in dfs.nodes.values())
    assert blocks_after <= blocks_before * COMPACTION_MAX_BLOCK_FRACTION, (
        blocks_before, blocks_after,
    )
    assert used_after < used_before, "compaction must free DFS space"
    # Every node's running counter still agrees with its resident replicas.
    for node in dfs.nodes.values():
        assert node.used_bytes == sum(len(data) for data in node.blocks.values())

    # Identical results, byte for byte: grouped aggregate and filtered scan.
    assert _grouped_rollup_bytes(table, LocalExecutor(max_workers=1)) == rollup_before
    assert _scan_bytes(table) == scan_before

    compacted_scan_s = _best_seconds(lambda: _scan_bytes(table))
    speedup = fragmented_scan_s / compacted_scan_s if compacted_scan_s > 0 else float("inf")
    _record_gate("compaction_scan", fragmented_scan_s, compacted_scan_s)
    n_partitions = len(reports["events"])
    print(
        f"\n=== per-partition compaction — {table.row_count()} rows, "
        f"{n_partitions} partitions rewritten ===\n"
        f"blocks: {blocks_before} -> {blocks_after}   "
        f"dfs bytes: {used_before} -> {used_after}   "
        f"scan: {fragmented_scan_s * 1e3:.1f} ms -> {compacted_scan_s * 1e3:.1f} ms "
        f"({speedup:.2f}x)"
    )


# ======================================================================
# Materialized roll-up gate: warm reads >=5x vs direct grouped scan
# ======================================================================

N_ROLLUP_ROWS = 120_000
ROLLUP_REQUIRED_SPEEDUP = 5.0
ROLLUP_AGGREGATES = {
    "n": ("count", "*"),
    "total": ("sum", "reactions"),
    "hi": ("max", "reactions"),
}


def test_materialized_rollup_beats_direct_scan_gate():
    rng = random.Random(67)
    warehouse = Warehouse(block_rows=8192)
    table = warehouse.create_table(
        "events", ["event_id", "outlet", "day", "reactions"], "day", partition_by="value"
    )
    table.append(
        {
            "event_id": i,
            "outlet": f"outlet-{rng.randrange(40)}.example.com",
            "day": f"2020-02-{1 + i % 28:02d}",
            "reactions": rng.randrange(100_000),
        }
        for i in range(N_ROLLUP_ROWS)
    )
    rollup = warehouse.register_rollup(
        RollupSpec(
            name="events_by_outlet", table="events",
            aggregates=ROLLUP_AGGREGATES, group_by=("outlet",),
        ),
        refresh=True,
    )

    def direct() -> dict:
        return table.aggregate(ROLLUP_AGGREGATES, group_by="outlet")

    def materialized() -> dict:
        result = rollup.result_if_fresh()
        assert result is not None, "roll-up unexpectedly stale"
        return result

    # Identical per-group results (mismatches print a per-group diff) — on
    # the initial state and again after a migration-style append + refresh.
    _assert_rollups_equal("materialized roll-up", direct(), materialized())

    reads_before = warehouse.dfs.read_count
    table.append([{
        "event_id": N_ROLLUP_ROWS, "outlet": "outlet-0.example.com",
        "day": "2020-02-03", "reactions": 77,
    }])
    report = rollup.refresh()
    incremental_reads = warehouse.dfs.read_count - reads_before
    assert report.refreshed_partitions == ("2020-02-03",)
    # Incremental refresh: only the changed partition's blocks may be read
    # (served from cache here, so the DFS counter stays at 0-2 reads).
    assert incremental_reads <= len(table.partition_signature("2020-02-03"))
    _assert_rollups_equal("materialized roll-up after append", direct(), materialized())

    # The direct baseline runs warm (whole table resident in the block
    # cache), so the gate measures pure aggregation work vs the materialized
    # read — not a cold-read artefact.
    assert table.block_count() <= table.cache_info()["capacity"]
    baseline = _best_seconds(direct)
    fast = _best_seconds(materialized)
    speedup = baseline / fast if fast > 0 else float("inf")
    _record_gate("rollup_warm_read", baseline, fast)
    print(
        f"\n=== materialized roll-up — grouped roll-up over {table.row_count()} rows, "
        f"{table.block_count()} blocks, {len(materialized())} groups ===\n"
        f"direct grouped scan: {baseline * 1e3:8.1f} ms   "
        f"warm materialized read: {fast * 1e3:8.3f} ms   "
        f"speedup: {speedup:7.1f}x (gate: >={ROLLUP_REQUIRED_SPEEDUP}x, "
        f"incremental refresh read {incremental_reads} block(s))"
    )
    assert speedup >= ROLLUP_REQUIRED_SPEEDUP


# ======================================================================
# CDC freshness gate: write -> visible latency + delta-merge identity
# ======================================================================

N_CDC_BASE_ROWS = 30_000
N_CDC_PASSES = 6
CDC_ROWS_PER_PASS = 400
#: Freshness budget: worst write -> warehouse-visible latency over all CDC
#: passes, measured from the WAL record's commit stamp to the moment the
#: delta applier lands it (``CdcApplyReport.max_latency_s``).
CDC_MAX_VISIBLE_LATENCY_S = 0.5
#: One publish + apply pass must beat re-running the batch copy of the whole
#: table (the pre-CDC nightly-migration alternative) by a wide margin.
CDC_REQUIRED_SPEEDUP = 2.0


def _cdc_schema() -> TableSchema:
    return TableSchema(
        name="events",
        primary_key="event_id",
        columns=(
            Column("event_id", ColumnType.INTEGER, nullable=False),
            Column("outlet", ColumnType.TEXT),
            Column("reactions", ColumnType.FLOAT),
            Column("created_at", ColumnType.TIMESTAMP, nullable=False),
        ),
    )


def test_cdc_freshness_gate():
    rng = random.Random(83)
    start = datetime(2020, 2, 1)
    db = Database()
    db.create_table(_cdc_schema())

    def event(i: int) -> dict:
        return {
            "event_id": i,
            "outlet": f"outlet-{rng.randrange(40)}.example.com",
            # non-terminating binary expansions so bit-level float drift in
            # the merge path would break the identity check below
            "reactions": rng.randrange(1_000_000) / 7,
            "created_at": start + timedelta(days=i % 28, minutes=i % 1440),
        }

    for i in range(N_CDC_BASE_ROWS):
        db.insert("events", event(i))

    def wire(warehouse: Warehouse) -> MigrationJob:
        job = MigrationJob(db, warehouse)
        job.add_table("events", partition_column="created_at")
        return job

    warehouse = Warehouse(block_rows=8192)
    job = wire(warehouse)
    broker = MessageBroker(default_partitions=4)
    publisher = CdcPublisher(db, broker)
    for mapping in job.mappings():
        publisher.add_mapping(mapping)
    applier = DeltaApplier(warehouse, broker, job.mappings())
    bootstrap = job.run()
    publisher.skip_to(bootstrap.cursor_lsn)

    # Bursts of operational writes (inserts + an update + a delete each), each
    # followed by exactly one publish + apply pass — the continuous loop the
    # platform's cdc_sync job runs.
    worst_latency = 0.0
    apply_s = 0.0
    next_id = N_CDC_BASE_ROWS
    for burst in range(N_CDC_PASSES):
        for _ in range(CDC_ROWS_PER_PASS):
            db.insert("events", event(next_id))
            next_id += 1
        db.update("events", col("event_id") == next_id - 1, {"reactions": 99.0 / 7})
        db.delete("events", col("event_id") == burst)
        began = time.perf_counter()
        publisher.publish()
        report = applier.apply()
        apply_s += time.perf_counter() - began
        assert report.rows > 0
        worst_latency = max(worst_latency, report.max_latency_s)
    apply_s /= N_CDC_PASSES

    # Merged base+delta reads must be bit-identical to a fresh batch copy of
    # the final RDBMS state — per partition and on a float aggregate.
    merged = warehouse.table("events")
    copied_warehouse = Warehouse(block_rows=8192)
    wire(copied_warehouse).run()
    copied = copied_warehouse.table("events")
    assert merged.partitions() == copied.partitions()
    for partition in copied.partitions():
        assert repr(list(merged.scan(partitions=[partition]))) == repr(
            list(copied.scan(partitions=[partition]))
        )
    aggregates = {"total": ("sum", "reactions"), "n": ("count", "*")}
    assert repr(merged.aggregate(aggregates)) == repr(copied.aggregate(aggregates))

    # The batch alternative: how long making those rows visible used to take.
    def batch_recopy() -> None:
        wire(Warehouse(block_rows=8192)).run()

    baseline = _best_seconds(batch_recopy)
    speedup = baseline / apply_s if apply_s > 0 else float("inf")
    _record_gate("cdc_freshness", baseline, apply_s)
    print(
        f"\n=== CDC freshness — {N_CDC_PASSES} bursts of {CDC_ROWS_PER_PASS} writes "
        f"over a {N_CDC_BASE_ROWS}-row base ===\n"
        f"batch re-copy: {baseline * 1e3:8.1f} ms   publish+apply: {apply_s * 1e3:8.1f} ms   "
        f"speedup: {speedup:5.1f}x (gate: >={CDC_REQUIRED_SPEEDUP}x)\n"
        f"worst write->visible latency: {worst_latency * 1e3:.1f} ms "
        f"(gate: <={CDC_MAX_VISIBLE_LATENCY_S * 1e3:.0f} ms, merged reads bit-identical)"
    )
    assert worst_latency <= CDC_MAX_VISIBLE_LATENCY_S
    assert speedup >= CDC_REQUIRED_SPEEDUP


# ======================================================================
# Restart-recovery gate: manifest reopen vs cold bootstrap copy
# ======================================================================

N_RECOVERY_ROWS = 30_000
N_RECOVERY_DELTAS = 800
#: Reopening from the persisted manifest must beat re-copying the rows.
RECOVERY_REQUIRED_SPEEDUP = 5.0

_RECOVERY_COLUMNS = ["item_id", "day", "score"]


def _recovery_create(warehouse: Warehouse, recover: bool = True):
    return warehouse.create_table(
        "items", _RECOVERY_COLUMNS, "day", partition_by="value",
        primary_key="item_id", recover=recover,
    )


def test_warehouse_restart_recovery_gate():
    rng = random.Random(73)
    rows = [
        {
            "item_id": i,
            "day": f"2020-02-{1 + i % 10:02d}",
            # non-terminating binary expansions: bit drift would fail identity
            "score": rng.randrange(1_000_000) / 7,
        }
        for i in range(N_RECOVERY_ROWS)
    ]
    warehouse = Warehouse(block_rows=2048, cache_blocks=0)
    table = _recovery_create(warehouse)
    table.append(rows)
    # A delta tail on top of the base, so recovery has an exactly-once
    # index to rebuild, not just block metadata.
    deltas = [
        (N_RECOVERY_ROWS + j, "u",
         {**rows[rng.randrange(N_RECOVERY_ROWS)], "score": rng.randrange(1_000_000) / 7})
        for j in range(N_RECOVERY_DELTAS)
    ]
    table.append_deltas(deltas, primary_key="item_id")
    expected = repr(sorted(
        (r["item_id"], r["day"], r["score"]) for r in table.scan()
    ))
    final_rows = list(table.scan())

    # Baseline: the restart strategy without persisted state — bootstrap a
    # fresh table by batch-copying the final rows.
    def cold_bootstrap() -> None:
        fresh = Warehouse(block_rows=2048, cache_blocks=0)
        _recovery_create(fresh).append(final_rows)

    baseline = _best_seconds(cold_bootstrap)

    # Optimized: reopen over the existing DFS blocks via the manifest.
    def reopen():
        reopened_wh = Warehouse(warehouse.dfs, block_rows=2048, cache_blocks=0)
        reopened = _recovery_create(reopened_wh, recover=False)
        return reopened, reopened.recover()

    optimized = _best_seconds(lambda: reopen())
    recovered, report = reopen()
    assert report["source"] == "manifest"
    assert report["delta_high_water"] == N_RECOVERY_ROWS + N_RECOVERY_DELTAS - 1

    # Bit-identical merged reads, exactly-once index intact: redelivering
    # the full delta tail against the recovered table lands zero rows.
    assert repr(sorted(
        (r["item_id"], r["day"], r["score"]) for r in recovered.scan()
    )) == expected
    assert recovered.append_deltas(deltas, primary_key="item_id") == 0
    ids = [r["item_id"] for r in recovered.scan()]
    assert len(ids) == len(set(ids))

    speedup = baseline / optimized if optimized > 0 else float("inf")
    _record_gate("warehouse_recovery", baseline, optimized)
    print(
        f"\n=== restart recovery — {N_RECOVERY_ROWS} base rows + "
        f"{N_RECOVERY_DELTAS} deltas ===\n"
        f"cold bootstrap copy: {baseline * 1e3:8.1f} ms   "
        f"manifest reopen: {optimized * 1e3:8.1f} ms   "
        f"speedup: {speedup:5.1f}x (gate: >={RECOVERY_REQUIRED_SPEEDUP}x)"
    )
    assert speedup >= RECOVERY_REQUIRED_SPEEDUP
