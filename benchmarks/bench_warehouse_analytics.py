"""Supplementary benchmark — warehouse batch analytics (§3.3 analytics layer).

Measures the per-outlet / per-rating-class roll-ups that the analytics layer
computes over the Distributed Storage with the batch-compute engine (the
Spark-job equivalent), and checks that the warehouse-side view agrees with the
paper's qualitative contrasts.

The ``TestVectorizedEngineGate`` half is the CI gate for the columnar
execution engine: on a >=100k-row table it requires the vectorised
``aggregate``/``scan_columns`` path to run a filtered group-by-count roll-up
at least 5x faster than the row-at-a-time ``scan`` baseline with *identical*
results, and stats-only ``count``/``min``/``max`` aggregates to complete
without a single DFS read.  Run just the gate with::

    PYTHONPATH=src python -m pytest benchmarks/bench_warehouse_analytics.py -q -s -k vectorized
"""

from __future__ import annotations

import random
import time

import pytest

from repro.models import RatingClass
from repro.storage.warehouse.warehouse import Warehouse


@pytest.fixture(scope="module")
def analytics(paper_platform):
    if paper_platform.warehouse.total_rows() == 0:
        paper_platform.run_daily_migration()
    return paper_platform.warehouse_analytics()


def test_warehouse_daily_counts(benchmark, analytics, paper_platform):
    counts = benchmark(lambda: analytics.daily_article_counts("covid19"))
    assert sum(counts.values()) > 0
    print(f"\n=== warehouse analytics — daily COVID-19 article counts over {len(counts)} days ===")
    print(f"total topic articles: {sum(counts.values())}, "
          f"peak day: {max(counts, key=counts.get)} ({max(counts.values())} articles)")


def test_warehouse_rating_class_summary(benchmark, analytics, paper_platform):
    summary = benchmark.pedantic(
        lambda: analytics.rating_class_summary(paper_platform.outlet_ratings, "covid19"),
        rounds=3,
        iterations=1,
    )

    print("\n=== warehouse analytics — per rating class roll-up ===")
    print(f"{'class':<12}{'outlets':>8}{'articles':>10}{'topic share':>13}{'reactions/article':>19}")
    for rating_value, stats in summary.items():
        print(
            f"{rating_value:<12}{stats['outlets']:>8.0f}{stats['articles']:>10.0f}"
            f"{stats['mean_topic_share']:>13.2f}{stats['mean_reactions_per_article']:>19.1f}"
        )

    low = [v for k, v in summary.items() if RatingClass(k).is_low_quality]
    high = [v for k, v in summary.items() if RatingClass(k).is_high_quality]
    assert low and high
    mean_low_share = sum(v["mean_topic_share"] for v in low) / len(low)
    mean_high_share = sum(v["mean_topic_share"] for v in high) / len(high)
    mean_low_reach = sum(v["mean_reactions_per_article"] for v in low) / len(low)
    mean_high_reach = sum(v["mean_reactions_per_article"] for v in high) / len(high)
    # The warehouse-side roll-up agrees with the Figure 4/5 contrasts.
    assert mean_low_share > mean_high_share
    assert mean_low_reach > mean_high_reach


# ======================================================================
# Vectorised columnar engine gate (no pytest-benchmark dependency)
# ======================================================================

N_GATE_ROWS = 120_000
REQUIRED_SPEEDUP = 5.0
REACTION_THRESHOLD = 60_000  # keeps ~40% of rows: selective but not trivial


@pytest.fixture(scope="module")
def gate_table():
    rng = random.Random(99)
    warehouse = Warehouse(block_rows=8192)
    table = warehouse.create_table(
        "events", ["event_id", "outlet", "day", "reactions"], "day", partition_by="value"
    )
    table.append(
        {
            "event_id": i,
            "outlet": f"outlet-{rng.randrange(40)}.example.com",
            "day": f"2020-02-{1 + i % 28:02d}",
            "reactions": rng.randrange(100_000),
        }
        for i in range(N_GATE_ROWS)
    )
    return warehouse, table


def _best_seconds(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_vectorized_rollup_speedup_gate(gate_table):
    _warehouse, table = gate_table
    # The gate measures the full vectorized path the tentpole specifies:
    # selection vectors over raw column arrays *plus* the decoded-block LRU
    # cache serving repeated reads (scan(), the baseline, streams and bypasses
    # the cache by design).  That requires the whole table to stay resident —
    # fail loudly if a future resize silently turns this into a cold-read
    # benchmark with a different (≈2x) profile.
    assert table.block_count() <= table.cache_info()["capacity"], (
        "gate table no longer fits the block cache; retune N_GATE_ROWS/block_rows"
    )

    def row_at_a_time() -> dict[str, int]:
        counts: dict[str, int] = {}
        for row in table.scan(
            columns=["outlet", "reactions"],
            predicate=lambda r: r["reactions"] >= REACTION_THRESHOLD,
        ):
            counts[row["outlet"]] = counts.get(row["outlet"], 0) + 1
        return counts

    def vectorized() -> dict[str, int]:
        grouped = table.aggregate(
            {"n": ("count", "*")},
            range_filters=[("reactions", REACTION_THRESHOLD, None)],
            group_by="outlet",
        )
        return {outlet: row["n"] for outlet, row in grouped.items()}

    baseline_result = row_at_a_time()
    vectorized_result = vectorized()
    assert vectorized_result == baseline_result  # identical roll-up, not just close

    baseline = _best_seconds(row_at_a_time)
    fast = _best_seconds(vectorized)
    speedup = baseline / fast if fast > 0 else float("inf")
    print(
        f"\n=== vectorised columnar engine — filtered group-by-count over {N_GATE_ROWS} rows ===\n"
        f"row-at-a-time: {baseline * 1e3:8.1f} ms   vectorised: {fast * 1e3:8.1f} ms   "
        f"speedup: {speedup:5.1f}x (gate: >={REQUIRED_SPEEDUP}x)"
    )
    assert speedup >= REQUIRED_SPEEDUP


def test_vectorized_stats_only_aggregates_zero_reads(gate_table):
    warehouse, table = gate_table
    before_reads = warehouse.dfs.read_count
    before_cache = table.cache_info()
    result = table.aggregate(
        {
            "total": ("count", "*"),
            "events": ("count", "event_id"),
            "lo": ("min", "reactions"),
            "hi": ("max", "reactions"),
        }
    )
    reads = warehouse.dfs.read_count - before_reads
    after_cache = table.cache_info()
    print(
        f"\n=== stats-only aggregates over {N_GATE_ROWS} rows: "
        f"{result} with {reads} DFS reads ==="
    )
    assert reads == 0
    # The earlier speedup test warmed the block cache, so also prove no block
    # was touched at all (cached or not) — the answer came from stats alone.
    assert after_cache["hits"] == before_cache["hits"]
    assert after_cache["misses"] == before_cache["misses"]
    assert result["total"] == N_GATE_ROWS and result["events"] == N_GATE_ROWS
    assert result["lo"] == min(table.read_column("reactions"))
    assert result["hi"] == max(table.read_column("reactions"))
