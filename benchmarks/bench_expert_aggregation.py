"""Experiment E6 — §3.2: weighted, time-sensitive expert-review aggregation.

Measures the cost and behaviour of the review-aggregation maths: for a stream
of reviews arriving over the 60-day window, the aggregate must stay on the
Likert scale, weigh recent reviews more heavily, and remain cheap enough to be
recomputed on every page view.
"""

from __future__ import annotations

from datetime import timedelta

from repro.experts.aggregation import ReviewAggregator
from repro.experts.consensus import consensus_report
from repro.experts.reviewers import ReviewerPool
from repro.models import LIKERT_MAX, LIKERT_MIN


def test_expert_aggregation_scales_with_review_volume(benchmark, paper_scenario):
    """Aggregate 500 reviews spread over the window for one article."""
    pool = ReviewerPool(n_reviewers=25, random_seed=17)
    article_id = "art-benchmark-expert"
    reviews = []
    for day in range(50):
        created_at = paper_scenario.window_start + timedelta(days=day, hours=12)
        reviews.extend(pool.review_article(article_id, 0.72, created_at, n_reviews=10))
    as_of = paper_scenario.window_end
    aggregator = ReviewAggregator(half_life_days=30.0)

    summary = benchmark(lambda: aggregator.summarize(article_id, reviews, as_of=as_of))

    print("\n=== §3.2 — weighted, time-sensitive expert aggregation ===")
    print(f"reviews aggregated : {summary.n_reviews}")
    for criterion, score in sorted(summary.criterion_scores.items()):
        print(f"  {criterion:<26}{score:6.2f}")
    print(f"overall quality    : {summary.overall_quality:.3f}")

    benchmark.extra_info.update(
        {"n_reviews": summary.n_reviews, "overall_quality": round(summary.overall_quality, 3)}
    )
    assert summary.n_reviews == len(reviews)
    assert all(LIKERT_MIN <= v <= LIKERT_MAX for v in summary.criterion_scores.values())
    # The latent quality of 0.72 should be recovered within a reasonable band.
    assert 0.55 <= summary.overall_quality <= 0.9


def test_expert_time_decay_tracks_quality_drift(benchmark, paper_scenario):
    """Recent reviews dominate: if quality drifts, the aggregate follows it."""
    pool = ReviewerPool(n_reviewers=10, random_seed=23)
    article_id = "art-benchmark-drift"
    early = []
    late = []
    for day in range(10):
        early.extend(pool.review_article(article_id, 0.2,
                                         paper_scenario.window_start + timedelta(days=day), n_reviews=3))
    for day in range(50, 60):
        late.extend(pool.review_article(article_id, 0.9,
                                        paper_scenario.window_start + timedelta(days=day), n_reviews=3))
    aggregator = ReviewAggregator(half_life_days=14.0)
    as_of = paper_scenario.window_end

    summary = benchmark(lambda: aggregator.summarize(article_id, early + late, as_of=as_of))

    unweighted_mean = 0.5 * (0.2 + 0.9)
    print("\n=== §3.2 — time sensitivity of the expert aggregate ===")
    print(f"early latent quality 0.2 (days 0-9), late latent quality 0.9 (days 50-59)")
    print(f"time-sensitive aggregate : {summary.overall_quality:.3f}")
    print(f"naive (unweighted) value : ~{unweighted_mean:.3f}")

    benchmark.extra_info["aggregate"] = round(summary.overall_quality, 3)
    # The time-sensitive average leans clearly towards the recent assessments.
    assert summary.overall_quality > unweighted_mean + 0.1


def test_indicator_augmentation_improves_consensus(benchmark):
    """The paper claims the augmented view gives users better consensus; the
    consensus metrics must report that improvement for assessments whose
    spread shrinks once indicators are available."""
    import numpy as np

    rng = np.random.default_rng(41)
    articles = [f"a{i}" for i in range(100)]
    true_quality = {a: rng.uniform(1, 5) for a in articles}
    without = {a: list(np.clip(rng.normal(true_quality[a], 1.4, size=5), 1, 5)) for a in articles}
    with_ind = {a: list(np.clip(rng.normal(true_quality[a], 0.6, size=5), 1, 5)) for a in articles}

    report = benchmark(lambda: consensus_report(without, with_ind))

    print("\n=== §1 claim — consensus with vs without indicators ===")
    for key, value in report.items():
        print(f"  {key:<32}{value:8.3f}")
    assert report["agreement_improvement"] > 0
    assert report["variance_reduction"] > 0
