"""Ablation A1 — how well each indicator family separates outlet quality.

DESIGN.md calls out the fusion of three heterogeneous indicator families as a
core design choice.  This ablation measures, on the COVID-19 segment, how well
each family alone — and the fused automated score — separates articles from
low-quality outlets from articles from high-quality outlets (ROC AUC against
the outlet ranking), mirroring the indicator-utility evaluation of the
underlying SciLens paper.
"""

from __future__ import annotations

from repro.ml.metrics import roc_auc_score


def _collect_scores(platform, scenario, limit_per_group: int = 120):
    low_domains = {p.domain for p in scenario.outlets.low_quality()}
    high_domains = {p.domain for p in scenario.outlets.high_quality()}

    labels = []
    family_scores = {"content": [], "context": [], "social": [], "fused": []}
    counts = {"low": 0, "high": 0}
    for generated in scenario.topic_articles():
        domain = generated.article.outlet_domain
        if domain in low_domains and counts["low"] < limit_per_group:
            label = 0
            counts["low"] += 1
        elif domain in high_domains and counts["high"] < limit_per_group:
            label = 1
            counts["high"] += 1
        else:
            continue
        article = platform.get_article_by_url(generated.url)
        assessment = platform.evaluate_article(article.article_id)
        labels.append(label)
        scores = assessment.profile.family_scores()
        family_scores["content"].append(scores["content"])
        family_scores["context"].append(scores["context"])
        family_scores["social"].append(scores["social"])
        family_scores["fused"].append(assessment.profile.automated_score)
    return labels, family_scores


def test_ablation_indicator_families(benchmark, paper_platform, paper_scenario):
    labels, family_scores = benchmark.pedantic(
        lambda: _collect_scores(paper_platform, paper_scenario), rounds=1, iterations=1
    )

    aucs = {
        family: roc_auc_score(labels, scores, positive=1)
        for family, scores in family_scores.items()
    }

    print("\n=== Ablation A1 — outlet-quality separation per indicator family (ROC AUC) ===")
    print(f"articles evaluated: {len(labels)} (positive = high-quality outlet)")
    for family in ("content", "context", "social", "fused"):
        print(f"  {family:<10}{aucs[family]:8.3f}")

    benchmark.extra_info.update({f"auc_{k}": round(v, 3) for k, v in aucs.items()})

    # Every family carries signal on its own...
    assert aucs["content"] > 0.6
    assert aucs["context"] > 0.6
    # ...and the fused automated score separates the classes at least as well
    # as the weakest family and strongly overall.
    assert aucs["fused"] > 0.75
    assert aucs["fused"] >= min(aucs["content"], aucs["context"], aucs["social"])
