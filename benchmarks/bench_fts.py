"""CI gate — full-text search as an access path (BM25 posting-list segments).

One gate lives here (no pytest-benchmark dependency):

* ``TestFtsSearchGate`` — on a 100k-article synthetic corpus (zipfian
  vocabulary, deterministic rng), answering a mixed query set (rare terms,
  AND pairs, prefix terms) from the segment-backed :class:`FtsIndex` must be
  at least 5x faster than a brute-force full scan over the *pre-tokenized*
  corpus — and return **identical ranked results**, doc ids and BM25 scores
  compared with ``==``, not ``approx``.  The baseline is deliberately
  generous: it pays no tokenization cost inside the timed region and uses
  the engine's own scoring arithmetic, so the measured gap is purely
  access-path (posting lists + lazy segment decode vs. scan-everything).

The gate records its timings as ``fts_search`` in the
``bench_warehouse_analytics`` suite, joining the committed
``BENCH_warehouse.json`` perf trajectory.
"""

from __future__ import annotations

import random
import time

import pytest

from _timings import record_gate_timing
from repro.storage.fts import FtsIndex, bm25_term_score, parse_query
from repro.storage.fts.analysis import analyze
from repro.storage.warehouse.dfs import DistributedFileSystem

N_DOCS = 100_000
VOCAB_SIZE = 1_200
FLUSH_EVERY = 20_000  # five segments: the search path must merge postings
MIN_SPEEDUP = 5.0


def _word(index: int) -> str:
    """A purely alphabetic pseudo-word for vocabulary slot ``index``."""
    letters = []
    value = index
    for _ in range(5):
        value, digit = divmod(value, 26)
        letters.append(chr(ord("a") + digit))
    return "".join(reversed(letters))


def build_corpus(n_docs: int = N_DOCS, seed: int = 7) -> list[tuple[str, str]]:
    """``(doc_id, text)`` pairs with a zipfian vocabulary (rank-weighted)."""
    rng = random.Random(seed)
    vocab = [_word(i) for i in range(VOCAB_SIZE)]
    weights = [1.0 / (rank + 1) for rank in range(VOCAB_SIZE)]
    corpus = []
    for i in range(n_docs):
        length = rng.randrange(8, 16)
        corpus.append((f"a{i:06d}", " ".join(rng.choices(vocab, weights, k=length))))
    return corpus


def query_set(corpus: list[tuple[str, str]]) -> list[str]:
    """Rare single terms, AND pairs, and prefix queries.

    The AND pairs are drawn from actual documents (two distinct tokens of
    the same doc), so every query is guaranteed at least one hit regardless
    of how the zipfian draw landed.
    """
    rare = [_word(i) for i in (803, 911, 1057)]
    mid = [_word(i) for i in (120, 260, 390)]
    queries = list(rare)
    for position in (5_000, 50_000, 95_000):
        tokens = sorted(set(corpus[position][1].split()))
        queries.append(f"{tokens[0]} {tokens[-1]}")
    queries += [rare[0][:4] + "*", mid[1][:4] + "*"]
    return queries


class BruteForceSearcher:
    """Full-scan baseline sharing the engine's analysis and arithmetic.

    Holds the corpus pre-tokenized (its untimed "index build"), then answers
    every query by scanning all documents per term — the access path the FTS
    segments exist to avoid.
    """

    def __init__(self, corpus: list[tuple[str, str]]) -> None:
        self.docs = {doc_id: analyze(text) for doc_id, text in corpus}
        self.total_len = sum(len(tokens) for tokens in self.docs.values())

    def search(self, query: str) -> list[tuple[str, float]]:
        terms = parse_query(query)
        if not terms or not self.docs:
            return []
        tf_maps = []
        for term in terms:
            tf_map: dict[str, int] = {}
            for doc_id, tokens in self.docs.items():
                if term.prefix:
                    tf = sum(1 for token in tokens if token.startswith(term.term))
                else:
                    tf = sum(1 for token in tokens if token == term.term)
                if tf:
                    tf_map[doc_id] = tf
            if not tf_map:
                return []
            tf_maps.append(tf_map)
        matched = set(tf_maps[0])
        for tf_map in tf_maps[1:]:
            matched &= set(tf_map)
        n_docs = len(self.docs)
        results = []
        for doc_id in matched:
            doc_len = len(self.docs[doc_id])
            score = 0.0
            for tf_map in tf_maps:
                score += bm25_term_score(
                    tf_map[doc_id], len(tf_map), n_docs, doc_len, self.total_len
                )
            results.append((doc_id, score))
        results.sort(key=lambda pair: (-pair[1], (isinstance(pair[0], str), pair[0])))
        return results


def _best_seconds(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def corpus():
    return build_corpus()


@pytest.fixture(scope="module")
def fts_index(corpus):
    dfs = DistributedFileSystem(n_nodes=3, replication=2)
    index = FtsIndex("bench", dfs=dfs, flush_docs=None)
    for position, (doc_id, text) in enumerate(corpus, start=1):
        index.add(doc_id, text=text)
        if position % FLUSH_EVERY == 0:
            index.flush()
    index.flush()
    return index


@pytest.fixture(scope="module")
def brute_force(corpus):
    return BruteForceSearcher(corpus)


class TestFtsSearchGate:
    def test_fts_search_speedup_with_identical_rankings(self, corpus, fts_index, brute_force):
        queries = query_set(corpus)

        # Correctness first: every query's full ranked list must be
        # identical — ids, order, and exact float scores.
        for query in queries:
            fast = fts_index.search(query)
            slow = brute_force.search(query)
            if fast != slow:
                preview_fast = fast[:5]
                preview_slow = slow[:5]
                pytest.fail(
                    f"ranking mismatch for {query!r}: "
                    f"index returned {len(fast)} hits {preview_fast!r}..., "
                    f"brute force {len(slow)} hits {preview_slow!r}..."
                )
            assert fast, f"query {query!r} found nothing — corpus drifted"

        def run_indexed():
            for query in queries:
                fts_index.search(query)

        def run_brute_force():
            for query in queries:
                brute_force.search(query)

        optimized_s = _best_seconds(run_indexed, repeats=3)
        baseline_s = _best_seconds(run_brute_force, repeats=2)
        record_gate_timing("bench_warehouse_analytics", "fts_search", baseline_s, optimized_s)
        speedup = baseline_s / optimized_s
        print(
            f"\n=== fts search gate: {len(queries)} queries over {N_DOCS} docs, "
            f"{fts_index.stats()['segments']} segments ===\n"
            f"brute force {baseline_s:.4f}s, fts {optimized_s:.4f}s, speedup {speedup:.1f}x"
        )
        assert speedup >= MIN_SPEEDUP, (
            f"fts_index_scan speedup {speedup:.2f}x below the {MIN_SPEEDUP}x gate "
            f"(baseline {baseline_s:.4f}s, optimized {optimized_s:.4f}s)"
        )

    def test_fts_search_matches_planner_candidates(self, corpus, fts_index, brute_force):
        # The unscored candidate sets agree too (what the planner consumes).
        for query in query_set(corpus):
            assert fts_index.match_ids(query) == {
                doc_id for doc_id, _ in brute_force.search(query)
            }
