"""Shared fixtures for the benchmark harness.

The ``paper_scenario`` / ``paper_platform`` fixtures rebuild the §4 COVID-19
data segment at paper scale (45 outlets, the full 60-day window 2020-01-15 →
2020-03-15) with a reduced per-outlet article volume so that the whole harness
runs in minutes on a laptop.  Every benchmark then measures the *platform*
code path (storage, indicators, insights) on top of this segment.
"""

from __future__ import annotations

import pytest

from _timings import write_timings_if_configured
from repro import PlatformConfig, SciLensPlatform
from repro.simulation import CovidScenarioConfig, generate_covid_scenario

#: Scale factor applied to each outlet's daily volume (1.0 = full newsroom output).
BENCH_VOLUME_SCALE = 0.08


@pytest.fixture(scope="session")
def paper_scenario():
    """The 45-outlet, 60-day COVID-19 scenario of §4 (volume-scaled)."""
    config = CovidScenarioConfig(
        n_outlets=45,
        volume_scale=BENCH_VOLUME_SCALE,
        random_seed=13,
    )
    return generate_covid_scenario(config)


@pytest.fixture(scope="session")
def paper_platform(paper_scenario):
    """A platform that has ingested the paper scenario through the streaming path."""
    platform = SciLensPlatform(
        config=PlatformConfig(),
        site_store=paper_scenario.site_store,
        account_registry=paper_scenario.outlets.account_registry(),
    )
    platform.register_outlets(paper_scenario.outlets.outlets())
    platform.ingest_posting_events(paper_scenario.posting_events())
    platform.ingest_reaction_events(paper_scenario.reaction_events())
    platform.process_stream()
    platform.assign_topics()
    return platform


@pytest.fixture(scope="session", autouse=True)
def _write_gate_timings():
    """Write all gates registered via ``_timings.record_gate_timing`` to
    ``$BENCH_TIMINGS_JSON`` (the CI artifact) at session teardown."""
    yield
    write_timings_if_configured()


def mean_seconds(benchmark) -> float:
    """Mean wall-clock seconds of the benchmarked callable (version tolerant)."""
    stats = getattr(benchmark.stats, "stats", benchmark.stats)
    if hasattr(stats, "mean"):
        return float(stats.mean)
    return float(stats["mean"])


def print_series(title: str, days, series: dict[str, tuple[float, ...]], step: int = 7) -> None:
    """Print a compact weekly view of a per-class time series (Figure 4 style)."""
    print(f"\n=== {title} ===")
    header = "day        " + "".join(f"{label:>12}" for label in series)
    print(header)
    for index in range(0, len(days), step):
        row = f"{days[index].isoformat()} " + "".join(
            f"{values[index]:12.1f}" for values in series.values()
        )
        print(row)


def print_distribution(title: str, summary: dict[str, float]) -> None:
    """Print the low/high-quality distribution summary (Figure 5 style)."""
    print(f"\n=== {title} ===")
    print(f"{'group':<14}{'n':>8}{'mean':>12}{'median':>12}{'std':>12}")
    for group in ("low", "high"):
        print(
            f"{group + '-quality':<14}"
            f"{summary[f'{group}_n']:>8.0f}"
            f"{summary[f'{group}_mean']:>12.3f}"
            f"{summary[f'{group}_median']:>12.3f}"
            f"{summary[f'{group}_std']:>12.3f}"
        )
