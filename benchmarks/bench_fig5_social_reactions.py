"""Experiment E2 — Figure 5 (left): social-media reactions distribution.

Regenerates the KDE of the number of social-media reactions per COVID-19
article, split into low- versus high-quality outlets.  Expected shape: the
low-quality outlets have a wider and larger distribution of reactions.
"""

from __future__ import annotations

import numpy as np

from conftest import print_distribution


def test_fig5_social_reactions(benchmark, paper_platform, paper_scenario):
    def compute():
        return paper_platform.topic_insights(
            "covid19",
            window_start=paper_scenario.window_start,
            window_end=paper_scenario.window_end,
        ).social_engagement

    comparison = benchmark.pedantic(compute, rounds=3, iterations=1)
    summary = comparison.summary()
    curves = comparison.kde_curves(n_points=200)

    print_distribution("Figure 5 (left) — social media reactions per article", summary)
    for label, (xs, density) in curves.items():
        if xs:
            mode = xs[int(np.argmax(density))]
            print(f"{label:<14} KDE mode at {mode:8.1f} reactions, support [{xs[0]:.1f}, {xs[-1]:.1f}]")

    benchmark.extra_info.update({k: round(v, 3) for k, v in summary.items()})

    # Paper shape: low-quality outlets acquire more social-media reach and show
    # a wider distribution of reactions.
    assert summary["low_mean"] > summary["high_mean"] * 1.5
    assert summary["low_std"] > summary["high_std"]
    assert comparison.low_mean_higher()
    assert comparison.low_spread_wider()
