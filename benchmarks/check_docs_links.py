"""Fail on broken intra-repo markdown links (CI: the docs-link-check job).

Scans every tracked ``*.md`` file for inline markdown links and images,
keeps the relative (intra-repo) targets, and verifies each resolves to an
existing file or directory.  External links (``http(s)://``, ``mailto:``)
and pure in-page anchors (``#section``) are ignored; a ``path#anchor``
target is checked for the file part only.

Usage::

    python benchmarks/check_docs_links.py [repo-root]

Exit status 0 when every link resolves, 1 otherwise (each broken link is
printed as ``file:line: target``).  ``tests/test_docs_links.py`` runs the
same check in the tier-1 suite.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown link/image: ``[text](target)`` / ``![alt](target)``.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Directories never scanned (no docs of ours live there).
SKIP_DIRS = {".git", ".pytest_cache", "__pycache__", ".hypothesis", "node_modules"}

#: Targets that are not intra-repo file links.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root: Path) -> list[Path]:
    """Every ``*.md`` under ``root``, skipping bookkeeping directories."""
    return sorted(
        path
        for path in root.rglob("*.md")
        if not (SKIP_DIRS & set(part for part in path.relative_to(root).parts))
    )


def intra_repo_targets(text: str) -> list[tuple[int, str]]:
    """``(line_number, target)`` for every intra-repo link in ``text``."""
    out: list[tuple[int, str]] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            out.append((line_number, target))
    return out


def broken_links(root: Path) -> list[str]:
    """``file:line: target`` for every intra-repo link that does not resolve."""
    problems: list[str] = []
    for path in markdown_files(root):
        for line_number, target in intra_repo_targets(path.read_text(encoding="utf-8")):
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (root / file_part) if file_part.startswith("/") else (path.parent / file_part)
            if not resolved.exists():
                problems.append(f"{path.relative_to(root)}:{line_number}: {target}")
    return problems


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    root = Path(args[0]).resolve() if args else Path(__file__).resolve().parent.parent
    problems = broken_links(root)
    checked = len(markdown_files(root))
    if problems:
        print(f"broken intra-repo markdown links ({len(problems)}):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(f"all intra-repo markdown links resolve ({checked} files checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
