"""Experiment E5 — Figure 2: platform architecture throughput.

The paper states the platform "runs operationally handling daily thousands of
news articles".  This benchmark pushes one full day of posting/reaction events
through the architecture of Figure 2 — broker → extraction pipeline →
operational store — and separately measures the daily migration into the
warehouse, reporting the sustained articles/second and events/second.
"""

from __future__ import annotations

from datetime import timedelta

import pytest

from conftest import mean_seconds

from repro import PlatformConfig, SciLensPlatform


def _events_of_day(scenario, day_index: int):
    day_start = scenario.window_start + timedelta(days=day_index)
    day_end = day_start + timedelta(days=1)
    lo, hi = day_start.isoformat(), day_end.isoformat()
    postings = [
        (key, value) for key, value in scenario.posting_events() if lo <= value["created_at"] < hi
    ]
    reactions = [
        (key, value) for key, value in scenario.reaction_events() if lo <= value["created_at"] < hi
    ]
    return postings, reactions


@pytest.fixture(scope="module")
def busy_day_events(paper_scenario):
    """Events of the busiest day of the scenario (late in the window)."""
    best = max(range(50, 60), key=lambda d: len(_events_of_day(paper_scenario, d)[0]))
    return _events_of_day(paper_scenario, best)


def test_fig2_streaming_ingestion_throughput(benchmark, paper_scenario, busy_day_events):
    postings, reactions = busy_day_events

    def ingest_one_day():
        platform = SciLensPlatform(
            config=PlatformConfig(),
            site_store=paper_scenario.site_store,
            account_registry=paper_scenario.outlets.account_registry(),
        )
        platform.register_outlets(paper_scenario.outlets.outlets())
        platform.ingest_posting_events(postings)
        platform.ingest_reaction_events(reactions)
        platform.process_stream()
        return platform

    platform = benchmark.pedantic(ingest_one_day, rounds=3, iterations=1)
    stats = platform.extraction.stats.as_dict()
    events = len(postings) + len(reactions)
    seconds = mean_seconds(benchmark)

    print("\n=== Figure 2 — one day of ingestion through the streaming pipeline ===")
    print(f"posting events      : {len(postings)}")
    print(f"reaction events     : {len(reactions)}")
    print(f"articles extracted  : {stats['articles_extracted']}")
    print(f"mean wall time      : {seconds:.3f}s")
    print(f"events / second     : {events / seconds:,.0f}")
    print(f"articles / second   : {stats['articles_extracted'] / seconds:,.0f}")
    print(
        "equivalent daily capacity: "
        f"{86400 * stats['articles_extracted'] / seconds:,.0f} articles/day"
    )

    benchmark.extra_info.update(
        {
            "events": events,
            "articles_extracted": stats["articles_extracted"],
            "events_per_second": round(events / seconds),
            "articles_per_second": round(stats["articles_extracted"] / seconds),
        }
    )

    # "Handling daily thousands of news articles": one day's worth of articles
    # must ingest with orders of magnitude of headroom.
    assert stats["scrape_failures"] == 0
    assert 86400 * stats["articles_extracted"] / seconds > 10_000


def test_fig2_daily_migration_throughput(benchmark, paper_platform):
    """Latency of the daily RDBMS → warehouse migration over the full collection."""

    def migrate_everything():
        # ``full_refresh`` drops every mapped table's partitions and re-copies
        # the whole operational store — each round measures a complete batch
        # bootstrap (the CDC-era fallback path), not an incremental delta.
        return paper_platform.migration.run(full_refresh=True)

    report = benchmark.pedantic(migrate_everything, rounds=3, iterations=1)
    seconds = mean_seconds(benchmark)

    print("\n=== Figure 2 — daily data migration (RDBMS -> Distributed Storage) ===")
    for table, count in report.migrated_rows.items():
        print(f"{table:<12}{count:>8} rows")
    print(f"total rows   {report.total_rows:>8}")
    print(f"mean wall time: {seconds:.3f}s  ({report.total_rows / seconds:,.0f} rows/s)")

    benchmark.extra_info.update(
        {"migrated_rows": report.total_rows, "rows_per_second": round(report.total_rows / seconds)}
    )
    assert report.total_rows > 0
