"""Shared gate-timing registry for the benchmark suites.

A normal importable module (not ``conftest.py``) on purpose: benchmark
modules import it by its unique basename, which stays unambiguous even when
``benchmarks/`` and ``tests/`` — each with its own ``conftest.py`` — are
collected in one pytest run.

Gates register as ``gate -> {baseline_s, optimized_s, speedup}`` — the
schema of the committed ``BENCH_warehouse.json`` trajectory seed — and the
session fixture in ``benchmarks/conftest.py`` writes them to
``$BENCH_TIMINGS_JSON`` at teardown.
"""

from __future__ import annotations

import json
import os
from datetime import datetime

#: Gate timings registered this session, keyed by suite name.  One shared
#: registry + one writer, so running several suites in a single pytest
#: session never overwrites one suite's gates with another's.
_GATE_TIMINGS: dict[str, dict[str, dict[str, float]]] = {}


def record_gate_timing(suite: str, gate: str, baseline_s: float, optimized_s: float) -> None:
    """Register one gate's timings in the perf-trajectory schema."""
    _GATE_TIMINGS.setdefault(suite, {})[gate] = {
        "baseline_s": round(baseline_s, 6),
        "optimized_s": round(optimized_s, 6),
        "speedup": round(baseline_s / optimized_s, 3) if optimized_s > 0 else float("inf"),
    }


def write_timings_if_configured() -> None:
    """Write all registered gate timings to ``$BENCH_TIMINGS_JSON``.

    A single-suite session writes ``{"suite", "written_at", "gates"}``; a
    multi-suite session writes ``{"written_at", "suites": {...}}`` — both
    shapes are understood by ``benchmarks/merge_timings.py``.  The optional
    ``$BENCH_SUITE_TAG`` namespaces the suite names (e.g. "py3.11-isolated")
    so two CI jobs running the same gates both survive the downstream merge.
    """
    path = os.environ.get("BENCH_TIMINGS_JSON")
    if not path or not _GATE_TIMINGS:
        return
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tag = os.environ.get("BENCH_SUITE_TAG")
    timings = {
        (f"{suite}@{tag}" if tag else suite): gates
        for suite, gates in _GATE_TIMINGS.items()
    }
    written_at = datetime.utcnow().isoformat() + "Z"
    if len(timings) == 1:
        suite, gates = next(iter(timings.items()))
        payload = {"suite": suite, "written_at": written_at, "gates": gates}
    else:
        payload = {"written_at": written_at, "suites": timings}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"\nwrote benchmark timings to {path}")
