"""Experiment E3 — Figure 5 (right): scientific-references ratio distribution.

Regenerates the KDE of the scientific-references ratio per COVID-19 article,
split into low- versus high-quality outlets.  Expected shape: high-quality
outlets base their reporting on scientific references far more often, so their
distribution sits at clearly higher ratios; low-quality outlets concentrate
at (or near) zero.
"""

from __future__ import annotations

from conftest import print_distribution


def test_fig5_scientific_references(benchmark, paper_platform, paper_scenario):
    def compute():
        return paper_platform.topic_insights(
            "covid19",
            window_start=paper_scenario.window_start,
            window_end=paper_scenario.window_end,
        ).evidence_seeking

    comparison = benchmark.pedantic(compute, rounds=3, iterations=1)
    summary = comparison.summary()

    print_distribution("Figure 5 (right) — scientific references ratio per article", summary)
    low_zero = sum(1 for v in comparison.low_quality_samples if v == 0.0)
    high_zero = sum(1 for v in comparison.high_quality_samples if v == 0.0)
    print(
        f"articles with zero scientific references: "
        f"low-quality {low_zero}/{len(comparison.low_quality_samples)}, "
        f"high-quality {high_zero}/{len(comparison.high_quality_samples)}"
    )

    benchmark.extra_info.update({k: round(v, 3) for k, v in summary.items()})

    # Paper shape: high-quality outlets show the inverse behaviour of reactions —
    # a higher number/share of well-established scientific references.
    assert summary["high_mean"] > summary["low_mean"] + 0.15
    assert summary["high_median"] > summary["low_median"]
    assert low_zero / max(1, len(comparison.low_quality_samples)) > 0.5
