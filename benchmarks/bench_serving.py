"""CI gate — the sharded serving tier under a hot-read thundering herd.

Two gates live here (no pytest-benchmark dependency):

* ``TestServingCoalescingGate`` — a herd of clients repeatedly issuing the
  *same* hot dashboard reads (the ``insights.*`` topic views, ~140 ms of
  aggregation each at bench scale) must be served at least 5x faster by the
  sharded front door — request coalescing plus consistent-hash sharding —
  than by one synchronous gateway, and with **identical responses**.  Both
  sides run with the response cache disabled (``cache_capacity=0``): the mix
  models freshness-pinned reads that must never be served stale, so the TTL
  cache cannot help and every saved backend execution comes from
  single-flight coalescing alone.  The baseline pays no serving-tier
  overhead — it is the same mounted gateway the tier's shards wrap.

* ``TestServingAdmissionGate`` — a doubly-zipfian overload (hot tenants ×
  hot keys, four times more client threads than the concurrency cap)
  against an admission-controlled tier must shed load with typed 429s
  instead of queueing: every response is a clean 200 or 429, the in-flight
  high-water mark never exceeds the cap, and the p99 latency stays bounded
  (shed load never waits behind a backlog).

The coalescing gate records its timings as ``serving`` in the
``bench_warehouse_analytics`` suite, joining the committed
``BENCH_warehouse.json`` perf trajectory.
"""

from __future__ import annotations

import threading
import time

import pytest

from _timings import record_gate_timing
from repro.api import build_gateway
from repro.api.serving import AdmissionController, ShardedGateway
from repro.config import ApiConfig
from repro.simulation import ServingLoadConfig, generate_serving_workload, run_serving_load

#: Freshness-pinned serving: no response cache on either side of the gate.
FRESH_API = ApiConfig(cache_capacity=0)

#: The hot-read mix — the dashboard's topic views, each a full insight
#: aggregation (newsroom activity series, engagement/evidence KDEs).
HOT_READS: list[tuple[str, dict]] = [
    ("insights.newsroom_activity", {"topic": "covid19"}),
    ("insights.social_engagement", {"topic": "covid19"}),
    ("insights.evidence_seeking", {"topic": "covid19"}),
    ("insights.topic", {"topic": "covid19"}),
]

N_CLIENTS = 8
N_WAVES = 4  # one wave per hot key: 32 baseline executions vs ~4 coalesced
MIN_SPEEDUP = 5.0


def run_herd(handle, n_clients: int = N_CLIENTS, n_waves: int = N_WAVES) -> float:
    """Wall-clock seconds for ``n_clients`` threads issuing ``n_waves`` waves.

    Each wave, every client issues the *same* request from the hot mix and a
    barrier releases them together — the thundering herd single-flight
    coalescing exists for.  The identical wave structure drives both the
    baseline and the sharded tier, so the measured gap is purely the serving
    path.  Any non-200 fails the gate.
    """
    barrier = threading.Barrier(n_clients)
    bad: list[int] = []

    def client() -> None:
        for wave in range(n_waves):
            route, params = HOT_READS[wave % len(HOT_READS)]
            barrier.wait()
            response = handle(route, params)
            if response.status != 200:
                bad.append(response.status)

    threads = [threading.Thread(target=client) for _ in range(n_clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    assert not bad, f"herd saw non-200 statuses: {sorted(set(bad))}"
    return elapsed


@pytest.fixture(scope="module")
def single_gateway(paper_platform):
    return build_gateway(paper_platform, FRESH_API)


@pytest.fixture(scope="module")
def serving_tier(paper_platform):
    return ShardedGateway(
        shard_factory=lambda index: build_gateway(paper_platform, FRESH_API),
        n_shards=4,
        coalesce=True,
    )


class TestServingCoalescingGate:
    def test_coalesced_hot_reads_beat_single_gateway(self, single_gateway, serving_tier):
        # Correctness first: the tier serves identical payloads for every
        # request of the mix (this also warms both code paths).
        for route, params in HOT_READS:
            fast = serving_tier.handle(route, params)
            slow = single_gateway.handle(route, params)
            assert fast.status == slow.status == 200
            assert fast.payload == slow.payload, f"payload mismatch for {route!r}"

        baseline_s = run_herd(single_gateway.handle)
        optimized_s = run_herd(serving_tier.handle)
        record_gate_timing("bench_warehouse_analytics", "serving", baseline_s, optimized_s)

        stats = serving_tier.stats()
        speedup = baseline_s / optimized_s
        print(
            f"\n=== serving gate: {N_CLIENTS} clients x {N_WAVES} waves over "
            f"{len(HOT_READS)} hot keys, {stats['shards']} shards ===\n"
            f"single gateway {baseline_s:.4f}s, sharded+coalesced {optimized_s:.4f}s, "
            f"speedup {speedup:.1f}x "
            f"(coalesced {stats['coalescing']['coalesced']} of "
            f"{stats['requests']} requests)"
        )
        assert stats["coalescing"]["coalesced"] > 0, "the herd never coalesced"
        assert speedup >= MIN_SPEEDUP, (
            f"serving speedup {speedup:.2f}x below the {MIN_SPEEDUP}x gate "
            f"(baseline {baseline_s:.4f}s, optimized {optimized_s:.4f}s)"
        )


class TestServingAdmissionGate:
    #: Four times more client threads than admitted slots: overload by
    #: construction.
    MAX_CONCURRENT = 4
    LOAD_CONCURRENCY = 16
    P99_BOUND_S = 2.0

    #: The overload mix — cheaper hot reads (listings), so the gate measures
    #: shedding behaviour rather than insight compute.
    OVERLOAD_READS: list[tuple[str, dict]] = [
        ("articles.list", {"topic": "covid19", "limit": 50}),
        ("articles.list", {"limit": 20}),
        ("articles.outlets", {}),
        ("articles.list", {"limit": 100}),
    ]

    def test_p99_bounded_and_load_shed_under_overload(self, paper_platform):
        admission = AdmissionController(
            rate_per_s=30.0, burst=40.0, max_concurrent=self.MAX_CONCURRENT
        )
        tier = ShardedGateway(
            shard_factory=lambda index: build_gateway(paper_platform, FRESH_API),
            n_shards=2,
            admission=admission,
            coalesce=True,
        )
        workload = generate_serving_workload(
            ServingLoadConfig(n_tenants=20, n_requests=400, random_seed=13),
            self.OVERLOAD_READS,
        )
        report = run_serving_load(
            lambda request: tier.handle(request.route, request.params, request.tenant),
            workload,
            concurrency=self.LOAD_CONCURRENCY,
        )
        stats = tier.stats()
        print(
            f"\n=== admission gate: {report.n_requests} requests, "
            f"{self.LOAD_CONCURRENCY} clients vs cap {self.MAX_CONCURRENT} ===\n"
            f"{report.summary()}\n"
            f"admission: {stats['admission']}"
        )
        # Overload is shed, not queued: only clean outcomes …
        assert set(report.status_counts) <= {200, 429}, report.status_counts
        assert report.throttled_count() > 0, "overload never triggered admission control"
        assert report.ok_count() > 0, "admission starved every request"
        assert report.ok_count() + report.throttled_count() == report.n_requests
        # … the concurrency cap really bounded the in-flight work …
        assert stats["admission"]["concurrency_high_water"] <= self.MAX_CONCURRENT
        assert stats["admission"]["throttled"] == report.throttled_count()
        # … and nobody waited behind an unbounded backlog.
        assert report.p99_s < self.P99_BOUND_S, (
            f"p99 {report.p99_s * 1e3:.1f}ms breached the "
            f"{self.P99_BOUND_S * 1e3:.0f}ms bound under overload"
        )
