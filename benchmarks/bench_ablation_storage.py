"""Ablation A2 — the hybrid storage layout (§3.3).

The platform keeps an RDBMS for real-time operations *and* a columnar
warehouse for historical analytics.  This ablation measures both engines on
the workloads they were chosen for: point lookups and filtered row reads on
the RDBMS versus full-history analytical scans on the warehouse — justifying
the hybrid design rather than either engine alone.
"""

from __future__ import annotations

from collections import defaultdict

import pytest


@pytest.fixture(scope="module")
def migrated_platform(paper_platform):
    """Ensure the warehouse holds the full history before the scan benchmarks."""
    if paper_platform.warehouse.total_rows() == 0:
        paper_platform.run_daily_migration()
    return paper_platform


def test_storage_rdbms_point_lookups(benchmark, migrated_platform, paper_scenario):
    """Real-time path: primary-key lookups of articles by id."""
    article_ids = [
        migrated_platform.get_article_by_url(g.url).article_id
        for g in paper_scenario.topic_articles()[:50]
    ]

    def lookup_all():
        return [migrated_platform.database.get("articles", article_id) for article_id in article_ids]

    rows = benchmark(lookup_all)
    assert len(rows) == 50 and all(rows)
    print(f"\n=== Ablation A2 — RDBMS point lookups: {len(rows)} lookups per round ===")


def test_storage_rdbms_filtered_read(benchmark, migrated_platform, paper_scenario):
    """Real-time path: per-outlet recent-article listing through the query builder."""
    from repro.storage.rdbms.expressions import col

    outlet = paper_scenario.outlets.profiles[0].domain

    def query():
        return (
            migrated_platform.database.query("articles")
            .where(col("outlet_domain") == outlet)
            .order_by("published_at", descending=True)
            .limit(20)
            .execute()
        )

    result = benchmark(query)
    assert len(result) > 0


def test_storage_warehouse_analytical_scan(benchmark, migrated_platform):
    """Analytics path: full-history scan computing daily article counts per partition,
    reading only the columns the aggregation needs (column pruning)."""
    table = migrated_platform.warehouse.table("articles")

    def scan():
        counts: dict[str, int] = defaultdict(int)
        for row in table.scan(columns=["outlet_domain"]):
            counts[row["outlet_domain"]] += 1
        return counts

    counts = benchmark(scan)
    assert sum(counts.values()) == table.row_count()
    print(f"\n=== Ablation A2 — warehouse scan over {table.row_count()} rows, "
          f"{table.block_count()} blocks, {len(table.partitions())} partitions ===")


def test_storage_warehouse_partition_pruned_scan(benchmark, migrated_platform, paper_scenario):
    """Analytics path: the same scan restricted to one week of partitions."""
    table = migrated_platform.warehouse.table("articles")
    week = [day.isoformat() for day in list(paper_scenario.daily_article_counts().get(
        paper_scenario.outlets.profiles[0].domain, {}).keys())[:7]]
    partitions = table.partitions()[:7]

    def scan_week():
        return sum(1 for _ in table.scan(columns=["article_id"], partitions=partitions))

    count = benchmark(scan_week)
    assert count <= table.row_count()
    assert week is not None


def test_storage_rdbms_analytical_aggregate(benchmark, migrated_platform):
    """The same analytical aggregation executed on the row-store (for comparison)."""

    def aggregate():
        return (
            migrated_platform.database.query("articles")
            .group_by("outlet_domain")
            .aggregate(articles=("count", "*"))
            .execute()
        )

    result = benchmark(aggregate)
    assert len(result) > 0
