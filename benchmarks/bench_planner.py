"""Planner microbenchmark — index-aware access paths vs full scans.

Builds a 60k-row operational table twice (with and without indexes) and
measures the same queries through both, checking that the planner picks a
non-full-scan access path, returns *identical* rows, and delivers at least a
5x speedup for selective range queries and indexed ORDER BY + LIMIT.

When ``BENCH_TIMINGS_JSON`` is set, every gate's wall-clock timings are
written there as ``gate -> {baseline_s, optimized_s, speedup}`` JSON — the
same schema as the warehouse bench, so CI merges all gate timings into one
perf-trajectory artifact.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_planner.py -s``.
"""

from __future__ import annotations

import random
import time

import pytest

from _timings import record_gate_timing
from repro.storage.rdbms.expressions import col
from repro.storage.rdbms.planner import (
    FULL_SCAN,
    INDEX_EQ,
    INDEX_INTERSECT,
    ORDER_INDEX,
    ORDER_TOP_K,
    STATS_COST,
    STATS_HEURISTIC,
)
from repro.storage.rdbms.query import Query
from repro.storage.rdbms.schema import Column, TableSchema
from repro.storage.rdbms.stats import StatsPolicy
from repro.storage.rdbms.table import Table
from repro.storage.rdbms.types import ColumnType

N_ROWS = 60_000
REQUIRED_SPEEDUP = 5.0


def _build_table(indexed: bool) -> Table:
    schema = TableSchema(
        name="articles",
        primary_key="id",
        columns=(
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("outlet", ColumnType.TEXT, nullable=False),
            Column("published_ts", ColumnType.INTEGER, nullable=False),
            Column("reactions", ColumnType.INTEGER, nullable=False),
        ),
    )
    table = Table(schema)
    rng = random.Random(4242)
    rows = [
        {
            "id": i,
            "outlet": f"outlet-{rng.randrange(50)}.example.com",
            "published_ts": rng.randrange(10_000_000),
            "reactions": rng.randrange(100_000),
        }
        for i in range(N_ROWS)
    ]
    table.insert_many(rows)
    if indexed:
        table.create_index("outlet", kind="hash")
        table.create_index("published_ts", kind="sorted")
        table.create_index("reactions", kind="sorted")
    return table


@pytest.fixture(scope="module")
def indexed_table() -> Table:
    return _build_table(indexed=True)


@pytest.fixture(scope="module")
def plain_table() -> Table:
    return _build_table(indexed=False)


def _best_seconds(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _report(name: str, slow: float, fast: float, gate: str | None = None) -> float:
    """Print one gate's numbers; with ``gate`` set, also register them for the
    ``BENCH_TIMINGS_JSON`` artifact (written by the shared conftest fixture)."""
    speedup = slow / fast if fast > 0 else float("inf")
    if gate is not None:
        record_gate_timing("bench_planner", gate, slow, fast)
    print(
        f"\n=== planner microbenchmark — {name} ===\n"
        f"full scan: {slow * 1000:.2f} ms, planner: {fast * 1000:.2f} ms, "
        f"speedup: {speedup:.1f}x over {N_ROWS} rows"
    )
    return speedup


def test_selective_range_query(indexed_table, plain_table):
    """~1%-selective range predicate: index-range scan vs full scan."""
    predicate = (col("published_ts") >= 5_000_000) & (col("published_ts") < 5_100_000)

    plan = Query(indexed_table).where(predicate).explain()
    assert plan.access_path != FULL_SCAN
    assert plan.access_path == "index-range"

    fast_rows = Query(indexed_table).where(predicate).execute().rows
    slow_rows = Query(plain_table).where(predicate).execute().rows
    assert fast_rows == slow_rows and fast_rows  # identical, non-empty

    fast = _best_seconds(lambda: Query(indexed_table).where(predicate).execute())
    slow = _best_seconds(lambda: Query(plain_table).where(predicate).execute())
    speedup = _report("selective range", slow, fast, gate="planner_selective_range")
    assert speedup >= REQUIRED_SPEEDUP


def test_indexed_order_by_limit(indexed_table, plain_table):
    """ORDER BY + LIMIT: index-ordered scan vs sort-everything."""

    def build(table: Table) -> Query:
        return Query(table).order_by("published_ts", descending=True).limit(20)

    plan = build(indexed_table).explain()
    assert plan.access_path == ORDER_INDEX  # non-full-scan
    assert plan.order_strategy == ORDER_INDEX

    assert build(indexed_table).execute().rows == build(plain_table).execute().rows

    fast = _best_seconds(lambda: build(indexed_table).execute())
    slow = _best_seconds(lambda: build(plain_table).execute())
    speedup = _report("ORDER BY published_ts DESC LIMIT 20", slow, fast, gate="planner_order_by_limit")
    assert speedup >= REQUIRED_SPEEDUP


def test_equality_plus_topk(indexed_table, plain_table):
    """Outlet equality + top-k over candidates vs scan + full sort."""

    def build(table: Table) -> Query:
        return (
            Query(table)
            .where(col("outlet") == "outlet-7.example.com")
            .select("id", "reactions")
            .order_by("reactions", descending=True)
            .limit(10)
        )

    plan = build(indexed_table).explain()
    assert plan.access_path == "index-eq"
    assert plan.order_strategy == ORDER_TOP_K

    assert build(indexed_table).execute().rows == build(plain_table).execute().rows

    fast = _best_seconds(lambda: build(indexed_table).execute())
    slow = _best_seconds(lambda: build(plain_table).execute())
    speedup = _report("outlet eq + top-k reactions", slow, fast, gate="planner_eq_topk")
    # ~2% of rows survive the equality, so the ceiling is lower than for the
    # range scans above; 3x leaves headroom against timer noise.
    assert speedup >= 3.0


def _build_skewed_table(with_stats: bool) -> Table:
    """A skewed-selectivity workload for the cost-model gate.

    One rare outlet owns ~120 of 60k rows while the reactions range predicate
    keeps ~95% of the table — exactly the shape where intersecting every
    usable index wastes a 57k-row index sweep that the equality probe makes
    irrelevant.  ``with_stats=False`` pins the table to the historical
    intersect-all heuristic (no statistics, no auto-analyze).
    """
    schema = TableSchema(
        name="articles",
        primary_key="id",
        columns=(
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("outlet", ColumnType.TEXT, nullable=False),
            Column("reactions", ColumnType.INTEGER, nullable=False),
        ),
    )
    table = Table(schema, stats_policy=StatsPolicy(auto_analyze=with_stats))
    rng = random.Random(777)
    rows = [
        {
            "id": i,
            "outlet": (
                "rare-outlet.example.com"
                if i % 500 == 0
                else f"outlet-{rng.randrange(50)}.example.com"
            ),
            "reactions": rng.randrange(100_000),
        }
        for i in range(N_ROWS)
    ]
    table.insert_many(rows)
    table.create_index("outlet", kind="hash")
    table.create_index("reactions", kind="sorted")
    return table


def test_planner_cost_skewed_workload():
    """Cost-based plan vs forced intersect-all on a skewed workload.

    The selectivity estimates must recognise that the unselective reactions
    range cannot pay for its probe, keep only the rare-outlet equality, and
    beat the intersect-everything baseline >=5x with identical rows.
    """
    cost_table = _build_skewed_table(with_stats=True)
    heuristic_table = _build_skewed_table(with_stats=False)
    predicate = (col("outlet") == "rare-outlet.example.com") & (col("reactions") < 95_000)

    cost_plan = cost_table.plan_access(predicate)
    assert cost_plan.stats_mode == STATS_COST
    assert cost_plan.path == INDEX_EQ  # the 95%-range probe was rejected
    assert any(alt.path == INDEX_INTERSECT for alt in cost_plan.alternatives if not alt.chosen)
    heuristic_plan = heuristic_table.plan_access(predicate)
    assert heuristic_plan.stats_mode == STATS_HEURISTIC
    assert heuristic_plan.path == INDEX_INTERSECT  # both indexes, blindly

    fast_rows = Query(cost_table).where(predicate).execute().rows
    slow_rows = Query(heuristic_table).where(predicate).execute().rows
    oracle_rows = [r for r in cost_table.rows() if r["outlet"] == "rare-outlet.example.com" and r["reactions"] < 95_000]
    assert fast_rows == slow_rows == oracle_rows and fast_rows  # identical, non-empty

    fast = _best_seconds(lambda: Query(cost_table).where(predicate).execute())
    slow = _best_seconds(lambda: Query(heuristic_table).where(predicate).execute())
    speedup = _report("cost-based vs intersect-all (skewed)", slow, fast, gate="planner_cost")
    assert speedup >= REQUIRED_SPEEDUP


def test_randomized_equivalence(indexed_table, plain_table):
    """Planner output is bit-identical to the full-scan baseline."""
    rng = random.Random(99)
    for _ in range(25):
        low = rng.randrange(9_000_000)
        high = low + rng.randrange(1_000_000)
        predicate = (col("published_ts") >= low) & (col("published_ts") < high)
        if rng.random() < 0.5:
            predicate = predicate & (col("outlet") == f"outlet-{rng.randrange(50)}.example.com")
        fast = Query(indexed_table).where(predicate)
        slow = Query(plain_table).where(predicate)
        if rng.random() < 0.5:
            descending = rng.random() < 0.5
            fast = fast.order_by("reactions", descending=descending).limit(25)
            slow = slow.order_by("reactions", descending=descending).limit(25)
        assert fast.execute().rows == slow.execute().rows
