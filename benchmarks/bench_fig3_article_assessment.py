"""Experiment E4 — Figure 3: real-time single-article assessment.

The platform UI (Figure 3) shows, for any article, the automatically extracted
indicators combined with the expert reviews.  This benchmark measures the
latency of that real-time evaluation path — scrape (cached page) → content +
context + social indicators → expert fusion — for articles already in the
collection and for an arbitrary, never-seen URL.
"""

from __future__ import annotations

from datetime import datetime

from repro.experts.reviewers import ReviewerPool


def test_fig3_assessment_of_collected_article(benchmark, paper_platform, paper_scenario):
    """Latency of evaluating an article from the news collection."""
    generated = paper_scenario.topic_articles()[0]
    article = paper_platform.get_article_by_url(generated.url)

    # Give the article a handful of expert reviews so the full fusion runs.
    pool = ReviewerPool(n_reviewers=4, random_seed=99)
    for review in pool.review_article(article.article_id, generated.true_quality, datetime(2020, 3, 14)):
        if review.review_id not in paper_platform.review_store:
            paper_platform.add_expert_review(review)

    assessment = benchmark(lambda: paper_platform.evaluate_article(article.article_id))

    payload = assessment.to_payload()
    print("\n=== Figure 3 — single article assessment card ===")
    print(f"title           : {payload['title'][:70]}")
    print(f"outlet          : {payload['outlet_domain']} ({payload['outlet_rating']})")
    print(f"final score     : {payload['final_score']:.3f} ({payload['final_rating']})")
    for family, score in payload["family_scores"].items():
        print(f"  {family:<8} quality: {score:.3f}")
    print(f"expert reviews  : {payload['expert']['expert_n_reviews']:.0f}")

    benchmark.extra_info["final_score"] = round(payload["final_score"], 3)
    assert assessment.has_expert_reviews
    assert 0.0 <= assessment.final_score <= 1.0


def test_fig3_assessment_of_arbitrary_url(benchmark, paper_platform, paper_scenario):
    """Latency of evaluating an arbitrary article URL (scraped on demand)."""
    # Any registered page that the platform has not ingested works; reuse a
    # generated page and evaluate it purely through the URL path.
    generated = paper_scenario.topic_articles()[1]

    assessment = benchmark(lambda: paper_platform.evaluate_url(generated.url))
    assert assessment.url == generated.url
    assert 0.0 <= assessment.final_score <= 1.0
    benchmark.extra_info["automated_score"] = round(assessment.profile.automated_score, 3)
