"""Experiment E1 — Figure 4: newsroom activity.

Regenerates the paper's Figure 4: the mean percentage of daily posts referring
to COVID-19 per outlet rating category over the 60-day window.  The expected
shape: early on low- and high-quality outlets post about the topic at a
similar rate; by the end of the first month low-quality outlets dedicate a
much larger share of their output to it.
"""

from __future__ import annotations

from conftest import print_series


def test_fig4_newsroom_activity(benchmark, paper_platform, paper_scenario):
    def compute():
        return paper_platform.topic_insights(
            "covid19",
            window_start=paper_scenario.window_start,
            window_end=paper_scenario.window_end,
        ).newsroom_activity

    activity = benchmark.pedantic(compute, rounds=3, iterations=1)

    low_first = activity.mean_share(True, first_half=True)
    low_second = activity.mean_share(True, first_half=False)
    high_first = activity.mean_share(False, first_half=True)
    high_second = activity.mean_share(False, first_half=False)

    print_series(
        "Figure 4 — mean % of daily posts on COVID-19 per rating category",
        activity.days,
        activity.series,
    )
    print(
        f"\nlow-quality  mean share: first half {low_first:5.1f}%  second half {low_second:5.1f}%\n"
        f"high-quality mean share: first half {high_first:5.1f}%  second half {high_second:5.1f}%\n"
        f"divergence (low - high, second half): {activity.divergence():5.1f} percentage points"
    )

    benchmark.extra_info.update(
        {
            "low_first_half_pct": round(low_first, 2),
            "low_second_half_pct": round(low_second, 2),
            "high_first_half_pct": round(high_first, 2),
            "high_second_half_pct": round(high_second, 2),
            "divergence_pct_points": round(activity.divergence(), 2),
        }
    )

    # Paper shape: similar early, low-quality outlets dominate late.
    assert abs(low_first - high_first) < 12.0
    assert low_second > low_first + 10.0
    assert activity.divergence() > 10.0
