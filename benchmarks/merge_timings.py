"""Merge per-suite ``BENCH_TIMINGS_JSON`` files into one trajectory artifact.

Every benchmark suite writes its gate timings as::

    {"suite": "<name>", "written_at": "...", "gates": {gate: {baseline_s, optimized_s, speedup}}}

CI runs this script over the directory of downloaded per-job artifacts to
produce a single merged file, and — when a committed trajectory seed such as
``BENCH_warehouse.json`` (schema: ``gate -> {baseline_s, optimized_s,
speedup}``) is given — prints the speedup trajectory of every warehouse gate
against that seed, so a perf regression is visible right in the job log, and
exits non-zero if any committed seed gate is absent from the merged output
(a deleted or silently-skipped benchmark must fail the trajectory job).

Usage::

    python benchmarks/merge_timings.py <timings-dir> <merged-output.json> \
        [--seed BENCH_warehouse.json --seed-suite bench_warehouse_analytics]
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import datetime, timezone
from pathlib import Path


def load_suites(directory: Path) -> dict[str, dict[str, dict[str, float]]]:
    """``{suite: {gate: timings}}`` from every ``*.json`` under ``directory``.

    Accepts both shapes the benchmark conftest writes: single-suite
    (``{"suite": ..., "gates": {...}}``) and multi-suite
    (``{"suites": {suite: gates}}``).
    """
    suites: dict[str, dict[str, dict[str, float]]] = {}
    for path in sorted(directory.rglob("*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"skipping {path}: {exc}", file=sys.stderr)
            continue
        suite = payload.get("suite")
        gates = payload.get("gates")
        if isinstance(suite, str) and isinstance(gates, dict):
            suites.setdefault(suite, {}).update(gates)
        elif isinstance(payload.get("suites"), dict):
            for name, suite_gates in payload["suites"].items():
                if isinstance(suite_gates, dict):
                    suites.setdefault(name, {}).update(suite_gates)
        else:
            print(f"skipping {path}: not a gate-timings file", file=sys.stderr)
    return suites


def print_trajectory(seed: dict[str, dict[str, float]], current: dict[str, dict[str, float]]) -> None:
    """Seed-vs-current speedup table for the gates present in either."""
    print(f"{'gate':<36}{'seed speedup':>14}{'current':>10}")
    for gate in sorted(seed.keys() | current.keys()):
        then = seed.get(gate, {}).get("speedup")
        now = current.get(gate, {}).get("speedup")
        print(
            f"{gate:<36}"
            f"{'-' if then is None else format(then, '>13.2f') + 'x':>14}"
            f"{'-' if now is None else format(now, '>9.2f') + 'x':>10}"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("timings_dir", type=Path, help="directory of per-suite timing JSONs")
    parser.add_argument("output", type=Path, help="merged artifact to write")
    parser.add_argument(
        "--seed", type=Path, default=None,
        help="committed trajectory seed (gate -> {baseline_s, optimized_s, speedup})",
    )
    parser.add_argument(
        "--seed-suite", default="bench_warehouse_analytics",
        help="suite whose gates the seed tracks",
    )
    args = parser.parse_args(argv)

    suites = load_suites(args.timings_dir)
    if not suites:
        print(f"no timing files found under {args.timings_dir}", file=sys.stderr)
        return 1
    merged = {
        "written_at": datetime.now(timezone.utc).isoformat(),
        "suites": suites,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    total = sum(len(gates) for gates in suites.values())
    print(f"merged {total} gate timing(s) from {len(suites)} suite(s) into {args.output}")

    if args.seed is not None and args.seed.exists():
        seed = json.loads(args.seed.read_text(encoding="utf-8"))
        current = suites.get(args.seed_suite, {})
        print(f"\nperf trajectory vs {args.seed}:")
        print_trajectory(seed, current)
        # Every committed gate must keep reporting: a gate that vanished from
        # the merged artifact means a benchmark was deleted, deselected or
        # silently skipped — fail the trajectory job rather than letting the
        # perf history go dark one gate at a time.
        missing = sorted(seed.keys() - current.keys())
        if missing:
            print(
                f"ERROR: committed seed gate(s) absent from merged timings: "
                f"{', '.join(missing)}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
