"""Shared domain model of the SciLens platform.

These dataclasses are the vocabulary every layer speaks: outlets and their
quality rating classes, news articles, social-media postings and reactions,
and expert reviews.  The module is intentionally a *leaf* — it imports nothing
from the rest of the library — so substrates and the core package can both
depend on it without cycles.  The same classes are re-exported as
``repro.core.models`` for the documented public API.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from datetime import datetime
from enum import Enum

from .errors import ValidationError


class RatingClass(str, Enum):
    """Outlet quality rating class.

    Mirrors the grouping of the ACSH ranking used in §4 of the paper: outlets
    are bucketed into five classes from very low to very high quality, and the
    COVID-19 analysis contrasts the low and high ends.
    """

    VERY_LOW = "very-low"
    LOW = "low"
    MIXED = "mixed"
    HIGH = "high"
    VERY_HIGH = "very-high"

    @property
    def is_low_quality(self) -> bool:
        """True for the low end of the ranking (very-low and low)."""
        return self in (RatingClass.VERY_LOW, RatingClass.LOW)

    @property
    def is_high_quality(self) -> bool:
        """True for the high end of the ranking (high and very-high)."""
        return self in (RatingClass.HIGH, RatingClass.VERY_HIGH)

    @property
    def ordinal(self) -> int:
        """Position of the class on the 0 (very-low) … 4 (very-high) scale."""
        return _RATING_ORDER[self]

    @classmethod
    def from_score(cls, score: float) -> "RatingClass":
        """Map a quality score in ``[0, 1]`` onto a rating class."""
        if not 0.0 <= score <= 1.0:
            raise ValidationError(f"quality score must be in [0, 1], got {score}")
        if score < 0.2:
            return cls.VERY_LOW
        if score < 0.4:
            return cls.LOW
        if score < 0.6:
            return cls.MIXED
        if score < 0.8:
            return cls.HIGH
        return cls.VERY_HIGH


_RATING_ORDER: dict[RatingClass, int] = {
    RatingClass.VERY_LOW: 0,
    RatingClass.LOW: 1,
    RatingClass.MIXED: 2,
    RatingClass.HIGH: 3,
    RatingClass.VERY_HIGH: 4,
}


@dataclass(frozen=True)
class Outlet:
    """A news outlet tracked by the platform.

    ``evidence_score`` and ``compelling_score`` follow the two axes of the
    ACSH infographic ("does it report evidence-based science?", "is it
    compelling to read?"); the rating class is derived from the evidence axis
    unless given explicitly.
    """

    domain: str
    name: str
    rating_class: RatingClass
    evidence_score: float = 0.5
    compelling_score: float = 0.5
    country: str = "US"
    social_handles: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.domain or "." not in self.domain:
            raise ValidationError(f"invalid outlet domain: {self.domain!r}")
        for label, value in (
            ("evidence_score", self.evidence_score),
            ("compelling_score", self.compelling_score),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValidationError(f"{label} must be in [0, 1], got {value}")

    @property
    def is_low_quality(self) -> bool:
        return self.rating_class.is_low_quality

    @property
    def is_high_quality(self) -> bool:
        return self.rating_class.is_high_quality


@dataclass(frozen=True)
class Article:
    """A news article collected by the streaming pipeline."""

    article_id: str
    url: str
    outlet_domain: str
    title: str
    published_at: datetime
    text: str = ""
    html: str = ""
    author: str | None = None
    topics: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.article_id:
            raise ValidationError("article_id must be non-empty")
        if not self.url.startswith(("http://", "https://")):
            raise ValidationError(f"article url must be absolute: {self.url!r}")
        if not self.outlet_domain:
            raise ValidationError("outlet_domain must be non-empty")

    @property
    def has_byline(self) -> bool:
        """Whether the article is by-lined by an author (a content indicator)."""
        return bool(self.author and self.author.strip())

    def with_topics(self, topics: tuple[str, ...]) -> "Article":
        """Return a copy of this article with ``topics`` attached."""
        return replace(self, topics=tuple(topics))

    def word_count(self) -> int:
        """Number of whitespace-separated tokens in the body text."""
        return len(self.text.split())


class ReactionKind(str, Enum):
    """Kind of social-media reaction to a posting."""

    LIKE = "like"
    SHARE = "share"
    REPLY = "reply"
    QUOTE = "quote"

    @property
    def weight(self) -> float:
        """Relative contribution to reach (shares/quotes amplify more than likes)."""
        return _REACTION_WEIGHTS[self]


_REACTION_WEIGHTS: dict[ReactionKind, float] = {
    ReactionKind.LIKE: 1.0,
    ReactionKind.SHARE: 2.0,
    ReactionKind.REPLY: 1.5,
    ReactionKind.QUOTE: 1.5,
}


@dataclass(frozen=True)
class SocialPost:
    """A social-media posting referring to a news article."""

    post_id: str
    platform: str
    account: str
    article_url: str
    text: str
    created_at: datetime
    followers: int = 0
    reply_to: str | None = None

    def __post_init__(self) -> None:
        if not self.post_id:
            raise ValidationError("post_id must be non-empty")
        if self.followers < 0:
            raise ValidationError("followers must be non-negative")


@dataclass(frozen=True)
class Reaction:
    """A single reaction (like/share/reply/quote) to a social posting."""

    reaction_id: str
    post_id: str
    kind: ReactionKind
    created_at: datetime
    account: str = ""
    text: str = ""

    def __post_init__(self) -> None:
        if not self.reaction_id:
            raise ValidationError("reaction_id must be non-empty")
        if not self.post_id:
            raise ValidationError("reaction must reference a post_id")


#: The seven expert-review criteria of §3.2, in the order the UI displays them.
REVIEW_CRITERIA: tuple[str, ...] = (
    "factual_accuracy",
    "scientific_understanding",
    "logic_reasoning",
    "precision_clarity",
    "sources_quality",
    "fairness",
    "clickbaitness",
)

#: Bounds of the Likert scale used for every criterion.
LIKERT_MIN = 1
LIKERT_MAX = 5


@dataclass(frozen=True)
class ExpertReview:
    """An expert annotation of one article on the seven Likert criteria."""

    review_id: str
    article_id: str
    reviewer_id: str
    created_at: datetime
    scores: dict[str, int] = field(default_factory=dict)
    comment: str = ""
    reviewer_weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.review_id:
            raise ValidationError("review_id must be non-empty")
        if not self.article_id:
            raise ValidationError("review must reference an article_id")
        if self.reviewer_weight <= 0:
            raise ValidationError("reviewer_weight must be positive")
        for criterion, value in self.scores.items():
            if criterion not in REVIEW_CRITERIA:
                raise ValidationError(f"unknown review criterion: {criterion!r}")
            if not LIKERT_MIN <= value <= LIKERT_MAX:
                raise ValidationError(
                    f"criterion {criterion!r} must be in "
                    f"[{LIKERT_MIN}, {LIKERT_MAX}], got {value}"
                )

    def mean_score(self) -> float:
        """Unweighted mean over the criteria present in this review."""
        if not self.scores:
            raise ValidationError("review has no criterion scores")
        return sum(self.scores.values()) / len(self.scores)
