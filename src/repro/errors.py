"""Exception hierarchy for the SciLens reproduction.

Every error raised by the library derives from :class:`SciLensError` so that
callers can catch a single base class at the platform boundary.
"""

from __future__ import annotations


class SciLensError(Exception):
    """Base class for every error raised by the library."""


class ConfigurationError(SciLensError):
    """Raised when a component is constructed with invalid configuration."""


class ValidationError(SciLensError):
    """Raised when a domain object fails validation."""


class StorageError(SciLensError):
    """Base class for storage-layer errors."""


class SchemaError(StorageError):
    """Raised for schema definition or schema mismatch problems."""


class ConstraintViolation(StorageError):
    """Raised when an insert/update violates a table constraint."""


class TableNotFound(StorageError):
    """Raised when a statement references an unknown table."""


class ColumnNotFound(StorageError):
    """Raised when a statement references an unknown column."""


class TransactionError(StorageError):
    """Raised for illegal transaction state transitions."""


class SQLSyntaxError(StorageError):
    """Raised by the SQL parser on malformed statements."""


class WarehouseError(StorageError):
    """Raised by the distributed-storage (warehouse) layer."""


class FtsError(StorageError):
    """Raised by the full-text-search engine (segments, index, indexer)."""


class TransientFaultError(StorageError):
    """A fault that may succeed on retry (injected or simulated-environmental).

    Raised at the fault-injection sites (DFS read/write, broker publish/poll,
    checkpoint I/O).  :class:`repro.storage.faults.RetryPolicy` treats this
    class — plus whatever extra classes a call site registers — as retryable.
    """


class RetryExhaustedError(StorageError):
    """Every retry attempt failed (or the timeout budget ran out).

    Carries the last underlying error as ``__cause__`` and the attempt count
    in :attr:`attempts` so health reporting can surface both.
    """

    def __init__(self, message: str, *, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class CircuitOpenError(StorageError):
    """The circuit breaker is open: the operation was refused, not attempted.

    Protects a repeatedly-failing dependency (e.g. a poisoned CDC batch) from
    being hot-looped; callers back off until the cooldown lets a probe through.
    """


class StreamingError(SciLensError):
    """Base class for streaming-layer errors."""


class TopicNotFound(StreamingError):
    """Raised when producing to or consuming from an unknown topic."""


class OffsetOutOfRange(StreamingError):
    """Raised when a consumer seeks outside a partition's offset range."""


class ComputeError(SciLensError):
    """Raised by the batch-compute (dataset) engine."""


class ModelError(SciLensError):
    """Raised by the ML substrate (fit/predict misuse, bad shapes)."""


class NotFittedError(ModelError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""


class ScrapingError(SciLensError):
    """Raised by the web substrate when a document cannot be fetched/parsed."""


class ReviewError(SciLensError):
    """Raised by the expert-review subsystem."""


class ServiceError(SciLensError):
    """Base class for Indicators-API service errors."""


class RouteNotFound(ServiceError):
    """Raised when the gateway receives a request for an unknown route."""


class ArticleNotFound(SciLensError):
    """Raised when an article id/url is not present in the platform."""


class OutletNotFound(SciLensError):
    """Raised when an outlet domain is not present in the registry."""
