"""Platform-wide configuration objects.

The configuration mirrors the knobs of the operational SciLens deployment:
how the streaming layer is partitioned, where the data layer keeps its files,
how often the daily migration and periodic model training run, and how the
indicator fusion weighs each indicator family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .errors import ConfigurationError


@dataclass(frozen=True)
class StreamingConfig:
    """Configuration of the ingestion (message broker) layer."""

    postings_topic: str = "postings"
    reactions_topic: str = "reactions"
    articles_topic: str = "articles"
    partitions: int = 4
    max_batch_size: int = 500

    def validate(self) -> None:
        if self.partitions < 1:
            raise ConfigurationError("streaming.partitions must be >= 1")
        if self.max_batch_size < 1:
            raise ConfigurationError("streaming.max_batch_size must be >= 1")


@dataclass(frozen=True)
class StorageConfig:
    """Configuration of the hybrid data layer (RDBMS + warehouse)."""

    data_dir: Path | None = None
    warehouse_replication: int = 2
    warehouse_block_rows: int = 4096
    #: zlib level for warehouse block wire compression (0 stores raw bytes).
    warehouse_compression_level: int = 6
    #: Partitions holding at least this many blocks are rewritten by the
    #: scheduled warehouse compaction job.
    warehouse_compaction_min_blocks: int = 8
    #: Register the standing materialized roll-ups (daily article counts,
    #: per-outlet totals, per-outlet topic totals) and refresh them from the
    #: migration job.  Disabled, every dashboard read falls back to the live
    #: grouped-aggregation scan — same results, no materialized state.
    warehouse_rollups_enabled: bool = True
    #: Topic key the standing topic-filtered roll-up is materialized for.
    warehouse_rollup_topic: str = "covid19"
    wal_enabled: bool = True
    #: Continuous change-data capture: tail the WAL, publish row deltas onto
    #: per-table broker topics and land them as warehouse delta blocks.
    #: Disabled, warehouse freshness falls back to batch full refreshes.
    cdc_enabled: bool = True
    #: Broker topic prefix for the per-table CDC topics (``cdc.articles``, …).
    cdc_topic_prefix: str = "cdc."
    #: Delta rows the CDC applier lands per warehouse write batch.
    cdc_batch_rows: int = 500
    #: Shared retry discipline for transient storage/streaming faults
    #: (DFS reads/writes, broker publish/poll, checkpoint saves).
    retry_max_attempts: int = 4
    retry_base_delay_s: float = 0.01
    retry_max_delay_s: float = 1.0
    #: Serve base blocks (stale but correct) when the merge-on-read path
    #: fails transiently, instead of failing the query.
    warehouse_degraded_reads: bool = True
    #: Consecutive CDC landing failures that open the applier's circuit
    #: breaker, and the cooldown before a half-open probe.
    cdc_breaker_threshold: int = 5
    cdc_breaker_cooldown_s: float = 30.0
    #: Quarantine a batch the warehouse keeps rejecting (commit its offsets,
    #: keep it on ``DeltaApplier.quarantined``) instead of blocking the topic.
    cdc_skip_poisoned: bool = False
    #: Full-text search: declare the articles FTS index (planner MATCH
    #: pushdown) and, when CDC is enabled, tail the article delta topic into
    #: a persistent BM25 segment index serving ``search_articles``.
    fts_enabled: bool = True
    #: Article columns the FTS indexes cover.
    fts_columns: tuple[str, ...] = ("title", "text")
    #: Buffered documents that trigger an automatic FTS segment flush.
    fts_flush_docs: int = 512
    #: Cost-based planner statistics: re-analyze a table transparently at
    #: plan time when its statistics are missing or stale.  Disabled, the
    #: planner degrades to the heuristic intersect-every-index plan until
    #: ``Database.analyze()`` is called explicitly.
    rdbms_auto_analyze: bool = True
    #: Fraction of a table's analyzed rows that may be rewritten before its
    #: statistics count as stale (absolute floor below).
    rdbms_stale_fraction: float = 0.2
    #: Writes a table always absorbs before its statistics can go stale —
    #: keeps tiny hot tables from re-analyzing on every handful of writes.
    rdbms_min_stale_writes: int = 64
    #: Equi-depth histogram buckets collected per analyzed column.
    rdbms_histogram_buckets: int = 32

    def validate(self) -> None:
        if self.warehouse_replication < 1:
            raise ConfigurationError("storage.warehouse_replication must be >= 1")
        if self.warehouse_block_rows < 1:
            raise ConfigurationError("storage.warehouse_block_rows must be >= 1")
        if not 0 <= self.warehouse_compression_level <= 9:
            raise ConfigurationError(
                "storage.warehouse_compression_level must be in [0, 9]"
            )
        if self.warehouse_compaction_min_blocks < 2:
            raise ConfigurationError(
                "storage.warehouse_compaction_min_blocks must be >= 2"
            )
        if not self.warehouse_rollup_topic:
            raise ConfigurationError(
                "storage.warehouse_rollup_topic must be a non-empty topic key"
            )
        if not self.cdc_topic_prefix:
            raise ConfigurationError(
                "storage.cdc_topic_prefix must be a non-empty prefix"
            )
        if self.cdc_batch_rows < 1:
            raise ConfigurationError("storage.cdc_batch_rows must be >= 1")
        if self.retry_max_attempts < 1:
            raise ConfigurationError("storage.retry_max_attempts must be >= 1")
        if self.retry_base_delay_s < 0:
            raise ConfigurationError("storage.retry_base_delay_s must be >= 0")
        if self.retry_max_delay_s < self.retry_base_delay_s:
            raise ConfigurationError(
                "storage.retry_max_delay_s must be >= retry_base_delay_s"
            )
        if self.cdc_breaker_threshold < 1:
            raise ConfigurationError("storage.cdc_breaker_threshold must be >= 1")
        if self.cdc_breaker_cooldown_s < 0:
            raise ConfigurationError("storage.cdc_breaker_cooldown_s must be >= 0")
        if not self.fts_columns:
            raise ConfigurationError(
                "storage.fts_columns must name at least one column"
            )
        if self.fts_flush_docs < 1:
            raise ConfigurationError("storage.fts_flush_docs must be >= 1")
        if self.rdbms_stale_fraction <= 0:
            raise ConfigurationError("storage.rdbms_stale_fraction must be > 0")
        if self.rdbms_min_stale_writes < 0:
            raise ConfigurationError("storage.rdbms_min_stale_writes must be >= 0")
        if self.rdbms_histogram_buckets < 1:
            raise ConfigurationError("storage.rdbms_histogram_buckets must be >= 1")


@dataclass(frozen=True)
class AnalyticsConfig:
    """Configuration of the analytics layer (segmentation + model training)."""

    migration_interval_days: int = 1
    training_interval_days: int = 7
    topic_tree_depth: int = 2
    topic_branching: int = 4
    min_topic_probability: float = 0.2

    def validate(self) -> None:
        if self.migration_interval_days < 1:
            raise ConfigurationError("analytics.migration_interval_days must be >= 1")
        if self.training_interval_days < 1:
            raise ConfigurationError("analytics.training_interval_days must be >= 1")
        if not 0.0 <= self.min_topic_probability <= 1.0:
            raise ConfigurationError(
                "analytics.min_topic_probability must be in [0, 1]"
            )


@dataclass(frozen=True)
class IndicatorConfig:
    """Weights used when fusing indicator families into a single quality score."""

    content_weight: float = 1.0
    context_weight: float = 1.0
    social_weight: float = 1.0
    expert_weight: float = 2.0
    #: Half-life (in days) of the time-sensitive expert-review average.
    expert_half_life_days: float = 30.0

    def validate(self) -> None:
        weights = (
            self.content_weight,
            self.context_weight,
            self.social_weight,
            self.expert_weight,
        )
        if any(w < 0 for w in weights):
            raise ConfigurationError("indicator weights must be non-negative")
        if sum(weights) == 0:
            raise ConfigurationError("at least one indicator weight must be positive")
        if self.expert_half_life_days <= 0:
            raise ConfigurationError("expert_half_life_days must be positive")


@dataclass(frozen=True)
class ApiConfig:
    """Configuration of the Indicators API (micro-service layer)."""

    cache_capacity: int = 1024
    cache_ttl_seconds: float = 300.0

    def validate(self) -> None:
        if self.cache_capacity < 0:
            raise ConfigurationError("api.cache_capacity must be >= 0")
        if self.cache_ttl_seconds < 0:
            raise ConfigurationError("api.cache_ttl_seconds must be >= 0")


@dataclass(frozen=True)
class ServingConfig:
    """Configuration of the sharded serving tier in front of the API gateway.

    The serving tier (``repro.api.serving``) layers per-tenant token-bucket
    admission control, single-flight request coalescing and consistent-hash
    sharding over the synchronous micro-service gateway, plus an asyncio
    front end driving the shards on an executor.
    """

    #: Gateway shards behind the :class:`~repro.api.serving.ShardedGateway`
    #: front door.  Each shard carries every mounted service and its own
    #: response cache; requests route by consistent hash of their cache key.
    shards: int = 4
    #: Virtual nodes per shard on the consistent-hash ring.  More replicas
    #: smooth the key distribution; adding/removing a shard still moves only
    #: ~1/N of the keys.
    ring_replicas: int = 64
    #: Per-tenant token-bucket admission control.  Disabled, every request
    #: is admitted (the global concurrency limiter still applies).
    admission_enabled: bool = True
    #: Steady-state tokens (requests) per second granted to each tenant.
    admission_rate_per_s: float = 200.0
    #: Bucket capacity: the burst a previously-idle tenant may send at once.
    admission_burst: float = 400.0
    #: Requests allowed in flight across all shards; excess load is shed
    #: with a 429 instead of queueing unboundedly (bounds tail latency).
    max_concurrency: int = 64
    #: Single-flight coalescing of identical in-flight cacheable reads.
    coalesce_enabled: bool = True
    #: Executor threads the asyncio front end uses to drive sync shards.
    async_workers: int = 8
    #: Per-route admission cost weights: how many tokens one request of a
    #: route spends from its tenant's bucket.  Heavy analytical reads should
    #: cost proportionally more than a point lookup so a tenant's rate limit
    #: reflects the work it causes, not its request count.  Stored as
    #: ``(route, weight)`` pairs (frozen dataclasses need hashable fields).
    route_cost_weights: tuple[tuple[str, float], ...] = (
        ("insights.topic", 8.0),
        ("articles.search", 4.0),
        ("articles.list", 2.0),
    )
    #: Tokens spent by any route not named in ``route_cost_weights``.
    default_route_cost: float = 1.0

    def validate(self) -> None:
        if self.shards < 1:
            raise ConfigurationError("serving.shards must be >= 1")
        if self.ring_replicas < 1:
            raise ConfigurationError("serving.ring_replicas must be >= 1")
        if self.admission_rate_per_s <= 0:
            raise ConfigurationError("serving.admission_rate_per_s must be > 0")
        if self.admission_burst < 1:
            raise ConfigurationError("serving.admission_burst must be >= 1")
        if self.max_concurrency < 1:
            raise ConfigurationError("serving.max_concurrency must be >= 1")
        if self.async_workers < 1:
            raise ConfigurationError("serving.async_workers must be >= 1")
        for route, weight in self.route_cost_weights:
            if not route:
                raise ConfigurationError(
                    "serving.route_cost_weights route names must be non-empty"
                )
            if weight <= 0:
                raise ConfigurationError(
                    f"serving.route_cost_weights weight for {route!r} must be > 0"
                )
        if self.default_route_cost <= 0:
            raise ConfigurationError("serving.default_route_cost must be > 0")


@dataclass(frozen=True)
class PlatformConfig:
    """Top-level configuration for :class:`repro.core.platform.SciLensPlatform`."""

    streaming: StreamingConfig = field(default_factory=StreamingConfig)
    storage: StorageConfig = field(default_factory=StorageConfig)
    analytics: AnalyticsConfig = field(default_factory=AnalyticsConfig)
    indicators: IndicatorConfig = field(default_factory=IndicatorConfig)
    api: ApiConfig = field(default_factory=ApiConfig)
    serving: ServingConfig = field(default_factory=ServingConfig)
    random_seed: int = 13

    def validate(self) -> "PlatformConfig":
        """Validate every section and return ``self`` for chaining."""
        self.streaming.validate()
        self.storage.validate()
        self.analytics.validate()
        self.indicators.validate()
        self.api.validate()
        self.serving.validate()
        return self


DEFAULT_CONFIG = PlatformConfig()
