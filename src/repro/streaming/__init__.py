"""Streaming substrate.

Replaces the Datastreamer-based ingestion of the original deployment with an
in-process message broker (topics, partitions, offsets, consumer groups), a
producer/consumer API, offset checkpointing, event-time windowing and the
article-extraction pipeline that turns raw posting events into articles,
posts and reactions.
"""

from .message import Message
from .broker import MessageBroker, TopicStats
from .producer import Producer
from .consumer import Consumer
from .checkpoint import CheckpointStore
from .windowing import TumblingWindow, WindowedCounter
from .pipeline import ArticleExtractionPipeline, PipelineStats

__all__ = [
    "Message",
    "MessageBroker",
    "TopicStats",
    "Producer",
    "Consumer",
    "CheckpointStore",
    "TumblingWindow",
    "WindowedCounter",
    "ArticleExtractionPipeline",
    "PipelineStats",
]
