"""The article-extraction pipeline (the entry point of data collection).

"The main data entry point of the system is an outlet-based streaming pipeline
... This subsystem acts as a messaging queue and fetches, in real-time,
postings from a specific set of social media accounts along with their
reactions.  These incoming data streams are processed, and the corresponding
news articles are extracted." (§3.3)

:class:`ArticleExtractionPipeline` consumes the postings and reactions topics,
turns raw events into :class:`~repro.models.SocialPost` / :class:`~repro.models.Reaction`
objects, scrapes every article URL it has not seen before, and hands the
resulting domain objects to sink callbacks (the platform wires those to the
operational database).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from datetime import datetime
from typing import Callable

from ..errors import StreamingError
from ..models import Article, Reaction, ReactionKind, SocialPost
from ..social.accounts import AccountRegistry
from ..web.scraper import ArticleScraper, ScrapedArticle
from ..web.urls import domain_of, normalize_url
from .broker import MessageBroker
from .consumer import Consumer
from .message import Message


def article_id_for(url: str) -> str:
    """Deterministic article id derived from the normalised URL."""
    normalized = normalize_url(url)
    return "art-" + hashlib.blake2b(normalized.encode("utf-8"), digest_size=8).hexdigest()


@dataclass
class PipelineStats:
    """Counters describing what the pipeline has processed so far."""

    postings_seen: int = 0
    reactions_seen: int = 0
    articles_extracted: int = 0
    scrape_failures: int = 0
    malformed_events: int = 0
    known_articles: set[str] = field(default_factory=set)

    def as_dict(self) -> dict[str, int]:
        return {
            "postings_seen": self.postings_seen,
            "reactions_seen": self.reactions_seen,
            "articles_extracted": self.articles_extracted,
            "scrape_failures": self.scrape_failures,
            "malformed_events": self.malformed_events,
        }


class ArticleExtractionPipeline:
    """Streaming consumer turning posting/reaction events into domain objects."""

    def __init__(
        self,
        broker: MessageBroker,
        scraper: ArticleScraper,
        accounts: AccountRegistry | None = None,
        postings_topic: str = "postings",
        reactions_topic: str = "reactions",
        group: str = "scilens-extraction",
        on_article: Callable[[Article], None] | None = None,
        on_post: Callable[[SocialPost], None] | None = None,
        on_reaction: Callable[[Reaction], None] | None = None,
    ) -> None:
        self.broker = broker
        self.scraper = scraper
        self.accounts = accounts if accounts is not None else AccountRegistry()
        self.postings_topic = postings_topic
        self.reactions_topic = reactions_topic
        self.on_article = on_article
        self.on_post = on_post
        self.on_reaction = on_reaction
        self.stats = PipelineStats()
        self._consumer = Consumer(broker, group, [postings_topic, reactions_topic])

    # ----------------------------------------------------------- event entry

    def process_available(self, batch_size: int = 500) -> int:
        """Process every pending message; returns the number processed."""
        return self._consumer.drain(self._handle_message, batch_size=batch_size)

    def process_batch(self, max_messages: int = 100) -> int:
        """Process at most ``max_messages`` pending messages."""
        return self._consumer.process(self._handle_message, max_messages=max_messages)

    def lag(self) -> int:
        """Messages still waiting on the subscribed topics."""
        return self._consumer.lag()

    # -------------------------------------------------------------- handlers

    def _handle_message(self, message: Message) -> None:
        if message.topic == self.postings_topic:
            self._handle_posting(message)
        elif message.topic == self.reactions_topic:
            self._handle_reaction(message)
        else:  # pragma: no cover - the consumer only subscribes to two topics
            raise StreamingError(f"unexpected topic {message.topic!r}")

    def _handle_posting(self, message: Message) -> None:
        value = message.value
        try:
            post = SocialPost(
                post_id=str(value["post_id"]),
                platform=str(value.get("platform", "twitter")),
                account=str(value["account"]),
                article_url=normalize_url(str(value["article_url"])),
                text=str(value.get("text", "")),
                created_at=_parse_ts(value.get("created_at"), message.timestamp),
                followers=int(
                    value.get("followers", self.accounts.followers_of(str(value["account"])))
                ),
                reply_to=value.get("reply_to"),
            )
        except Exception:
            self.stats.malformed_events += 1
            return

        self.stats.postings_seen += 1
        if self.on_post is not None:
            self.on_post(post)
        self._maybe_extract_article(post.article_url, post.created_at)

    def _handle_reaction(self, message: Message) -> None:
        value = message.value
        try:
            reaction = Reaction(
                reaction_id=str(value["reaction_id"]),
                post_id=str(value["post_id"]),
                kind=ReactionKind(str(value.get("kind", "like"))),
                created_at=_parse_ts(value.get("created_at"), message.timestamp),
                account=str(value.get("account", "")),
                text=str(value.get("text", "")),
            )
        except Exception:
            self.stats.malformed_events += 1
            return
        self.stats.reactions_seen += 1
        if self.on_reaction is not None:
            self.on_reaction(reaction)

    # ------------------------------------------------------------ extraction

    def _maybe_extract_article(self, url: str, seen_at: datetime) -> None:
        article_id = article_id_for(url)
        if article_id in self.stats.known_articles:
            return
        scraped = self.scraper.try_scrape(url)
        if scraped is None:
            self.stats.scrape_failures += 1
            return
        article = scraped_to_article(scraped, article_id=article_id, fallback_published=seen_at)
        self.stats.known_articles.add(article_id)
        self.stats.articles_extracted += 1
        if self.on_article is not None:
            self.on_article(article)


def scraped_to_article(
    scraped: ScrapedArticle,
    article_id: str | None = None,
    fallback_published: datetime | None = None,
) -> Article:
    """Convert a :class:`ScrapedArticle` into the :class:`Article` domain object."""
    return Article(
        article_id=article_id or article_id_for(scraped.url),
        url=scraped.url,
        outlet_domain=domain_of(scraped.url),
        title=scraped.title,
        published_at=scraped.published_at or fallback_published or datetime.utcnow(),
        text=scraped.text,
        html=scraped.html,
        author=scraped.author,
    )


def _parse_ts(value, fallback: datetime) -> datetime:
    if isinstance(value, datetime):
        return value
    if isinstance(value, str):
        try:
            return datetime.fromisoformat(value)
        except ValueError:
            return fallback
    return fallback
