"""Event-time windowing helpers.

The insights layer aggregates postings per calendar day; the tumbling-window
utilities here provide the generic building block (fixed-size, non-overlapping
event-time windows with per-window aggregation).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from datetime import datetime, timedelta, timezone
from typing import Any, Callable, Iterable

from ..errors import StreamingError


@dataclass(frozen=True)
class TumblingWindow:
    """A fixed-size, non-overlapping event-time window."""

    start: datetime
    duration: timedelta

    @property
    def end(self) -> datetime:
        return self.start + self.duration

    def contains(self, ts: datetime) -> bool:
        return self.start <= ts < self.end


def window_start(ts: datetime, duration: timedelta, origin: datetime | None = None) -> datetime:
    """Start of the tumbling window of width ``duration`` containing ``ts``.

    The default origin is the epoch — UTC for timezone-aware timestamps and
    naive for naive ones — so both kinds of event time are accepted without a
    ``TypeError``, and the same instant expressed with different UTC offsets
    always lands in the same window.
    """
    if duration.total_seconds() <= 0:
        raise StreamingError("window duration must be positive")
    if origin is None:
        origin = datetime(1970, 1, 1, tzinfo=timezone.utc) if ts.tzinfo else datetime(1970, 1, 1)
    elapsed = (ts - origin).total_seconds()
    index = int(elapsed // duration.total_seconds())
    return origin + timedelta(seconds=index * duration.total_seconds())


class WindowedCounter:
    """Counts events per tumbling window and per group key."""

    def __init__(self, duration: timedelta, origin: datetime | None = None) -> None:
        if duration.total_seconds() <= 0:
            raise StreamingError("window duration must be positive")
        self.duration = duration
        self.origin = origin
        self._counts: dict[datetime, dict[str, int]] = defaultdict(lambda: defaultdict(int))

    def add(self, ts: datetime, group: str = "_all", weight: int = 1) -> None:
        """Record one event at ``ts`` under ``group``."""
        start = window_start(ts, self.duration, self.origin)
        self._counts[start][group] += weight

    def add_all(self, events: Iterable[tuple[datetime, str]]) -> None:
        for ts, group in events:
            self.add(ts, group)

    def windows(self) -> list[TumblingWindow]:
        """All windows that received at least one event, in time order."""
        return [
            TumblingWindow(start=start, duration=self.duration)
            for start in sorted(self._counts)
        ]

    def count(self, window_start_ts: datetime, group: str = "_all") -> int:
        return self._counts.get(window_start_ts, {}).get(group, 0)

    def series(self, group: str = "_all") -> list[tuple[datetime, int]]:
        """(window start, count) pairs for one group, in time order."""
        return [
            (start, groups.get(group, 0))
            for start, groups in sorted(self._counts.items())
        ]

    def totals_by_group(self) -> dict[str, int]:
        """Total count per group across all windows."""
        totals: dict[str, int] = defaultdict(int)
        for groups in self._counts.values():
            for group, count in groups.items():
                totals[group] += count
        return dict(totals)


def aggregate_by_window(
    events: Iterable[tuple[datetime, Any]],
    duration: timedelta,
    aggregator: Callable[[list[Any]], Any],
    origin: datetime | None = None,
) -> dict[datetime, Any]:
    """Group event payloads into tumbling windows and aggregate each window."""
    buckets: dict[datetime, list[Any]] = defaultdict(list)
    for ts, payload in events:
        buckets[window_start(ts, duration, origin)].append(payload)
    return {start: aggregator(payloads) for start, payloads in sorted(buckets.items())}
