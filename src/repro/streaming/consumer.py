"""Consumer: group-based reads from the broker with optional checkpointing."""

from __future__ import annotations

from typing import Callable

from ..errors import StreamingError
from .broker import MessageBroker
from .checkpoint import CheckpointStore
from .message import Message


class Consumer:
    """A consumer belonging to a consumer group.

    When a :class:`CheckpointStore` is supplied, committed offsets are also
    persisted there and restored on construction, so processing resumes where
    it left off after a restart.
    """

    def __init__(
        self,
        broker: MessageBroker,
        group: str,
        topics: list[str],
        checkpoints: CheckpointStore | None = None,
    ) -> None:
        if not topics:
            raise StreamingError("a consumer must subscribe to at least one topic")
        self.broker = broker
        self.group = group
        self.topics = list(topics)
        self.checkpoints = checkpoints
        self.consumed_count = 0
        self._poll_cursor = 0
        if self.checkpoints is not None:
            self._restore_checkpoints()

    def _restore_checkpoints(self) -> None:
        assert self.checkpoints is not None
        for topic in self.topics:
            # A consumer may subscribe before its producer ever created the
            # topic; there is nothing to restore onto yet.
            if not self.broker.has_topic(topic):
                continue
            end_offsets = self.broker.topic_stats(topic).end_offsets
            for partition, offset in self.checkpoints.offsets(self.group, topic).items():
                # A checkpoint file and the broker can disagree in both
                # directions.  Behind (offsets committed after the file's
                # last write): apply the same monotonic guard as
                # :meth:`commit` — never rewind the group, a rewind would
                # redeliver every message past the stale checkpoint.  Ahead
                # (the in-memory broker restarted with a shorter — typically
                # empty — log, or the topic was re-created narrower): clamp
                # to the partition's high-water mark instead of letting
                # ``broker.commit`` raise ``OffsetOutOfRange`` out of the
                # constructor.
                if partition >= len(end_offsets):
                    continue
                offset = min(offset, end_offsets[partition])
                current = self.broker.committed_offset(self.group, topic, partition)
                if offset > current:
                    self.broker.commit(self.group, topic, partition, offset)

    def poll(self, max_messages: int = 100) -> list[Message]:
        """Fetch up to ``max_messages`` messages across the subscribed topics.

        The budget is split fairly instead of being consumed in subscription
        order: topics are walked round-robin from a cursor that rotates
        across calls, and each backlogged topic is granted an equal share of
        the remaining budget (shares a topic cannot fill flow to the topics
        that can), so a busy first topic can no longer starve the rest under
        sustained load.
        """
        n_topics = len(self.topics)
        order = self.topics[self._poll_cursor:] + self.topics[:self._poll_cursor]
        self._poll_cursor = (self._poll_cursor + 1) % n_topics
        # Plan per-topic allocations against the current backlog first (each
        # topic must be polled at most once per call: an uncommitted re-poll
        # would return the same messages again).  Topics the broker does not
        # hold yet (subscribe-before-create) simply have no backlog.
        backlog = {
            topic: (
                self.broker.lag(self.group, topic)
                if self.broker.has_topic(topic) else 0
            )
            for topic in order
        }
        allocation = {topic: 0 for topic in order}
        budget = max_messages
        pending = [topic for topic in order if backlog[topic] > 0]
        while budget > 0 and pending:
            share = max(1, budget // len(pending))
            still_pending = []
            for topic in pending:
                take = min(share, backlog[topic] - allocation[topic], budget)
                allocation[topic] += take
                budget -= take
                if allocation[topic] < backlog[topic]:
                    still_pending.append(topic)
            pending = still_pending
        out: list[Message] = []
        for topic in order:
            if allocation[topic] > 0:
                out.extend(
                    self.broker.poll(
                        self.group, topic,
                        max_messages=allocation[topic], auto_commit=False,
                    )
                )
        return out

    def commit(self, messages: list[Message]) -> None:
        """Commit every message in ``messages`` (per-partition high-water marks)."""
        highest: dict[tuple[str, int], int] = {}
        for message in messages:
            key = (message.topic, message.partition)
            highest[key] = max(highest.get(key, -1), message.offset)
        for (topic, partition), offset in highest.items():
            next_offset = offset + 1
            current = self.broker.committed_offset(self.group, topic, partition)
            if next_offset > current:
                self.broker.commit(self.group, topic, partition, next_offset)
                if self.checkpoints is not None:
                    self.checkpoints.save(self.group, topic, partition, next_offset)
        self.consumed_count += len(messages)

    def lag(self) -> int:
        """Total unconsumed messages across the subscribed topics
        (not-yet-created topics count as empty)."""
        return sum(
            self.broker.lag(self.group, topic)
            for topic in self.topics
            if self.broker.has_topic(topic)
        )

    def process(
        self,
        handler: Callable[[Message], None],
        max_messages: int = 100,
    ) -> int:
        """Poll, run ``handler`` on each message, then commit (at-least-once).

        Returns the number of messages processed.  If the handler raises, no
        offsets are committed and the batch will be redelivered.
        """
        messages = self.poll(max_messages=max_messages)
        for message in messages:
            handler(message)
        self.commit(messages)
        return len(messages)

    def drain(self, handler: Callable[[Message], None], batch_size: int = 500) -> int:
        """Process until no messages remain; returns the total processed."""
        total = 0
        while True:
            processed = self.process(handler, max_messages=batch_size)
            total += processed
            if processed == 0:
                return total
