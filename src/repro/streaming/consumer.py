"""Consumer: group-based reads from the broker with optional checkpointing."""

from __future__ import annotations

from typing import Callable

from ..errors import StreamingError
from .broker import MessageBroker
from .checkpoint import CheckpointStore
from .message import Message


class Consumer:
    """A consumer belonging to a consumer group.

    When a :class:`CheckpointStore` is supplied, committed offsets are also
    persisted there and restored on construction, so processing resumes where
    it left off after a restart.
    """

    def __init__(
        self,
        broker: MessageBroker,
        group: str,
        topics: list[str],
        checkpoints: CheckpointStore | None = None,
    ) -> None:
        if not topics:
            raise StreamingError("a consumer must subscribe to at least one topic")
        self.broker = broker
        self.group = group
        self.topics = list(topics)
        self.checkpoints = checkpoints
        self.consumed_count = 0
        if self.checkpoints is not None:
            self._restore_checkpoints()

    def _restore_checkpoints(self) -> None:
        assert self.checkpoints is not None
        for topic in self.topics:
            for partition, offset in self.checkpoints.offsets(self.group, topic).items():
                self.broker.commit(self.group, topic, partition, offset)

    def poll(self, max_messages: int = 100) -> list[Message]:
        """Fetch up to ``max_messages`` messages across the subscribed topics."""
        out: list[Message] = []
        for topic in self.topics:
            budget = max_messages - len(out)
            if budget <= 0:
                break
            messages = self.broker.poll(
                self.group, topic, max_messages=budget, auto_commit=False
            )
            out.extend(messages)
        return out

    def commit(self, messages: list[Message]) -> None:
        """Commit every message in ``messages`` (per-partition high-water marks)."""
        highest: dict[tuple[str, int], int] = {}
        for message in messages:
            key = (message.topic, message.partition)
            highest[key] = max(highest.get(key, -1), message.offset)
        for (topic, partition), offset in highest.items():
            next_offset = offset + 1
            current = self.broker.committed_offset(self.group, topic, partition)
            if next_offset > current:
                self.broker.commit(self.group, topic, partition, next_offset)
                if self.checkpoints is not None:
                    self.checkpoints.save(self.group, topic, partition, next_offset)
        self.consumed_count += len(messages)

    def lag(self) -> int:
        """Total unconsumed messages across the subscribed topics."""
        return sum(self.broker.lag(self.group, topic) for topic in self.topics)

    def process(
        self,
        handler: Callable[[Message], None],
        max_messages: int = 100,
    ) -> int:
        """Poll, run ``handler`` on each message, then commit (at-least-once).

        Returns the number of messages processed.  If the handler raises, no
        offsets are committed and the batch will be redelivered.
        """
        messages = self.poll(max_messages=max_messages)
        for message in messages:
            handler(message)
        self.commit(messages)
        return len(messages)

    def drain(self, handler: Callable[[Message], None], batch_size: int = 500) -> int:
        """Process until no messages remain; returns the total processed."""
        total = 0
        while True:
            processed = self.process(handler, max_messages=batch_size)
            total += processed
            if processed == 0:
                return total
