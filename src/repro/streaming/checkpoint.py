"""Persistence of consumer-group offsets."""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import StreamingError


class CheckpointStore:
    """Stores committed offsets per ``(group, topic, partition)``.

    Purely in memory by default; when a path is given the offsets are also
    written to a JSON file after every save and reloaded on construction.
    A corrupt checkpoint file raises :class:`StreamingError` on load — the
    caller decides whether to clear and re-consume (offsets are recoverable
    from the broker; idempotent consumers simply absorb the redelivery).

    An optional :class:`repro.storage.faults.FaultInjector` exercises the
    ``checkpoint.save`` site, and an optional
    :class:`repro.storage.faults.RetryPolicy` absorbs the transient failures
    it injects; a save that still fails raises after the in-memory offsets
    were updated, so the worst case is a stale file → redelivery, never a
    lost message.
    """

    def __init__(
        self,
        path: Path | str | None = None,
        fault_injector=None,
        retry_policy=None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy
        self._offsets: dict[str, dict[str, dict[str, int]]] = {}
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        assert self.path is not None
        try:
            self._offsets = json.loads(self.path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError) as exc:
            raise StreamingError(f"corrupt checkpoint file {self.path}: {exc}") from exc

    def _persist(self) -> None:
        if self.path is None and self.fault_injector is None:
            return

        def attempt() -> None:
            if self.fault_injector is not None:
                self.fault_injector.check("checkpoint.save", str(self.path or ""))
            if self.path is not None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self.path.write_text(
                    json.dumps(self._offsets, sort_keys=True), encoding="utf-8"
                )

        if self.retry_policy is None:
            attempt()
        else:
            self.retry_policy.call(attempt, description="checkpoint save")

    def save(self, group: str, topic: str, partition: int, offset: int) -> None:
        """Record the next offset to read for ``(group, topic, partition)``."""
        if offset < 0:
            raise StreamingError("offset must be non-negative")
        self._offsets.setdefault(group, {}).setdefault(topic, {})[str(partition)] = offset
        self._persist()

    def offsets(self, group: str, topic: str) -> dict[int, int]:
        """All saved offsets of ``(group, topic)`` keyed by partition."""
        stored = self._offsets.get(group, {}).get(topic, {})
        return {int(partition): offset for partition, offset in stored.items()}

    def clear(self, group: str | None = None) -> None:
        """Forget saved offsets (of one group, or all groups)."""
        if group is None:
            self._offsets.clear()
        else:
            self._offsets.pop(group, None)
        self._persist()
