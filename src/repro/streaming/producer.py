"""Producer: buffered writes into the broker."""

from __future__ import annotations

from datetime import datetime
from typing import Any

from ..errors import StreamingError
from .broker import MessageBroker


class Producer:
    """Batching producer.

    Messages are buffered locally and flushed to the broker either explicitly
    or whenever the buffer reaches ``batch_size`` — mirroring the batched
    hand-off between the Datastreamer wrapper and the processing layer.
    """

    def __init__(self, broker: MessageBroker, batch_size: int = 100) -> None:
        if batch_size < 1:
            raise StreamingError("batch_size must be >= 1")
        self.broker = broker
        self.batch_size = batch_size
        self._buffer: list[tuple[str, str | None, dict[str, Any], datetime | None]] = []
        self.sent_count = 0

    def send(
        self,
        topic: str,
        value: dict[str, Any],
        key: str | None = None,
        timestamp: datetime | None = None,
    ) -> None:
        """Buffer one message (flushes automatically when the batch is full)."""
        self._buffer.append((topic, key, value, timestamp))
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def flush(self) -> int:
        """Deliver every buffered message to the broker; returns the count delivered."""
        delivered = 0
        for topic, key, value, timestamp in self._buffer:
            self.broker.produce(topic, value, key=key, timestamp=timestamp)
            delivered += 1
        self._buffer.clear()
        self.sent_count += delivered
        return delivered

    @property
    def pending(self) -> int:
        """Number of messages waiting in the local buffer."""
        return len(self._buffer)

    def __enter__(self) -> "Producer":
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        self.flush()
        return False
