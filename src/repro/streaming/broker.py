"""In-process message broker.

Topics are split into partitions; messages with the same key always land on
the same partition (preserving per-key ordering, e.g. per social account).
Consumer groups track committed offsets per partition, giving the platform
at-least-once delivery with replay — the messaging-queue semantics the
Datastreamer wrapper provides in the original deployment.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from datetime import datetime
from typing import Any, Iterable

from ..errors import OffsetOutOfRange, StreamingError, TopicNotFound
from .message import Message


@dataclass(frozen=True)
class TopicStats:
    """Size statistics of one topic."""

    topic: str
    partitions: int
    total_messages: int
    end_offsets: tuple[int, ...]


def _partition_for(key: str | None, n_partitions: int) -> int:
    if key is None:
        return 0
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(digest, "little") % n_partitions


class MessageBroker:
    """Thread-safe in-memory broker with topics, partitions and consumer groups.

    An optional :class:`repro.storage.faults.FaultInjector` exercises the
    ``broker.publish`` / ``broker.poll`` fault sites: an armed fault raises
    out of :meth:`produce` (before the message is appended) or :meth:`poll`
    (before any offset moves), modelling a broker round-trip that failed
    without side effects — callers retry or degrade.
    """

    def __init__(self, default_partitions: int = 4, fault_injector=None) -> None:
        if default_partitions < 1:
            raise StreamingError("default_partitions must be >= 1")
        self.default_partitions = default_partitions
        self.fault_injector = fault_injector
        self._topics: dict[str, list[list[Message]]] = {}
        self._committed: dict[tuple[str, str, int], int] = {}
        #: Per-(group, topic) partition where the next poll starts its
        #: round-robin — rotated so short polls don't starve high partitions.
        self._poll_start: dict[tuple[str, str], int] = {}
        self._lock = threading.RLock()

    # ---------------------------------------------------------------- topics

    def create_topic(self, topic: str, partitions: int | None = None) -> None:
        """Create a topic (idempotent; partition count fixed at creation)."""
        with self._lock:
            if topic in self._topics:
                return
            n = partitions if partitions is not None else self.default_partitions
            if n < 1:
                raise StreamingError("a topic needs at least one partition")
            self._topics[topic] = [[] for _ in range(n)]

    def has_topic(self, topic: str) -> bool:
        return topic in self._topics

    def topics(self) -> list[str]:
        return sorted(self._topics)

    def _partitions_of(self, topic: str) -> list[list[Message]]:
        try:
            return self._topics[topic]
        except KeyError:
            raise TopicNotFound(f"unknown topic {topic!r}") from None

    def topic_stats(self, topic: str) -> TopicStats:
        with self._lock:
            partitions = self._partitions_of(topic)
            return TopicStats(
                topic=topic,
                partitions=len(partitions),
                total_messages=sum(len(p) for p in partitions),
                end_offsets=tuple(len(p) for p in partitions),
            )

    # --------------------------------------------------------------- produce

    def produce(
        self,
        topic: str,
        value: dict[str, Any],
        key: str | None = None,
        timestamp: datetime | None = None,
    ) -> Message:
        """Append one message to ``topic`` and return it with its position."""
        if self.fault_injector is not None:
            self.fault_injector.check("broker.publish", topic)
        with self._lock:
            partitions = self._partitions_of(topic)
            partition = _partition_for(key, len(partitions))
            message = Message(
                topic=topic,
                value=value,
                key=key,
                timestamp=timestamp or datetime.utcnow(),
            ).with_position(partition, len(partitions[partition]))
            partitions[partition].append(message)
            return message

    def produce_many(self, topic: str, messages: Iterable[tuple[str | None, dict[str, Any]]]) -> int:
        """Append ``(key, value)`` pairs; returns the number produced."""
        count = 0
        for key, value in messages:
            self.produce(topic, value, key=key)
            count += 1
        return count

    # --------------------------------------------------------------- consume

    def committed_offset(self, group: str, topic: str, partition: int) -> int:
        """Next offset the group will read from ``(topic, partition)``."""
        return self._committed.get((group, topic, partition), 0)

    def commit(self, group: str, topic: str, partition: int, offset: int) -> None:
        """Commit ``offset`` (the next offset to read) for a consumer group."""
        with self._lock:
            partitions = self._partitions_of(topic)
            if partition < 0 or partition >= len(partitions):
                raise StreamingError(f"topic {topic!r} has no partition {partition}")
            if offset < 0 or offset > len(partitions[partition]):
                raise OffsetOutOfRange(
                    f"offset {offset} outside [0, {len(partitions[partition])}] "
                    f"for {topic}[{partition}]"
                )
            self._committed[(group, topic, partition)] = offset

    def poll(
        self,
        group: str,
        topic: str,
        max_messages: int = 100,
        auto_commit: bool = True,
    ) -> list[Message]:
        """Fetch up to ``max_messages`` uncommitted messages for a consumer group.

        Messages are taken round-robin across partitions in offset order.
        Each poll starts the rotation one partition past where the previous
        poll for this ``(group, topic)`` started, so a capped poll that cuts
        off mid-round spreads the cutoff across partitions instead of always
        draining partition 0 first and starving the highest ids.
        With ``auto_commit`` the returned messages are immediately marked as
        consumed; otherwise call :meth:`commit` explicitly for at-least-once
        processing.
        """
        if max_messages < 1:
            raise StreamingError("max_messages must be >= 1")
        if self.fault_injector is not None:
            self.fault_injector.check("broker.poll", topic)
        with self._lock:
            partitions = self._partitions_of(topic)
            n = len(partitions)
            out: list[Message] = []
            positions = {
                p: self.committed_offset(group, topic, p) for p in range(n)
            }
            start = self._poll_start.get((group, topic), 0) % n
            order = [(start + i) % n for i in range(n)]
            progress = True
            while len(out) < max_messages and progress:
                progress = False
                for partition_id in order:
                    log = partitions[partition_id]
                    position = positions[partition_id]
                    if position < len(log) and len(out) < max_messages:
                        out.append(log[position])
                        positions[partition_id] = position + 1
                        progress = True
            if out:
                self._poll_start[(group, topic)] = (start + 1) % n
            if auto_commit:
                for partition_id, position in positions.items():
                    self._committed[(group, topic, partition_id)] = position
            return out

    def lag(self, group: str, topic: str) -> int:
        """Number of messages the group has not yet consumed on ``topic``."""
        with self._lock:
            partitions = self._partitions_of(topic)
            return sum(
                len(log) - self.committed_offset(group, topic, p)
                for p, log in enumerate(partitions)
            )

    def seek_to_beginning(self, group: str, topic: str) -> None:
        """Reset a group's position on every partition of ``topic`` to offset 0."""
        with self._lock:
            partitions = self._partitions_of(topic)
            for partition_id in range(len(partitions)):
                self._committed[(group, topic, partition_id)] = 0

    def read_all(self, topic: str) -> list[Message]:
        """All messages of a topic in (partition, offset) order — for inspection/tests."""
        with self._lock:
            partitions = self._partitions_of(topic)
            out: list[Message] = []
            for log in partitions:
                out.extend(log)
            return out
