"""Messages exchanged through the broker."""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Any


@dataclass(frozen=True)
class Message:
    """One record on a topic partition.

    ``offset`` and ``partition`` are assigned by the broker when the message
    is appended; producers leave them at their defaults.
    """

    topic: str
    value: dict[str, Any]
    key: str | None = None
    timestamp: datetime = field(default_factory=datetime.utcnow)
    partition: int = -1
    offset: int = -1

    def with_position(self, partition: int, offset: int) -> "Message":
        """Return a copy stamped with its storage position."""
        return Message(
            topic=self.topic,
            value=self.value,
            key=self.key,
            timestamp=self.timestamp,
            partition=partition,
            offset=offset,
        )
