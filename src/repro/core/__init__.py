"""Core of the SciLens reproduction: the quality-indicator framework, the
article-evaluation pipeline, the topic insights of §4 and the platform
orchestrator that wires every substrate together.
"""

from .models import (
    Article,
    ExpertReview,
    Outlet,
    RatingClass,
    Reaction,
    ReactionKind,
    SocialPost,
)
from .indicators import (
    ContentIndicators,
    ContextIndicators,
    SocialIndicators,
    QualityProfile,
    IndicatorEngine,
)
from .scoring import ArticleAssessment, fuse_scores
from .pipeline import ArticleEvaluationPipeline
from .insights import TopicInsights, InsightsEngine
from .analytics import OutletActivityProfile, WarehouseAnalytics
from .platform import SciLensPlatform

__all__ = [
    "Article",
    "ExpertReview",
    "Outlet",
    "RatingClass",
    "Reaction",
    "ReactionKind",
    "SocialPost",
    "ContentIndicators",
    "ContextIndicators",
    "SocialIndicators",
    "QualityProfile",
    "IndicatorEngine",
    "ArticleAssessment",
    "fuse_scores",
    "ArticleEvaluationPipeline",
    "TopicInsights",
    "InsightsEngine",
    "OutletActivityProfile",
    "WarehouseAnalytics",
    "SciLensPlatform",
]
