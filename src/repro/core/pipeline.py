"""Real-time article evaluation (§4.1).

"An end-user of the platform can explore in real-time a wide range of
automatically extracted quality indicators combined with manually-operated
expert reviews ... This functionality is available for all the articles in
our news collection as well as for any arbitrary news article that a user
wants to evaluate."

:class:`ArticleEvaluationPipeline` is that path: given an article (or just its
URL, which is then scraped), it computes every automated indicator, folds in
whatever expert reviews exist, and returns the combined
:class:`~repro.core.scoring.ArticleAssessment`.
"""

from __future__ import annotations

from datetime import datetime
from typing import Mapping, Sequence

from ..config import IndicatorConfig
from ..errors import ScrapingError
from ..experts.aggregation import ReviewAggregator
from ..experts.reviews import ReviewStore
from ..models import Article, RatingClass, Reaction, SocialPost
from ..streaming.pipeline import article_id_for, scraped_to_article
from ..web.scraper import ArticleScraper
from .indicators.aggregate import IndicatorEngine
from .scoring import ArticleAssessment, fuse_scores


class ArticleEvaluationPipeline:
    """Evaluate single articles end-to-end: scrape → indicators → expert fusion."""

    def __init__(
        self,
        indicator_engine: IndicatorEngine | None = None,
        scraper: ArticleScraper | None = None,
        review_store: ReviewStore | None = None,
        review_aggregator: ReviewAggregator | None = None,
        outlet_ratings: Mapping[str, RatingClass] | None = None,
        config: IndicatorConfig | None = None,
    ) -> None:
        self.config = config or IndicatorConfig()
        self.indicator_engine = indicator_engine or IndicatorEngine(self.config)
        self.scraper = scraper
        self.review_store = review_store if review_store is not None else ReviewStore()
        self.review_aggregator = review_aggregator or ReviewAggregator(
            half_life_days=self.config.expert_half_life_days
        )
        # Kept by reference (not copied) so a live registry — e.g. the
        # platform's outlet_ratings dict — is reflected in later evaluations.
        self.outlet_ratings: Mapping[str, RatingClass] = (
            outlet_ratings if outlet_ratings is not None else {}
        )

    # ------------------------------------------------------------ evaluation

    def evaluate_article(
        self,
        article: Article,
        posts: Sequence[SocialPost] = (),
        reactions: Sequence[Reaction] | Mapping[str, Sequence[Reaction]] = (),
        links: Sequence[str] | None = None,
        as_of: datetime | None = None,
    ) -> ArticleAssessment:
        """Evaluate an already-extracted article."""
        profile = self.indicator_engine.profile(article, posts, reactions, links=links)

        reviews = self.review_store.latest_per_reviewer(article.article_id)
        expert_summary = (
            self.review_aggregator.summarize(article.article_id, reviews, as_of=as_of)
            if reviews
            else None
        )
        final_score = fuse_scores(profile, expert_summary, self.config)
        comments = tuple(expert_summary.comments) if expert_summary else ()

        return ArticleAssessment(
            article_id=article.article_id,
            url=article.url,
            title=article.title,
            outlet_domain=article.outlet_domain,
            profile=profile,
            expert_summary=expert_summary,
            final_score=final_score,
            outlet_rating=self.outlet_ratings.get(article.outlet_domain),
            topics=article.topics,
            expert_comments=comments,
        )

    def evaluate_url(
        self,
        url: str,
        posts: Sequence[SocialPost] = (),
        reactions: Sequence[Reaction] | Mapping[str, Sequence[Reaction]] = (),
        as_of: datetime | None = None,
    ) -> ArticleAssessment:
        """Scrape an arbitrary URL and evaluate it (the "any arbitrary news article" path)."""
        if self.scraper is None:
            raise ScrapingError("no scraper configured for URL evaluation")
        scraped = self.scraper.scrape(url)
        article = scraped_to_article(scraped, article_id=article_id_for(url))
        return self.evaluate_article(
            article, posts, reactions, links=list(scraped.links), as_of=as_of
        )

    # ---------------------------------------------------------------- reviews

    def add_review(self, review) -> None:
        """Attach an expert review so it is reflected in subsequent evaluations."""
        self.review_store.add(review)
