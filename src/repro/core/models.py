"""Public re-export of the shared domain model.

The dataclasses live in :mod:`repro.models` (a leaf module) so the substrates
can use them without importing the core package; user code should import them
from here (``repro.core.models``) or from the top-level ``repro`` namespace.
"""

from ..models import (
    LIKERT_MAX,
    LIKERT_MIN,
    REVIEW_CRITERIA,
    Article,
    ExpertReview,
    Outlet,
    RatingClass,
    Reaction,
    ReactionKind,
    SocialPost,
)

__all__ = [
    "LIKERT_MAX",
    "LIKERT_MIN",
    "REVIEW_CRITERIA",
    "Article",
    "ExpertReview",
    "Outlet",
    "RatingClass",
    "Reaction",
    "ReactionKind",
    "SocialPost",
]
