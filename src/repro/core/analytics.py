"""Warehouse analytics jobs.

The paper's analytics layer runs batch jobs (Spark in the original deployment)
over the Distributed Storage: per-outlet activity profiles, per-day volumes and
engagement roll-ups that feed the topic-insight views.  The group-by-count
roll-ups run on the warehouse's vectorised columnar path
(:meth:`WarehouseTable.scan_columns` / :meth:`WarehouseTable.aggregate`):
predicates become selection vectors over raw column arrays and no row dicts
are ever materialised.  :meth:`WarehouseAnalytics._table_dataset` remains the
row-based on-ramp into the :mod:`repro.compute` engine for ad-hoc dataflows.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from datetime import date
from typing import Mapping

from ..compute.dataset import Dataset
from ..compute.executor import LocalExecutor
from ..errors import WarehouseError
from ..models import RatingClass
from ..storage.warehouse.warehouse import Warehouse


@dataclass(frozen=True)
class OutletActivityProfile:
    """Per-outlet activity roll-up over the warehouse history."""

    outlet_domain: str
    articles: int
    topic_articles: int
    active_days: int
    posts: int
    reactions: int

    @property
    def topic_share(self) -> float:
        """Share of the outlet's output devoted to the topic of interest."""
        return self.topic_articles / self.articles if self.articles else 0.0

    @property
    def reactions_per_article(self) -> float:
        return self.reactions / self.articles if self.articles else 0.0


class WarehouseAnalytics:
    """Batch analytics over the warehouse using the compute engine."""

    def __init__(
        self,
        warehouse: Warehouse,
        executor: LocalExecutor | None = None,
        n_partitions: int = 4,
    ) -> None:
        self.warehouse = warehouse
        self.executor = executor or LocalExecutor()
        self.n_partitions = n_partitions

    # ------------------------------------------------------------- datasets

    def _table(self, table_name: str):
        if not self.warehouse.has_table(table_name):
            raise WarehouseError(f"warehouse has no table {table_name!r}")
        return self.warehouse.table(table_name)

    def _table_dataset(self, table_name: str, columns: list[str] | None = None) -> Dataset:
        rows = list(self._table(table_name).scan(columns=columns))
        return Dataset.from_iterable(rows, n_partitions=self.n_partitions, executor=self.executor)

    # ------------------------------------------------------------ roll-ups

    def daily_article_counts(self, topic_key: str | None = None) -> dict[date, int]:
        """Number of (optionally topic-filtered) articles per publication day.

        Runs column-at-a-time: the topic membership test is a selection vector
        over the ``topics`` array, and only the surviving ``published_at``
        values are ever touched.
        """
        table = self._table("articles")
        predicates = (
            {"topics": lambda topics: topic_key in (topics or [])}
            if topic_key is not None
            else None
        )
        per_day: Counter = Counter()
        for block in table.scan_columns(["published_at"], column_predicates=predicates):
            per_day.update(ts.date() for ts in block["published_at"])
        return dict(sorted(per_day.items()))

    def articles_per_outlet(self) -> dict[str, int]:
        """Total article count per outlet over the full history."""
        grouped = self._table("articles").aggregate(
            {"articles": ("count", "*")}, group_by="outlet_domain"
        )
        return dict(sorted((outlet, row["articles"]) for outlet, row in grouped.items()))

    def outlet_activity_profiles(
        self, topic_key: str = "covid19"
    ) -> dict[str, OutletActivityProfile]:
        """Join articles, posts and reactions into per-outlet activity profiles.

        The joins run over per-block column arrays (vectorised scan): the
        article/post/reaction rows are never materialised as dicts.
        """
        url_to_outlet: dict[str, str] = {}
        articles_per_outlet: Counter = Counter()
        topic_per_outlet: Counter = Counter()
        active_days: dict[str, set] = defaultdict(set)
        for block in self._table("articles").scan_columns(
            ["url", "outlet_domain", "published_at", "topics"]
        ):
            for url, outlet, published_at, topics in zip(
                block["url"], block["outlet_domain"], block["published_at"], block["topics"]
            ):
                url_to_outlet[url] = outlet
                articles_per_outlet[outlet] += 1
                if topic_key in (topics or []):
                    topic_per_outlet[outlet] += 1
                active_days[outlet].add(published_at.date())

        post_to_outlet: dict[str, str | None] = {}
        posts_per_outlet: Counter = Counter()
        if self.warehouse.has_table("posts"):
            for block in self._table("posts").scan_columns(["post_id", "article_url"]):
                for post_id, article_url in zip(block["post_id"], block["article_url"]):
                    outlet = url_to_outlet.get(article_url)
                    post_to_outlet[post_id] = outlet
                    if outlet:
                        posts_per_outlet[outlet] += 1

        reactions_per_outlet: Counter = Counter()
        if self.warehouse.has_table("reactions"):
            reaction_counts = self._table("reactions").aggregate(
                {"reactions": ("count", "*")}, group_by="post_id"
            )
            for post_id, row in reaction_counts.items():
                outlet = post_to_outlet.get(post_id)
                if outlet:
                    reactions_per_outlet[outlet] += row["reactions"]

        profiles = {
            outlet: OutletActivityProfile(
                outlet_domain=outlet,
                articles=count,
                topic_articles=topic_per_outlet.get(outlet, 0),
                active_days=len(active_days[outlet]),
                posts=posts_per_outlet.get(outlet, 0),
                reactions=reactions_per_outlet.get(outlet, 0),
            )
            for outlet, count in articles_per_outlet.items()
        }
        return dict(sorted(profiles.items()))

    def rating_class_summary(
        self, outlet_ratings: Mapping[str, RatingClass], topic_key: str = "covid19"
    ) -> dict[str, dict[str, float]]:
        """Aggregate the activity profiles per outlet rating class.

        This is the warehouse-side counterpart of the §4.2 views: per rating
        class, the mean topic share, mean reactions per article and totals.
        """
        profiles = self.outlet_activity_profiles(topic_key)
        grouped: dict[str, list[OutletActivityProfile]] = defaultdict(list)
        for outlet, profile in profiles.items():
            rating = outlet_ratings.get(outlet)
            if rating is not None:
                grouped[rating.value].append(profile)

        summary: dict[str, dict[str, float]] = {}
        for rating_value, members in sorted(grouped.items()):
            total_articles = sum(p.articles for p in members)
            summary[rating_value] = {
                "outlets": float(len(members)),
                "articles": float(total_articles),
                "topic_articles": float(sum(p.topic_articles for p in members)),
                "mean_topic_share": (
                    sum(p.topic_share for p in members) / len(members) if members else 0.0
                ),
                "mean_reactions_per_article": (
                    sum(p.reactions_per_article for p in members) / len(members) if members else 0.0
                ),
                "posts": float(sum(p.posts for p in members)),
                "reactions": float(sum(p.reactions for p in members)),
            }
        return summary
