"""Warehouse analytics jobs.

The paper's analytics layer runs batch jobs (Spark in the original deployment)
over the Distributed Storage: per-outlet activity profiles, per-day volumes and
engagement roll-ups that feed the topic-insight views.  Every counting roll-up
is *pushed down* to the warehouse's grouped-aggregation path
(:meth:`WarehouseTable.aggregate` with ``group_by``): grouping runs over
selection vectors and dictionary codes inside the storage layer and no row
dicts are ever materialised.  The only remaining column scans build the
url→outlet / post→outlet join maps, and those run vectorised
(:meth:`WarehouseTable.scan_columns`).  Block decode + filter work fans out
across the analytics executor's workers with a deterministic merge, so results
are identical at any worker count.  :meth:`WarehouseAnalytics._table_dataset`
remains the row-based on-ramp into the :mod:`repro.compute` engine for ad-hoc
dataflows.

The standing dashboard roll-ups go one step further: the platform registers
them as **materialized roll-ups** (:mod:`repro.storage.warehouse.rollups`,
see :func:`standing_rollup_specs`) that the scheduled migration refreshes
incrementally.  Readers serve from the materialized state whenever its block
identity is fresh — zero DFS reads — and fall back to the live pushdown path
otherwise, with byte-identical results either way.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from datetime import date, datetime
from typing import Any, Mapping

from ..compute.dataset import Dataset
from ..compute.executor import LocalExecutor
from ..errors import WarehouseError
from ..models import RatingClass
from ..storage.warehouse.rollups import RollupSpec
from ..storage.warehouse.warehouse import Warehouse

#: Names of the standing materialized roll-ups the platform registers (see
#: :func:`standing_rollup_specs`).  :class:`WarehouseAnalytics` serves its
#: dashboard reads from these when they are fresh and falls back to the live
#: grouped-pushdown path otherwise, so results are identical either way.
DAILY_ARTICLE_COUNTS_ROLLUP = "daily_article_counts"
ARTICLES_PER_OUTLET_ROLLUP = "articles_per_outlet"
_TOPIC_ARTICLES_ROLLUP_PREFIX = "topic_articles_per_outlet"


def topic_articles_rollup_name(topic_key: str) -> str:
    """Roll-up name of the per-outlet count of ``topic_key`` articles."""
    return f"{_TOPIC_ARTICLES_ROLLUP_PREFIX}:{topic_key}"


def _publication_day(ts: Any) -> Any:
    """Group-key mapper shared by the live aggregate and the roll-up spec —
    one function, so both paths bucket timestamps identically."""
    return ts.date() if ts is not None else None


def _topic_membership(topic_key: str) -> Any:
    def contains(topics: Any) -> bool:
        return topic_key in (topics or [])

    return contains


def standing_rollup_specs(topic_key: str = "covid19") -> list[RollupSpec]:
    """The standing roll-ups behind :meth:`WarehouseAnalytics.daily_article_counts`,
    :meth:`~WarehouseAnalytics.articles_per_outlet` and
    :meth:`~WarehouseAnalytics.rating_class_summary`.

    Each spec mirrors the exact grouped aggregate its live fallback runs
    (same group columns, same group-key mapping, same predicates), which is
    what makes materialized and live results interchangeable byte for byte.
    """
    return [
        RollupSpec(
            name=DAILY_ARTICLE_COUNTS_ROLLUP,
            table="articles",
            aggregates={"articles": ("count", "*")},
            group_by=("published_at",),
            group_key=_publication_day,
        ),
        RollupSpec(
            name=ARTICLES_PER_OUTLET_ROLLUP,
            table="articles",
            aggregates={"articles": ("count", "*")},
            group_by=("outlet_domain",),
        ),
        RollupSpec(
            name=topic_articles_rollup_name(topic_key),
            table="articles",
            aggregates={"articles": ("count", "*")},
            group_by=("outlet_domain",),
            column_predicates={"topics": _topic_membership(topic_key)},
        ),
    ]


@dataclass(frozen=True)
class OutletActivityProfile:
    """Per-outlet activity roll-up over the warehouse history."""

    outlet_domain: str
    articles: int
    topic_articles: int
    active_days: int
    posts: int
    reactions: int

    @property
    def topic_share(self) -> float:
        """Share of the outlet's output devoted to the topic of interest."""
        return self.topic_articles / self.articles if self.articles else 0.0

    @property
    def reactions_per_article(self) -> float:
        return self.reactions / self.articles if self.articles else 0.0


class WarehouseAnalytics:
    """Batch analytics over the warehouse using the compute engine."""

    def __init__(
        self,
        warehouse: Warehouse,
        executor: LocalExecutor | None = None,
        n_partitions: int = 4,
    ) -> None:
        self.warehouse = warehouse
        self.executor = executor or LocalExecutor()
        self.n_partitions = n_partitions

    # ------------------------------------------------------------- datasets

    def _table(self, table_name: str):
        if not self.warehouse.has_table(table_name):
            raise WarehouseError(f"warehouse has no table {table_name!r}")
        return self.warehouse.table(table_name)

    def _table_dataset(self, table_name: str, columns: list[str] | None = None) -> Dataset:
        rows = list(self._table(table_name).scan(columns=columns))
        return Dataset.from_iterable(rows, n_partitions=self.n_partitions, executor=self.executor)

    @staticmethod
    def _partitioned_by_day_of(table, column: str) -> bool:
        """Whether every partition holds exactly one calendar day of ``column``.

        Verified from the name-node block statistics (stats-only min/max
        aggregates — zero DFS reads): a partition qualifies when its min and
        max timestamps share one date and that date's ISO form *is* the
        partition key.  Distinct partitions then correspond one-to-one to
        distinct ``column`` days, so partition membership can stand in for
        distinct-day counting.
        """
        for partition in table.partitions():
            extremes = table.aggregate(
                {"lo": ("min", column), "hi": ("max", column)},
                partitions=[partition],
            )
            low, high = extremes.get("lo"), extremes.get("hi")
            if not isinstance(low, datetime) or not isinstance(high, datetime):
                return False
            if low.date() != high.date() or low.date().isoformat() != partition:
                return False
        return True

    # ------------------------------------------------------------ roll-ups

    def _served_rollup(self, name: str) -> dict | None:
        """Materialized roll-up result when registered *and* fresh, else
        ``None`` (the caller then runs the live grouped aggregation)."""
        return self.warehouse.rollups.serve(name)

    def daily_article_counts(self, topic_key: str | None = None) -> dict[date, int]:
        """Number of (optionally topic-filtered) articles per publication day.

        The unfiltered view is served from the standing materialized roll-up
        (:data:`DAILY_ARTICLE_COUNTS_ROLLUP`) whenever its state is fresh —
        no block is read at all.  Otherwise (topic filter, no registered
        roll-up, or state gone stale between migrations) it is a grouped
        count pushed down to the warehouse: the topic membership test is a
        selection vector over the ``topics`` array, grouping runs on the
        surviving ``published_at`` values (mapped to their calendar day),
        and no rows are materialised.
        """
        if topic_key is None:
            served = self._served_rollup(DAILY_ARTICLE_COUNTS_ROLLUP)
            if served is not None:
                return dict(sorted(
                    (day, row["articles"])
                    for day, row in served.items() if day is not None
                ))
        table = self._table("articles")
        predicates = (
            {"topics": _topic_membership(topic_key)}
            if topic_key is not None
            else None
        )
        grouped = table.aggregate(
            {"articles": ("count", "*")},
            column_predicates=predicates,
            group_by="published_at",
            group_key=_publication_day,
            executor=self.executor,
        )
        return dict(sorted(
            (day, row["articles"]) for day, row in grouped.items() if day is not None
        ))

    def articles_per_outlet(self) -> dict[str, int]:
        """Total article count per outlet over the full history (served from
        the standing materialized roll-up when fresh, else computed live)."""
        served = self._served_rollup(ARTICLES_PER_OUTLET_ROLLUP)
        if served is not None:
            return dict(sorted(
                (outlet, row["articles"]) for outlet, row in served.items()
            ))
        grouped = self._table("articles").aggregate(
            {"articles": ("count", "*")}, group_by="outlet_domain",
            executor=self.executor,
        )
        return dict(sorted((outlet, row["articles"]) for outlet, row in grouped.items()))

    def outlet_activity_profiles(
        self, topic_key: str = "covid19"
    ) -> dict[str, OutletActivityProfile]:
        """Join articles, posts and reactions into per-outlet activity profiles.

        Every count in the profile is a grouped aggregate pushed down to the
        warehouse (per-outlet article totals, topic-filtered totals, active
        days, per-url post counts and per-post reaction counts); only the two
        join maps (url→outlet, post→outlet) are built from vectorised column
        scans.  No article/post/reaction row is ever materialised as a dict.
        The per-outlet article totals, the topic-filtered totals (when
        ``topic_key`` matches the registered standing roll-up) and the
        active-day partition membership are additionally served from the
        materialized roll-up state whenever it is fresh — identical numbers,
        zero block reads.
        """
        articles = self._table("articles")
        served_articles = self._served_rollup(ARTICLES_PER_OUTLET_ROLLUP)
        if served_articles is None:
            served_articles = articles.aggregate(
                {"articles": ("count", "*")},
                group_by="outlet_domain",
                executor=self.executor,
            )
        articles_per_outlet = {
            outlet: row["articles"] for outlet, row in served_articles.items()
        }
        topic_grouped = self._served_rollup(topic_articles_rollup_name(topic_key))
        if topic_grouped is None:
            topic_grouped = articles.aggregate(
                {"articles": ("count", "*")},
                column_predicates={"topics": _topic_membership(topic_key)},
                group_by="outlet_domain",
                executor=self.executor,
            )
        topic_per_outlet = {
            outlet: row["articles"] for outlet, row in topic_grouped.items()
        }
        # Distinct active days: the platform lays the articles table out in
        # publication-day partitions (see ``SciLensPlatform``/``MigrationJob``),
        # making an outlet's active days exactly the partitions it appears in —
        # one cheap per-partition grouped count over dictionary codes, no
        # per-timestamp grouping.  The layout is *verified* from name-node
        # statistics first (zero DFS reads); any other layout falls back to
        # grouping on the actual publication timestamps.  A fresh per-outlet
        # roll-up answers the partition membership straight from its stored
        # per-partition group keys.
        active_days: Counter = Counter()
        if self._partitioned_by_day_of(articles, "published_at"):
            outlet_rollup = self.warehouse.rollups.get(ARTICLES_PER_OUTLET_ROLLUP)
            partition_groups = (
                outlet_rollup.fresh_partition_groups()
                if outlet_rollup is not None else None
            )
            if partition_groups is not None:
                for groups in partition_groups.values():
                    active_days.update(groups)
            else:
                for partition in articles.partitions():
                    in_partition = articles.aggregate(
                        {"articles": ("count", "*")},
                        partitions=[partition],
                        group_by="outlet_domain",
                        executor=self.executor,
                    )
                    active_days.update(in_partition.keys())
        else:
            day_groups = articles.aggregate(
                {"articles": ("count", "*")},
                group_by=["outlet_domain", "published_at"],
                group_key=lambda key: (
                    key[0], key[1].date() if key[1] is not None else None
                ),
                executor=self.executor,
            )
            for (outlet, day), _row in day_groups.items():
                if day is not None:
                    active_days[outlet] += 1

        url_to_outlet: dict[str, str] = {}
        for block in articles.scan_columns(
            ["url", "outlet_domain"], executor=self.executor
        ):
            url_to_outlet.update(zip(block["url"], block["outlet_domain"]))

        # Post counts ride the same single vectorised pass that builds the
        # post → outlet join map (no second scan of the posts table).
        post_to_outlet: dict[str, str | None] = {}
        posts_per_outlet: Counter = Counter()
        if self.warehouse.has_table("posts"):
            for block in self._table("posts").scan_columns(
                ["post_id", "article_url"], executor=self.executor
            ):
                for post_id, article_url in zip(block["post_id"], block["article_url"]):
                    outlet = url_to_outlet.get(article_url)
                    post_to_outlet[post_id] = outlet
                    if outlet:
                        posts_per_outlet[outlet] += 1

        # The reaction → outlet join is pushed into the grouped aggregation
        # itself: ``group_key`` maps each distinct post through the in-memory
        # build side (a map-side hash join), so the storage layer folds
        # straight into ~one group per outlet instead of handing back one
        # group per post for re-mapping here.
        reactions_per_outlet: Counter = Counter()
        if self.warehouse.has_table("reactions"):
            reactions_by_outlet = self._table("reactions").aggregate(
                {"reactions": ("count", "*")}, group_by="post_id",
                group_key=post_to_outlet.get,
                executor=self.executor,
            )
            for outlet, row in reactions_by_outlet.items():
                if outlet:
                    reactions_per_outlet[outlet] += row["reactions"]

        profiles = {
            outlet: OutletActivityProfile(
                outlet_domain=outlet,
                articles=count,
                topic_articles=topic_per_outlet.get(outlet, 0),
                active_days=active_days.get(outlet, 0),
                posts=posts_per_outlet.get(outlet, 0),
                reactions=reactions_per_outlet.get(outlet, 0),
            )
            for outlet, count in articles_per_outlet.items()
        }
        return dict(sorted(profiles.items()))

    def rating_class_summary(
        self, outlet_ratings: Mapping[str, RatingClass], topic_key: str = "covid19"
    ) -> dict[str, dict[str, float]]:
        """Aggregate the activity profiles per outlet rating class.

        This is the warehouse-side counterpart of the §4.2 views: per rating
        class, the mean topic share, mean reactions per article and totals.
        The per-outlet inputs come from :meth:`outlet_activity_profiles`,
        i.e. from grouped aggregates pushed down to the warehouse; only the
        final per-class combination (a handful of outlets per class) runs
        here.
        """
        profiles = self.outlet_activity_profiles(topic_key)
        return summarize_profiles_by_rating(profiles, outlet_ratings)

    # ---------------------------------------------------------- maintenance

    def storage_overview(self) -> dict[str, Any]:
        """Physical warehouse health: per-table block counts, fragmentation
        and compression ratios, from name-node metadata only (no DFS reads).

        ``fragmented_partitions`` counts partitions holding more than one
        block — the partitions a compaction pass
        (:meth:`~repro.storage.warehouse.warehouse.Warehouse.compact`) would
        merge.  Roll-up jobs consult this to decide when re-clustering is
        due.  Built from the constant-size
        :meth:`~repro.storage.warehouse.warehouse.WarehouseTable.storage_totals`
        of each table, so polling it never materialises per-block metadata.
        """
        tables: dict[str, dict[str, Any]] = {}
        for name in self.warehouse.table_names():
            totals = self.warehouse.table(name).storage_totals()
            tables[name] = {
                "rows": totals["row_count"],
                "blocks": totals["block_count"],
                "partitions": totals["partition_count"],
                "fragmented_partitions": totals["fragmented_partitions"],
                "compressed_bytes": totals["compressed_bytes"],
                "uncompressed_bytes": totals["uncompressed_bytes"],
                "compression_ratio": round(totals["compression_ratio"], 3),
            }
        compressed = sum(t["compressed_bytes"] for t in tables.values())
        uncompressed = sum(t["uncompressed_bytes"] for t in tables.values())
        return {
            "tables": tables,
            "total_compressed_bytes": compressed,
            "total_uncompressed_bytes": uncompressed,
            "overall_compression_ratio": round(
                uncompressed / compressed, 3
            ) if compressed else 1.0,
        }


def summarize_profiles_by_rating(
    profiles: Mapping[str, OutletActivityProfile],
    outlet_ratings: Mapping[str, RatingClass],
) -> dict[str, dict[str, float]]:
    """Combine per-outlet activity profiles into per-rating-class statistics.

    Pure combination step (no storage access), shared by
    :meth:`WarehouseAnalytics.rating_class_summary` and by benchmarks that
    compare different ways of producing the same profiles: identical profile
    inputs give bit-identical float outputs, because the accumulation order is
    fixed by the sorted outlet/class iteration.
    """
    grouped: dict[str, list[OutletActivityProfile]] = defaultdict(list)
    for outlet, profile in sorted(profiles.items()):
        rating = outlet_ratings.get(outlet)
        if rating is not None:
            grouped[rating.value].append(profile)

    summary: dict[str, dict[str, float]] = {}
    for rating_value, members in sorted(grouped.items()):
        total_articles = sum(p.articles for p in members)
        summary[rating_value] = {
            "outlets": float(len(members)),
            "articles": float(total_articles),
            "topic_articles": float(sum(p.topic_articles for p in members)),
            "mean_topic_share": (
                sum(p.topic_share for p in members) / len(members) if members else 0.0
            ),
            "mean_reactions_per_article": (
                sum(p.reactions_per_article for p in members) / len(members) if members else 0.0
            ),
            "posts": float(sum(p.posts for p in members)),
            "reactions": float(sum(p.reactions for p in members)),
        }
    return summary
