"""Warehouse analytics jobs.

The paper's analytics layer runs batch jobs (Spark in the original deployment)
over the Distributed Storage: per-outlet activity profiles, per-day volumes and
engagement roll-ups that feed the topic-insight views.  This module expresses
those jobs against the :mod:`repro.compute` engine so they run as partitioned,
lineage-tracked dataflows over warehouse scans.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from datetime import date
from typing import Mapping

from ..compute.dataset import Dataset
from ..compute.executor import LocalExecutor
from ..errors import WarehouseError
from ..models import RatingClass
from ..storage.warehouse.warehouse import Warehouse


@dataclass(frozen=True)
class OutletActivityProfile:
    """Per-outlet activity roll-up over the warehouse history."""

    outlet_domain: str
    articles: int
    topic_articles: int
    active_days: int
    posts: int
    reactions: int

    @property
    def topic_share(self) -> float:
        """Share of the outlet's output devoted to the topic of interest."""
        return self.topic_articles / self.articles if self.articles else 0.0

    @property
    def reactions_per_article(self) -> float:
        return self.reactions / self.articles if self.articles else 0.0


class WarehouseAnalytics:
    """Batch analytics over the warehouse using the compute engine."""

    def __init__(
        self,
        warehouse: Warehouse,
        executor: LocalExecutor | None = None,
        n_partitions: int = 4,
    ) -> None:
        self.warehouse = warehouse
        self.executor = executor or LocalExecutor()
        self.n_partitions = n_partitions

    # ------------------------------------------------------------- datasets

    def _table_dataset(self, table_name: str, columns: list[str] | None = None) -> Dataset:
        if not self.warehouse.has_table(table_name):
            raise WarehouseError(f"warehouse has no table {table_name!r}")
        rows = list(self.warehouse.table(table_name).scan(columns=columns))
        return Dataset.from_iterable(rows, n_partitions=self.n_partitions, executor=self.executor)

    # ------------------------------------------------------------ roll-ups

    def daily_article_counts(self, topic_key: str | None = None) -> dict[date, int]:
        """Number of (optionally topic-filtered) articles per publication day."""
        dataset = self._table_dataset("articles", columns=["published_at", "topics"])
        if topic_key is not None:
            dataset = dataset.filter(lambda row: topic_key in (row.get("topics") or []))
        per_day = (
            dataset.key_by(lambda row: row["published_at"].date())
            .map(lambda pair: (pair[0], 1))
            .reduce_by_key(lambda a, b: a + b)
            .to_dict()
        )
        return dict(sorted(per_day.items()))

    def articles_per_outlet(self) -> dict[str, int]:
        """Total article count per outlet over the full history."""
        return dict(
            sorted(
                self._table_dataset("articles", columns=["outlet_domain"])
                .key_by(lambda row: row["outlet_domain"])
                .count_by_key()
                .items()
            )
        )

    def outlet_activity_profiles(
        self, topic_key: str = "covid19"
    ) -> dict[str, OutletActivityProfile]:
        """Join articles, posts and reactions into per-outlet activity profiles."""
        articles = self._table_dataset(
            "articles", columns=["article_id", "url", "outlet_domain", "published_at", "topics"]
        ).collect()
        url_to_outlet = {row["url"]: row["outlet_domain"] for row in articles}

        posts = (
            self._table_dataset("posts", columns=["post_id", "article_url"]).collect()
            if self.warehouse.has_table("posts")
            else []
        )
        post_to_outlet = {
            row["post_id"]: url_to_outlet.get(row["article_url"]) for row in posts
        }
        posts_per_outlet: dict[str, int] = defaultdict(int)
        for row in posts:
            outlet = url_to_outlet.get(row["article_url"])
            if outlet:
                posts_per_outlet[outlet] += 1

        reactions_per_outlet: dict[str, int] = defaultdict(int)
        if self.warehouse.has_table("reactions"):
            reaction_counts = (
                self._table_dataset("reactions", columns=["post_id"])
                .key_by(lambda row: row["post_id"])
                .count_by_key()
            )
            for post_id, count in reaction_counts.items():
                outlet = post_to_outlet.get(post_id)
                if outlet:
                    reactions_per_outlet[outlet] += count

        profiles: dict[str, OutletActivityProfile] = {}
        grouped: dict[str, list[dict]] = defaultdict(list)
        for row in articles:
            grouped[row["outlet_domain"]].append(row)
        for outlet, rows in grouped.items():
            profiles[outlet] = OutletActivityProfile(
                outlet_domain=outlet,
                articles=len(rows),
                topic_articles=sum(1 for r in rows if topic_key in (r.get("topics") or [])),
                active_days=len({r["published_at"].date() for r in rows}),
                posts=posts_per_outlet.get(outlet, 0),
                reactions=reactions_per_outlet.get(outlet, 0),
            )
        return dict(sorted(profiles.items()))

    def rating_class_summary(
        self, outlet_ratings: Mapping[str, RatingClass], topic_key: str = "covid19"
    ) -> dict[str, dict[str, float]]:
        """Aggregate the activity profiles per outlet rating class.

        This is the warehouse-side counterpart of the §4.2 views: per rating
        class, the mean topic share, mean reactions per article and totals.
        """
        profiles = self.outlet_activity_profiles(topic_key)
        grouped: dict[str, list[OutletActivityProfile]] = defaultdict(list)
        for outlet, profile in profiles.items():
            rating = outlet_ratings.get(outlet)
            if rating is not None:
                grouped[rating.value].append(profile)

        summary: dict[str, dict[str, float]] = {}
        for rating_value, members in sorted(grouped.items()):
            total_articles = sum(p.articles for p in members)
            summary[rating_value] = {
                "outlets": float(len(members)),
                "articles": float(total_articles),
                "topic_articles": float(sum(p.topic_articles for p in members)),
                "mean_topic_share": (
                    sum(p.topic_share for p in members) / len(members) if members else 0.0
                ),
                "mean_reactions_per_article": (
                    sum(p.reactions_per_article for p in members) / len(members) if members else 0.0
                ),
                "posts": float(sum(p.posts for p in members)),
                "reactions": float(sum(p.reactions for p in members)),
            }
        return summary
