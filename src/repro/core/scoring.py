"""Fusion of automated indicators with expert reviews into the displayed score.

The platform shows, for every article, "automatically extracted quality
indicators combined with manually-operated expert reviews" (Figure 3).  The
:class:`ArticleAssessment` is that combined card; :func:`fuse_scores` computes
the single headline score, weighing the expert consensus more heavily than any
individual automated family (experts are reliable but scarce — §1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..config import IndicatorConfig
from ..experts.aggregation import ArticleReviewSummary
from ..models import RatingClass
from .indicators.aggregate import QualityProfile


@dataclass(frozen=True)
class ArticleAssessment:
    """The combined automated + expert view of one article (the Figure 3 card)."""

    article_id: str
    url: str
    title: str
    outlet_domain: str
    profile: QualityProfile
    expert_summary: ArticleReviewSummary | None
    final_score: float
    outlet_rating: RatingClass | None = None
    topics: tuple[str, ...] = ()
    expert_comments: tuple[str, ...] = ()
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def has_expert_reviews(self) -> bool:
        return self.expert_summary is not None and self.expert_summary.n_reviews > 0

    @property
    def rating_class(self) -> RatingClass:
        """Rating class implied by the final score."""
        return RatingClass.from_score(self.final_score)

    def to_payload(self) -> dict[str, Any]:
        """JSON-friendly payload — what the Indicators API returns to the UI."""
        payload: dict[str, Any] = {
            "article_id": self.article_id,
            "url": self.url,
            "title": self.title,
            "outlet_domain": self.outlet_domain,
            "outlet_rating": self.outlet_rating.value if self.outlet_rating else None,
            "topics": list(self.topics),
            "final_score": self.final_score,
            "final_rating": self.rating_class.value,
            "indicators": self.profile.as_dict(),
            "family_scores": self.profile.family_scores(),
            "expert": self.expert_summary.as_dict() if self.expert_summary else None,
            "expert_comments": list(self.expert_comments),
        }
        payload.update(self.extras)
        return payload


def fuse_scores(
    profile: QualityProfile,
    expert_summary: ArticleReviewSummary | None = None,
    config: IndicatorConfig | None = None,
) -> float:
    """Combine the automated score with the expert consensus.

    Without expert reviews the automated score stands alone; with reviews the
    two are combined with the configured weights (the expert weight applies to
    the whole review consensus, the automated side keeps the sum of the three
    family weights).
    """
    config = config or IndicatorConfig()
    config.validate()
    automated_weight = config.content_weight + config.context_weight + config.social_weight

    if expert_summary is None or expert_summary.n_reviews == 0:
        return profile.automated_score

    total = automated_weight + config.expert_weight
    if total == 0:
        return profile.automated_score
    return (
        automated_weight * profile.automated_score
        + config.expert_weight * expert_summary.overall_quality
    ) / total
