"""Content indicators.

"Regarding the content of a news article, we consider various well-established
metrics for the quality of news such as the click-baitness of its title, the
subjectivity, and readability of its body and whether it is by-lined by its
author." (§3.1)
"""

from __future__ import annotations

from dataclasses import dataclass

from ...models import Article
from ...nlp.clickbait import ClickbaitScorer
from ...nlp.readability import ReadabilityReport, readability_report
from ...nlp.subjectivity import SubjectivityScorer


@dataclass(frozen=True)
class ContentIndicators:
    """The content-indicator family for one article."""

    article_id: str
    clickbait_score: float
    subjectivity: float
    readability: float
    has_byline: bool
    word_count: int
    readability_report: ReadabilityReport | None = None

    @property
    def quality_score(self) -> float:
        """Content quality in ``[0, 1]``: readable, objective, non-clickbait, by-lined."""
        components = [
            1.0 - self.clickbait_score,
            1.0 - self.subjectivity,
            self.readability,
            1.0 if self.has_byline else 0.0,
        ]
        return sum(components) / len(components)

    def as_dict(self) -> dict[str, float]:
        return {
            "clickbait_score": self.clickbait_score,
            "subjectivity": self.subjectivity,
            "readability": self.readability,
            "has_byline": 1.0 if self.has_byline else 0.0,
            "word_count": float(self.word_count),
            "content_quality": self.quality_score,
        }


class ContentIndicatorComputer:
    """Computes the content indicators from an article's title, body and by-line."""

    def __init__(
        self,
        clickbait_scorer: ClickbaitScorer | None = None,
        subjectivity_scorer: SubjectivityScorer | None = None,
        keep_readability_report: bool = False,
    ) -> None:
        self.clickbait_scorer = clickbait_scorer or ClickbaitScorer()
        self.subjectivity_scorer = subjectivity_scorer or SubjectivityScorer()
        self.keep_readability_report = keep_readability_report

    def compute(self, article: Article) -> ContentIndicators:
        """Compute the content indicators of ``article``."""
        report = readability_report(article.text)
        return ContentIndicators(
            article_id=article.article_id,
            clickbait_score=self.clickbait_scorer.score(article.title),
            subjectivity=self.subjectivity_scorer.score(article.text),
            readability=report.score,
            has_byline=article.has_byline,
            word_count=article.word_count(),
            readability_report=report if self.keep_readability_report else None,
        )
