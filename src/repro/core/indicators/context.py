"""News-context indicators.

"As for the news context of an article, we investigate the strength of the
connection between this article and its primary sources of information":
internal references (same outlet), external references (potential primary
sources such as other outlets), and scientific references (academic
repositories, grey literature, peer-reviewed journals, institutional
websites). (§3.1)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ...models import Article
from ...web.html import parse_html
from ...web.references import ReferenceClassifier, ReferenceProfile


@dataclass(frozen=True)
class ContextIndicators:
    """The news-context indicator family for one article."""

    article_id: str
    internal_references: int
    external_references: int
    scientific_references: int

    @property
    def total_references(self) -> int:
        return self.internal_references + self.external_references + self.scientific_references

    @property
    def scientific_ratio(self) -> float:
        """Share of scientific references — the Figure 5-right quantity."""
        total = self.total_references
        return self.scientific_references / total if total else 0.0

    @property
    def quality_score(self) -> float:
        """Context quality in ``[0, 1]``.

        Rewards citing primary/scientific sources: scientific references carry
        most of the weight, external references some, and having no references
        at all scores 0.
        """
        if self.total_references == 0:
            return 0.0
        scientific_component = min(1.0, self.scientific_references / 3.0)
        external_component = min(1.0, self.external_references / 4.0)
        ratio_component = self.scientific_ratio
        return 0.5 * scientific_component + 0.2 * external_component + 0.3 * ratio_component

    def as_dict(self) -> dict[str, float]:
        return {
            "internal_references": float(self.internal_references),
            "external_references": float(self.external_references),
            "scientific_references": float(self.scientific_references),
            "scientific_ratio": self.scientific_ratio,
            "context_quality": self.quality_score,
        }


class ContextIndicatorComputer:
    """Extracts and classifies an article's outgoing references."""

    def __init__(self, classifier: ReferenceClassifier | None = None) -> None:
        self.classifier = classifier or ReferenceClassifier()

    def compute(self, article: Article, links: Sequence[str] | None = None) -> ContextIndicators:
        """Compute the context indicators of ``article``.

        ``links`` may be passed when the caller already extracted them (e.g.
        from the scraper); otherwise they are parsed out of ``article.html``.
        """
        if links is None:
            links = parse_html(article.html).link_hrefs() if article.html else []
        profile = self.classifier.profile(list(links), article.outlet_domain)
        return self.from_profile(article.article_id, profile)

    @staticmethod
    def from_profile(article_id: str, profile: ReferenceProfile) -> ContextIndicators:
        """Build the indicator object from an already-computed reference profile."""
        return ContextIndicators(
            article_id=article_id,
            internal_references=profile.internal,
            external_references=profile.external,
            scientific_references=profile.scientific,
        )
