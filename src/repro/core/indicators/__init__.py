"""Automated quality indicators (§3.1).

Three heterogeneous families:

* **content** — click-baitness of the title, subjectivity and readability of
  the body, presence of an author by-line;
* **news context** — internal, external and scientific references;
* **social media** — reach (popularity proxy) and stance of the discussion.

:class:`IndicatorEngine` computes all three and fuses them (together with the
expert reviews handled elsewhere) into a :class:`QualityProfile`.
"""

from .content import ContentIndicators, ContentIndicatorComputer
from .context import ContextIndicators, ContextIndicatorComputer
from .social import SocialIndicators, SocialIndicatorComputer
from .aggregate import QualityProfile, IndicatorEngine

__all__ = [
    "ContentIndicators",
    "ContentIndicatorComputer",
    "ContextIndicators",
    "ContextIndicatorComputer",
    "SocialIndicators",
    "SocialIndicatorComputer",
    "QualityProfile",
    "IndicatorEngine",
]
