"""Social-media indicators.

"Finally, regarding the social media context, we measure two aspects,
specifically the reach and stance towards a news article." (§3.1)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ...models import Article, Reaction, SocialPost
from ...nlp.stance import StanceClassifier
from ...social.reach import ReachReport, compute_reach
from ...social.stance_aggregate import StanceDistribution, aggregate_stance


@dataclass(frozen=True)
class SocialIndicators:
    """The social-media indicator family for one article."""

    article_id: str
    n_posts: int
    n_reactions: int
    popularity: float
    weighted_reach: float
    positive_stance: float
    negative_stance: float

    @property
    def net_stance(self) -> float:
        return self.positive_stance - self.negative_stance

    @property
    def quality_score(self) -> float:
        """Social quality in ``[0, 1]``.

        Reach is engagement, not quality; the quality contribution comes from
        the stance of the discussion (supportive discussions score high,
        heavily questioned/contradicted articles score low).  Articles with no
        classified discussion sit at the neutral 0.5.
        """
        if self.n_posts == 0:
            return 0.5
        return max(0.0, min(1.0, 0.5 + 0.5 * self.net_stance))

    def as_dict(self) -> dict[str, float]:
        return {
            "n_posts": float(self.n_posts),
            "n_reactions": float(self.n_reactions),
            "popularity": self.popularity,
            "weighted_reach": self.weighted_reach,
            "positive_stance": self.positive_stance,
            "negative_stance": self.negative_stance,
            "social_quality": self.quality_score,
        }


class SocialIndicatorComputer:
    """Computes reach and stance indicators from the article's social context."""

    def __init__(self, stance_classifier: StanceClassifier | None = None) -> None:
        self.stance_classifier = stance_classifier or StanceClassifier()

    def compute(
        self,
        article: Article,
        posts: Sequence[SocialPost],
        reactions: Sequence[Reaction] | Mapping[str, Sequence[Reaction]] = (),
    ) -> SocialIndicators:
        """Compute the social indicators of ``article``."""
        reach = compute_reach(article.url, posts, reactions)
        flat_reactions = _flatten(reactions)
        stance = aggregate_stance(article.url, list(posts), flat_reactions, self.stance_classifier)
        return self.from_reports(article.article_id, reach, stance)

    @staticmethod
    def from_reports(
        article_id: str, reach: ReachReport, stance: StanceDistribution
    ) -> SocialIndicators:
        """Build the indicator object from precomputed reach/stance reports."""
        return SocialIndicators(
            article_id=article_id,
            n_posts=reach.n_posts,
            n_reactions=reach.n_reactions,
            popularity=reach.popularity,
            weighted_reach=reach.weighted_reach,
            positive_stance=stance.positive_fraction,
            negative_stance=stance.negative_fraction,
        )


def _flatten(
    reactions: Sequence[Reaction] | Mapping[str, Sequence[Reaction]],
) -> list[Reaction]:
    if isinstance(reactions, Mapping):
        return [reaction for group in reactions.values() for reaction in group]
    return list(reactions)
