"""Fusion of the indicator families into a per-article quality profile."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ...config import IndicatorConfig
from ...models import Article, Reaction, SocialPost
from .content import ContentIndicatorComputer, ContentIndicators
from .context import ContextIndicatorComputer, ContextIndicators
from .social import SocialIndicatorComputer, SocialIndicators


@dataclass(frozen=True)
class QualityProfile:
    """All automated indicators of one article plus the fused automated score."""

    article_id: str
    content: ContentIndicators
    context: ContextIndicators
    social: SocialIndicators
    automated_score: float

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary of every indicator (the payload the API serves)."""
        out: dict[str, float] = {"automated_score": self.automated_score}
        out.update(self.content.as_dict())
        out.update(self.context.as_dict())
        out.update(self.social.as_dict())
        return out

    def family_scores(self) -> dict[str, float]:
        """Per-family quality scores in ``[0, 1]``."""
        return {
            "content": self.content.quality_score,
            "context": self.context.quality_score,
            "social": self.social.quality_score,
        }


class IndicatorEngine:
    """Computes every automated indicator family and fuses them.

    The engine is the piece the Indicators API calls for real-time article
    evaluation; the individual computers can also be used stand-alone (e.g. by
    the training jobs or the ablation benchmarks).
    """

    def __init__(
        self,
        config: IndicatorConfig | None = None,
        content_computer: ContentIndicatorComputer | None = None,
        context_computer: ContextIndicatorComputer | None = None,
        social_computer: SocialIndicatorComputer | None = None,
    ) -> None:
        self.config = config or IndicatorConfig()
        self.config.validate()
        self.content_computer = content_computer or ContentIndicatorComputer()
        self.context_computer = context_computer or ContextIndicatorComputer()
        self.social_computer = social_computer or SocialIndicatorComputer()

    def fuse(
        self,
        content: ContentIndicators,
        context: ContextIndicators,
        social: SocialIndicators,
    ) -> float:
        """Weighted fusion of the family quality scores into one automated score."""
        weights = {
            "content": self.config.content_weight,
            "context": self.config.context_weight,
            "social": self.config.social_weight,
        }
        scores = {
            "content": content.quality_score,
            "context": context.quality_score,
            "social": social.quality_score,
        }
        total_weight = sum(weights.values())
        if total_weight == 0:
            return 0.0
        return sum(weights[family] * scores[family] for family in weights) / total_weight

    def profile(
        self,
        article: Article,
        posts: Sequence[SocialPost] = (),
        reactions: Sequence[Reaction] | Mapping[str, Sequence[Reaction]] = (),
        links: Sequence[str] | None = None,
    ) -> QualityProfile:
        """Compute the full quality profile of ``article``."""
        content = self.content_computer.compute(article)
        context = self.context_computer.compute(article, links=links)
        social = self.social_computer.compute(article, list(posts), reactions)
        return QualityProfile(
            article_id=article.article_id,
            content=content,
            context=context,
            social=social,
            automated_score=self.fuse(content, context, social),
        )

    def profile_many(
        self,
        articles: Sequence[Article],
        posts_by_url: Mapping[str, Sequence[SocialPost]] | None = None,
        reactions_by_post: Mapping[str, Sequence[Reaction]] | None = None,
    ) -> list[QualityProfile]:
        """Batch-profile several articles (used by the periodic analytics job)."""
        posts_by_url = posts_by_url or {}
        reactions_by_post = reactions_by_post or {}
        profiles: list[QualityProfile] = []
        for article in articles:
            posts = list(posts_by_url.get(article.url, ()))
            post_ids = {post.post_id for post in posts}
            reactions = {
                post_id: list(reactions_by_post.get(post_id, ()))
                for post_id in post_ids
            }
            profiles.append(self.profile(article, posts, reactions))
        return profiles
