"""Operational-store table schemas used by the platform.

These are the RDBMS tables of the data layer (Figure 2): articles, social
postings, reactions, expert reviews, outlets and the cached indicator payloads
served by the Indicators API.
"""

from __future__ import annotations

from ..storage.rdbms.schema import Column, TableSchema
from ..storage.rdbms.types import ColumnType


def articles_schema() -> TableSchema:
    return TableSchema(
        name="articles",
        primary_key="article_id",
        columns=(
            Column("article_id", ColumnType.TEXT, nullable=False),
            Column("url", ColumnType.TEXT, nullable=False, unique=True),
            Column("outlet_domain", ColumnType.TEXT, nullable=False),
            Column("title", ColumnType.TEXT, nullable=False, default=""),
            Column("author", ColumnType.TEXT),
            Column("published_at", ColumnType.TIMESTAMP, nullable=False),
            Column("text", ColumnType.TEXT, default=""),
            Column("html", ColumnType.TEXT, default=""),
            Column("topics", ColumnType.JSON, default=[]),
            Column("created_at", ColumnType.TIMESTAMP, nullable=False),
            Column("ingested_at", ColumnType.TIMESTAMP, nullable=False),
        ),
    )


def posts_schema() -> TableSchema:
    return TableSchema(
        name="posts",
        primary_key="post_id",
        columns=(
            Column("post_id", ColumnType.TEXT, nullable=False),
            Column("platform", ColumnType.TEXT, default="twitter"),
            Column("account", ColumnType.TEXT, nullable=False),
            Column("article_url", ColumnType.TEXT, nullable=False),
            Column("text", ColumnType.TEXT, default=""),
            Column("followers", ColumnType.INTEGER, default=0),
            Column("reply_to", ColumnType.TEXT),
            Column("created_at", ColumnType.TIMESTAMP, nullable=False),
            Column("ingested_at", ColumnType.TIMESTAMP, nullable=False),
        ),
    )


def reactions_schema() -> TableSchema:
    return TableSchema(
        name="reactions",
        primary_key="reaction_id",
        columns=(
            Column("reaction_id", ColumnType.TEXT, nullable=False),
            Column("post_id", ColumnType.TEXT, nullable=False),
            Column("kind", ColumnType.TEXT, nullable=False, default="like"),
            Column("account", ColumnType.TEXT, default=""),
            Column("text", ColumnType.TEXT, default=""),
            Column("created_at", ColumnType.TIMESTAMP, nullable=False),
            Column("ingested_at", ColumnType.TIMESTAMP, nullable=False),
        ),
    )


def reviews_schema() -> TableSchema:
    return TableSchema(
        name="reviews",
        primary_key="review_id",
        columns=(
            Column("review_id", ColumnType.TEXT, nullable=False),
            Column("article_id", ColumnType.TEXT, nullable=False),
            Column("reviewer_id", ColumnType.TEXT, nullable=False),
            Column("scores", ColumnType.JSON, nullable=False),
            Column("comment", ColumnType.TEXT, default=""),
            Column("reviewer_weight", ColumnType.FLOAT, default=1.0),
            Column("created_at", ColumnType.TIMESTAMP, nullable=False),
            Column("ingested_at", ColumnType.TIMESTAMP, nullable=False),
        ),
    )


def outlets_schema() -> TableSchema:
    return TableSchema(
        name="outlets",
        primary_key="domain",
        columns=(
            Column("domain", ColumnType.TEXT, nullable=False),
            Column("name", ColumnType.TEXT, nullable=False),
            Column("rating_class", ColumnType.TEXT, nullable=False),
            Column("evidence_score", ColumnType.FLOAT, default=0.5),
            Column("compelling_score", ColumnType.FLOAT, default=0.5),
            Column("country", ColumnType.TEXT, default="US"),
            Column("created_at", ColumnType.TIMESTAMP, nullable=False),
        ),
    )


def indicators_schema() -> TableSchema:
    return TableSchema(
        name="indicators",
        primary_key="article_id",
        columns=(
            Column("article_id", ColumnType.TEXT, nullable=False),
            Column("payload", ColumnType.JSON, nullable=False),
            Column("automated_score", ColumnType.FLOAT, default=0.0),
            Column("computed_at", ColumnType.TIMESTAMP, nullable=False),
        ),
    )


def all_schemas() -> list[TableSchema]:
    """Every operational table, in creation order."""
    return [
        outlets_schema(),
        articles_schema(),
        posts_schema(),
        reactions_schema(),
        reviews_schema(),
        indicators_schema(),
    ]
