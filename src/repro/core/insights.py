"""News-topic insights (§4.2).

For a given topic (COVID-19 in the paper), outlets are "evaluated based on
three axes, namely their newsroom activity, evidence seeking and social
engagement":

* **newsroom activity** (Figure 4) — the per-day mean percentage of each
  outlet's output devoted to the topic, averaged per rating class;
* **social engagement** (Figure 5, left) — the distribution (KDE) of the
  number of social-media reactions per article, low- versus high-quality;
* **evidence seeking** (Figure 5, right) — the distribution (KDE) of the
  scientific-references ratio per article, low- versus high-quality.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from datetime import date, datetime
from typing import Mapping, Sequence

import numpy as np

from .._time import iter_days
from ..errors import ValidationError
from ..ml.kde import GaussianKDE
from ..models import Article, RatingClass


# --------------------------------------------------------------------- Fig 4

@dataclass(frozen=True)
class NewsroomActivity:
    """Figure 4: mean percentage of daily posts on the topic per rating class."""

    topic_key: str
    days: tuple[date, ...]
    #: rating class value -> one mean percentage per day (0-100).
    series: dict[str, tuple[float, ...]]

    def series_for(self, rating: RatingClass | str) -> tuple[float, ...]:
        key = rating.value if isinstance(rating, RatingClass) else rating
        if key not in self.series:
            raise ValidationError(f"no series for rating class {key!r}")
        return self.series[key]

    def group_series(self, low_quality: bool) -> tuple[float, ...]:
        """Average series of the low- (or high-) quality classes."""
        wanted = [
            cls.value
            for cls in RatingClass
            if (cls.is_low_quality if low_quality else cls.is_high_quality)
        ]
        rows = [self.series[key] for key in wanted if key in self.series]
        if not rows:
            return tuple(0.0 for _ in self.days)
        stacked = np.array(rows)
        return tuple(float(v) for v in stacked.mean(axis=0))

    def mean_share(self, low_quality: bool, first_half: bool) -> float:
        """Mean topic share of a quality group over the first or second half of the window."""
        series = self.group_series(low_quality)
        half = len(series) // 2
        segment = series[:half] if first_half else series[half:]
        return float(np.mean(segment)) if segment else 0.0

    def divergence(self) -> float:
        """How much more of their output low-quality outlets devote to the topic
        than high-quality outlets over the second half of the window (percentage points)."""
        return self.mean_share(True, first_half=False) - self.mean_share(False, first_half=False)


# --------------------------------------------------------------------- Fig 5

@dataclass(frozen=True)
class DistributionComparison:
    """A low- versus high-quality comparison of a per-article quantity (Figure 5)."""

    quantity: str
    low_quality_samples: tuple[float, ...]
    high_quality_samples: tuple[float, ...]

    def summary(self) -> dict[str, float]:
        def stats(samples: tuple[float, ...], prefix: str) -> dict[str, float]:
            if not samples:
                return {f"{prefix}_mean": 0.0, f"{prefix}_median": 0.0, f"{prefix}_std": 0.0, f"{prefix}_n": 0.0}
            arr = np.asarray(samples)
            return {
                f"{prefix}_mean": float(arr.mean()),
                f"{prefix}_median": float(np.median(arr)),
                f"{prefix}_std": float(arr.std()),
                f"{prefix}_n": float(arr.size),
            }

        out: dict[str, float] = {}
        out.update(stats(self.low_quality_samples, "low"))
        out.update(stats(self.high_quality_samples, "high"))
        return out

    def kde_curves(self, n_points: int = 200) -> dict[str, tuple[list[float], list[float]]]:
        """KDE curves (grid, density) per quality group — the Figure 5 plot data."""
        curves: dict[str, tuple[list[float], list[float]]] = {}
        for label, samples in (
            ("low-quality", self.low_quality_samples),
            ("high-quality", self.high_quality_samples),
        ):
            if len(samples) < 2:
                curves[label] = ([], [])
                continue
            kde = GaussianKDE(samples)
            xs, density = kde.curve(n_points)
            curves[label] = (list(map(float, xs)), list(map(float, density)))
        return curves

    def low_mean_higher(self) -> bool:
        """True when the low-quality group has the larger mean."""
        summary = self.summary()
        return summary["low_mean"] > summary["high_mean"]

    def low_spread_wider(self) -> bool:
        """True when the low-quality group has the larger spread (std)."""
        summary = self.summary()
        return summary["low_std"] > summary["high_std"]


@dataclass(frozen=True)
class TopicInsights:
    """The three §4.2 axes bundled together for one topic."""

    topic_key: str
    newsroom_activity: NewsroomActivity
    social_engagement: DistributionComparison
    evidence_seeking: DistributionComparison
    metadata: dict[str, float] = field(default_factory=dict)


# ------------------------------------------------------------------- engine

class InsightsEngine:
    """Computes the §4.2 insights from stored articles, indicators and reactions."""

    def __init__(self, outlet_ratings: Mapping[str, RatingClass]) -> None:
        self.outlet_ratings = dict(outlet_ratings)

    # ------------------------------------------------------------- utilities

    def rating_of(self, outlet_domain: str) -> RatingClass | None:
        return self.outlet_ratings.get(outlet_domain)

    def _split_by_quality(
        self, values: Mapping[str, float], article_outlets: Mapping[str, str]
    ) -> tuple[list[float], list[float]]:
        low: list[float] = []
        high: list[float] = []
        for article_id, value in values.items():
            rating = self.rating_of(article_outlets.get(article_id, ""))
            if rating is None:
                continue
            if rating.is_low_quality:
                low.append(float(value))
            elif rating.is_high_quality:
                high.append(float(value))
        return low, high

    # ----------------------------------------------------------------- Fig 4

    def newsroom_activity(
        self,
        articles: Sequence[Article],
        topic_key: str,
        window_start: datetime,
        window_end: datetime,
        smoothing_days: int = 3,
    ) -> NewsroomActivity:
        """Compute the Figure 4 time series.

        For every outlet and day, the topic share is the fraction of that
        outlet's articles published that day that carry ``topic_key``; the
        per-class series is the mean share over the outlets of the class
        (days on which an outlet published nothing are skipped for that
        outlet), optionally smoothed with a centred rolling mean.
        """
        days = list(iter_days(window_start, window_end))
        day_index = {day: i for i, day in enumerate(days)}

        # outlet -> day -> (topic articles, total articles)
        per_outlet: dict[str, dict[int, list[int]]] = defaultdict(lambda: defaultdict(lambda: [0, 0]))
        for article in articles:
            day = article.published_at.date()
            if day not in day_index:
                continue
            counts = per_outlet[article.outlet_domain][day_index[day]]
            counts[1] += 1
            if topic_key in article.topics:
                counts[0] += 1

        # rating class -> day -> list of outlet shares
        shares: dict[str, list[list[float]]] = {
            cls.value: [[] for _ in days] for cls in RatingClass
        }
        for outlet_domain, day_counts in per_outlet.items():
            rating = self.rating_of(outlet_domain)
            if rating is None:
                continue
            for index, (topic_count, total) in day_counts.items():
                if total > 0:
                    shares[rating.value][index].append(100.0 * topic_count / total)

        series: dict[str, tuple[float, ...]] = {}
        for rating_value, day_shares in shares.items():
            raw = [float(np.mean(day)) if day else 0.0 for day in day_shares]
            series[rating_value] = tuple(_smooth(raw, smoothing_days))

        return NewsroomActivity(topic_key=topic_key, days=tuple(days), series=series)

    # ----------------------------------------------------------------- Fig 5

    def social_engagement(
        self,
        reactions_per_article: Mapping[str, float],
        article_outlets: Mapping[str, str],
    ) -> DistributionComparison:
        """Figure 5 (left): distribution of reaction counts per article."""
        low, high = self._split_by_quality(reactions_per_article, article_outlets)
        return DistributionComparison(
            quantity="social_media_reactions",
            low_quality_samples=tuple(low),
            high_quality_samples=tuple(high),
        )

    def evidence_seeking(
        self,
        scientific_ratio_per_article: Mapping[str, float],
        article_outlets: Mapping[str, str],
    ) -> DistributionComparison:
        """Figure 5 (right): distribution of scientific-reference ratios per article."""
        low, high = self._split_by_quality(scientific_ratio_per_article, article_outlets)
        return DistributionComparison(
            quantity="scientific_references_ratio",
            low_quality_samples=tuple(low),
            high_quality_samples=tuple(high),
        )

    # ------------------------------------------------------------------ bundle

    def topic_insights(
        self,
        articles: Sequence[Article],
        topic_key: str,
        window_start: datetime,
        window_end: datetime,
        reactions_per_article: Mapping[str, float],
        scientific_ratio_per_article: Mapping[str, float],
    ) -> TopicInsights:
        """Compute all three axes for one topic."""
        article_outlets = {a.article_id: a.outlet_domain for a in articles}
        activity = self.newsroom_activity(articles, topic_key, window_start, window_end)
        engagement = self.social_engagement(reactions_per_article, article_outlets)
        evidence = self.evidence_seeking(scientific_ratio_per_article, article_outlets)
        return TopicInsights(
            topic_key=topic_key,
            newsroom_activity=activity,
            social_engagement=engagement,
            evidence_seeking=evidence,
            metadata={
                "n_articles": float(len(articles)),
                "n_topic_articles": float(
                    sum(1 for a in articles if topic_key in a.topics)
                ),
            },
        )


def _smooth(values: list[float], window: int) -> list[float]:
    """Centred rolling mean with edge shrinkage (window=1 disables smoothing)."""
    if window <= 1 or len(values) <= 2:
        return list(values)
    half = window // 2
    smoothed: list[float] = []
    for i in range(len(values)):
        lo = max(0, i - half)
        hi = min(len(values), i + half + 1)
        smoothed.append(float(np.mean(values[lo:hi])))
    return smoothed
