"""The SciLens platform orchestrator.

Wires every substrate into the three-component architecture of Figure 2:

* **Data collection & storage** — the message broker + article-extraction
  pipeline feed the operational RDBMS; continuous change-data capture tails
  the RDBMS write-ahead log and lands row deltas in the warehouse (simulated
  DFS + columnar tables), with the migration job reduced to bootstrap
  backfills and scheduled compaction.
* **Data management & model training** — content-based topic segmentation,
  outlet quality-based segmentation, and periodic model training over the full
  history (click-bait model, topic model) registered in the model registry.
* **Indicators API** — real-time article evaluation (automated indicators +
  expert reviews) and aggregated topic insights, exposed to the micro-service
  layer in :mod:`repro.api`.
"""

from __future__ import annotations

import json
from collections import defaultdict
from datetime import datetime
from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..config import PlatformConfig
from ..errors import ArticleNotFound, CircuitOpenError, StorageError
from ..experts.aggregation import ReviewAggregator
from ..experts.reviews import ReviewStore
from ..ml.clustering import HierarchicalTopicModel
from ..ml.naive_bayes import TextClassifier
from ..ml.registry import ModelRegistry
from ..compute.jobs import JobTracker
from ..models import Article, ExpertReview, Outlet, RatingClass, Reaction, ReactionKind, SocialPost
from ..nlp.tokenize import word_tokens
from ..social.accounts import AccountRegistry
from ..storage.cdc import CdcPublisher, DeltaApplier
from ..storage.fts import FtsIndex, FtsIndexer
from ..storage.faults import (
    CircuitBreaker,
    FaultInjector,
    HealthMonitor,
    RetryPolicy,
)
from ..storage.migration import MigrationJob, MigrationReport
from ..storage.rdbms.database import Database
from ..storage.rdbms.expressions import col
from ..storage.rdbms.stats import StatsPolicy
from ..storage.warehouse.dfs import DistributedFileSystem
from ..storage.warehouse.warehouse import Warehouse
from ..streaming.broker import MessageBroker
from ..streaming.checkpoint import CheckpointStore
from ..streaming.pipeline import ArticleExtractionPipeline
from ..web.scraper import ArticleScraper
from ..web.sitestore import SiteStore
from .analytics import WarehouseAnalytics, standing_rollup_specs
from .indicators.aggregate import IndicatorEngine
from .indicators.context import ContextIndicatorComputer
from .insights import InsightsEngine, TopicInsights
from .pipeline import ArticleEvaluationPipeline
from .schemas import all_schemas
from .scoring import ArticleAssessment

#: Supervised topic keyword lists used for the content-based segmentation
#: ("supervised topics of news", §3.3).  Matching any two distinct keywords
#: tags the article with the topic.
SUPERVISED_TOPIC_KEYWORDS: dict[str, tuple[str, ...]] = {
    "covid19": (
        "coronavirus", "covid", "pandemic", "quarantine", "lockdown", "wuhan",
        "outbreak", "epidemic", "incubation", "respiratory",
    ),
    "health": (
        "virus", "vaccine", "infection", "disease", "patients", "symptoms",
        "diet", "nutrition", "flu", "influenza", "hospital",
    ),
    "climate": ("climate", "warming", "emissions", "carbon", "greenhouse", "renewable"),
    "science": ("study", "researchers", "experiment", "laboratory", "genome", "telescope"),
}


class SciLensPlatform:
    """The running platform: ingestion, storage, analytics and serving."""

    def __init__(
        self,
        config: PlatformConfig | None = None,
        site_store: SiteStore | None = None,
        account_registry: AccountRegistry | None = None,
    ) -> None:
        self.config = (config or PlatformConfig()).validate()

        # --- fault tolerance ------------------------------------------------
        # One injector, retry policy and health monitor are threaded through
        # every storage/streaming layer.  The injector is inert unless a test
        # (or the chaos CI job) arms a fault site; the seeded RNG makes an
        # armed run replay identically.
        self.health = HealthMonitor()
        self.fault_injector = FaultInjector(seed=self.config.random_seed)
        self.retry_policy = RetryPolicy(
            max_attempts=self.config.storage.retry_max_attempts,
            base_delay=self.config.storage.retry_base_delay_s,
            max_delay=self.config.storage.retry_max_delay_s,
        )

        # --- data collection ------------------------------------------------
        self.site_store = site_store if site_store is not None else SiteStore()
        self.scraper = ArticleScraper(self.site_store)
        self.accounts = account_registry if account_registry is not None else AccountRegistry()
        self.broker = MessageBroker(
            default_partitions=self.config.streaming.partitions,
            fault_injector=self.fault_injector,
        )
        for topic in (
            self.config.streaming.postings_topic,
            self.config.streaming.reactions_topic,
        ):
            self.broker.create_topic(topic)

        # --- data layer -----------------------------------------------------
        # Without a data directory the WAL runs in memory: no durability, but
        # CDC can still tail the committed mutations.  It is only absent when
        # explicitly disabled (and then CDC is too).
        self.database = Database(
            data_dir=self.config.storage.data_dir,
            wal_enabled=self.config.storage.wal_enabled
            and (
                self.config.storage.data_dir is not None
                or self.config.storage.cdc_enabled
            ),
            stats_policy=StatsPolicy(
                auto_analyze=self.config.storage.rdbms_auto_analyze,
                stale_fraction=self.config.storage.rdbms_stale_fraction,
                min_stale_writes=self.config.storage.rdbms_min_stale_writes,
                histogram_buckets=self.config.storage.rdbms_histogram_buckets,
            ),
        )
        for schema in all_schemas():
            self.database.create_table(schema, if_not_exists=True)
        # Equality indexes on the foreign-key-style lookup columns, plus
        # sorted indexes on the hot ORDER BY / range columns so the query
        # planner can serve the real-time services without full scans.
        self.database.create_index("posts", "article_url", kind="hash")
        self.database.create_index("posts", "followers", kind="sorted")
        self.database.create_index("reactions", "post_id", kind="hash")
        self.database.create_index("articles", "outlet_domain", kind="hash")
        self.database.create_index("articles", "published_at", kind="sorted")
        self.database.create_index("reviews", "article_id", kind="hash")
        # Full-text index over the article text columns: backs the planner's
        # ``fts_index_scan`` access path for MATCH predicates (maintained
        # synchronously by every table write, so it is never stale).
        if self.config.storage.fts_enabled:
            self.database.create_fts_index(
                "articles", self.config.storage.fts_columns
            )

        self.dfs = DistributedFileSystem(
            n_nodes=3,
            replication=self.config.storage.warehouse_replication,
            fault_injector=self.fault_injector,
            retry_policy=self.retry_policy,
            health=self.health.subsystem("dfs"),
        )
        self.warehouse = Warehouse(
            self.dfs,
            block_rows=self.config.storage.warehouse_block_rows,
            compression_level=self.config.storage.warehouse_compression_level,
            degraded_reads=self.config.storage.warehouse_degraded_reads,
            health=self.health.subsystem("warehouse"),
        )
        self.migration = MigrationJob(
            self.database,
            self.warehouse,
            compaction_min_blocks=self.config.storage.warehouse_compaction_min_blocks,
            refresh_rollups=self.config.storage.warehouse_rollups_enabled,
        )
        # Freshness follows ingestion time; partitions follow event time
        # (articles by publication day, social objects and reviews by their
        # own timestamps).  Articles are additionally clustered inside each
        # day partition by publication time, so time-range scans prune and
        # early-exit blocks.
        self.migration.add_table(
            "articles", timestamp_column="ingested_at",
            partition_column="published_at", sort_key=["published_at"],
        )
        for table_name in ("posts", "reactions", "reviews"):
            self.migration.add_table(table_name, timestamp_column="ingested_at", partition_column="created_at")
        # Standing materialized roll-ups: the grouped aggregates behind
        # daily_article_counts / articles_per_outlet / rating_class_summary
        # are materialised per partition and kept incrementally consistent by
        # the migration job (only changed partitions re-aggregate).  Readers
        # fall back to the live grouped-pushdown path whenever the state is
        # stale, so disabling this changes cost, never results.
        if self.config.storage.warehouse_rollups_enabled:
            for spec in standing_rollup_specs(self.config.storage.warehouse_rollup_topic):
                self.warehouse.register_rollup(spec)

        # Continuous change-data capture: the publisher tails the RDBMS WAL
        # onto per-table broker topics, the applier lands those row deltas as
        # warehouse delta blocks.  The migration job above keeps only the
        # bootstrap backfill and the compaction schedule.
        self.cdc_publisher: CdcPublisher | None = None
        self.cdc_applier: DeltaApplier | None = None
        # Segment-backed search index: a second consumer group over the same
        # CDC topics keeps the BM25 posting lists fresh incrementally — no
        # batch rebuild, exactly-once via per-document LSN checks.
        self.fts_index: FtsIndex | None = None
        self.fts_indexer: FtsIndexer | None = None
        if self.config.storage.cdc_enabled and self.database.wal is not None:
            cursor_path = (
                self.config.storage.data_dir / "cdc-cursor.json"
                if self.config.storage.data_dir is not None
                else None
            )
            offsets_path = (
                self.config.storage.data_dir / "cdc-offsets.json"
                if self.config.storage.data_dir is not None
                else None
            )
            self.cdc_publisher = CdcPublisher(
                self.database,
                self.broker,
                topic_prefix=self.config.storage.cdc_topic_prefix,
                cursor_path=cursor_path,
                retry_policy=self.retry_policy,
                health=self.health.subsystem("cdc-publisher"),
            )
            for mapping in self.migration.mappings():
                self.cdc_publisher.add_mapping(mapping)
            self.cdc_checkpoints = CheckpointStore(
                path=offsets_path,
                fault_injector=self.fault_injector,
                retry_policy=self.retry_policy,
            )
            self.cdc_applier = DeltaApplier(
                self.warehouse,
                self.broker,
                self.migration.mappings(),
                topic_prefix=self.config.storage.cdc_topic_prefix,
                checkpoints=self.cdc_checkpoints,
                batch_rows=self.config.storage.cdc_batch_rows,
                retry_policy=self.retry_policy,
                health=self.health.subsystem("cdc-applier"),
                breaker=CircuitBreaker(
                    failure_threshold=self.config.storage.cdc_breaker_threshold,
                    cooldown=self.config.storage.cdc_breaker_cooldown_s,
                ),
                skip_poisoned=self.config.storage.cdc_skip_poisoned,
            )
            if self.config.storage.fts_enabled:
                fts_offsets_path = (
                    self.config.storage.data_dir / "fts-offsets.json"
                    if self.config.storage.data_dir is not None
                    else None
                )
                self.fts_index = FtsIndex(
                    "articles",
                    dfs=self.dfs,
                    flush_docs=self.config.storage.fts_flush_docs,
                    compression_level=self.config.storage.warehouse_compression_level,
                    health=self.health.subsystem("fts"),
                )
                self.fts_index.recover()
                self.fts_indexer = FtsIndexer(
                    self.fts_index,
                    self.broker,
                    table="articles",
                    columns=self.config.storage.fts_columns,
                    primary_key="article_id",
                    topic_prefix=self.config.storage.cdc_topic_prefix,
                    checkpoints=CheckpointStore(
                        path=fts_offsets_path,
                        fault_injector=self.fault_injector,
                        retry_policy=self.retry_policy,
                    ),
                    retry_policy=self.retry_policy,
                    health=self.health.subsystem("fts"),
                )
            # A restart over an existing data directory leaves a durable
            # cursor (and offsets file) behind; reconcile them with the WAL
            # and broker this process actually holds before the first sync.
            if self.config.storage.data_dir is not None:
                self.recover_storage()

        # --- analytics ------------------------------------------------------
        self.models = ModelRegistry()
        self.jobs = JobTracker()
        self.jobs.register("daily_migration", self._run_migration_job)
        self.jobs.register("cdc_sync", self._run_cdc_job)
        self.jobs.register("warehouse_compaction", self._run_compaction_job)
        self.jobs.register("train_models", self._run_training_job)

        # --- evaluation / serving --------------------------------------------
        # The serving-tier front door (repro.api.serving.build_serving_tier)
        # registers itself here so status() can report its counters.
        self._serving: Any = None
        self.outlet_ratings: dict[str, RatingClass] = {}
        self.review_store = ReviewStore()
        self.review_aggregator = ReviewAggregator(
            half_life_days=self.config.indicators.expert_half_life_days
        )
        self.indicator_engine = IndicatorEngine(self.config.indicators)
        self.context_computer = ContextIndicatorComputer()
        self.evaluation = ArticleEvaluationPipeline(
            indicator_engine=self.indicator_engine,
            scraper=self.scraper,
            review_store=self.review_store,
            review_aggregator=self.review_aggregator,
            outlet_ratings=self.outlet_ratings,
            config=self.config.indicators,
        )

        # --- streaming pipeline ----------------------------------------------
        self.extraction = ArticleExtractionPipeline(
            broker=self.broker,
            scraper=self.scraper,
            accounts=self.accounts,
            postings_topic=self.config.streaming.postings_topic,
            reactions_topic=self.config.streaming.reactions_topic,
            on_article=self.store_article,
            on_post=self.store_post,
            on_reaction=self.store_reaction,
        )

    # ====================================================================== #
    # Outlets
    # ====================================================================== #

    def register_outlet(self, outlet: Outlet, created_at: datetime | None = None) -> None:
        """Register a news outlet and its quality rating."""
        self.outlet_ratings[outlet.domain] = outlet.rating_class
        self.database.upsert(
            "outlets",
            {
                "domain": outlet.domain,
                "name": outlet.name,
                "rating_class": outlet.rating_class.value,
                "evidence_score": outlet.evidence_score,
                "compelling_score": outlet.compelling_score,
                "country": outlet.country,
                "created_at": created_at or datetime.utcnow(),
            },
        )

    def register_outlets(self, outlets: Iterable[Outlet]) -> int:
        count = 0
        for outlet in outlets:
            self.register_outlet(outlet)
            count += 1
        return count

    def outlet_rating(self, domain: str) -> RatingClass | None:
        return self.outlet_ratings.get(domain)

    def outlets(self) -> list[dict[str, Any]]:
        """All registered outlets (operational-store rows)."""
        return self.database.query("outlets").order_by("domain").execute().rows

    # ====================================================================== #
    # Ingestion (streaming entry point)
    # ====================================================================== #

    def ingest_posting_events(self, events: Iterable[tuple[str | None, dict[str, Any]]]) -> int:
        """Publish posting events onto the postings topic."""
        return self.broker.produce_many(self.config.streaming.postings_topic, events)

    def ingest_reaction_events(self, events: Iterable[tuple[str | None, dict[str, Any]]]) -> int:
        """Publish reaction events onto the reactions topic."""
        return self.broker.produce_many(self.config.streaming.reactions_topic, events)

    def process_stream(self, batch_size: int | None = None) -> dict[str, int]:
        """Run the extraction pipeline over every pending event."""
        batch_size = batch_size or self.config.streaming.max_batch_size
        self.extraction.process_available(batch_size=batch_size)
        return self.extraction.stats.as_dict()

    # ====================================================================== #
    # Operational writes (used by the pipeline callbacks and directly)
    # ====================================================================== #

    def store_article(self, article: Article, created_at: datetime | None = None) -> None:
        """Insert or refresh an article in the operational store."""
        self.database.upsert(
            "articles",
            {
                "article_id": article.article_id,
                "url": article.url,
                "outlet_domain": article.outlet_domain,
                "title": article.title,
                "author": article.author,
                "published_at": article.published_at,
                "text": article.text,
                "html": article.html,
                "topics": list(article.topics),
                "created_at": created_at or datetime.utcnow(),
                "ingested_at": datetime.utcnow(),
            },
        )

    def store_post(self, post: SocialPost, created_at: datetime | None = None) -> None:
        self.database.upsert(
            "posts",
            {
                "post_id": post.post_id,
                "platform": post.platform,
                "account": post.account,
                "article_url": post.article_url,
                "text": post.text,
                "followers": post.followers,
                "reply_to": post.reply_to,
                "created_at": created_at or post.created_at,
                "ingested_at": datetime.utcnow(),
            },
        )

    def store_reaction(self, reaction: Reaction, created_at: datetime | None = None) -> None:
        self.database.upsert(
            "reactions",
            {
                "reaction_id": reaction.reaction_id,
                "post_id": reaction.post_id,
                "kind": reaction.kind.value,
                "account": reaction.account,
                "text": reaction.text,
                "created_at": created_at or reaction.created_at,
                "ingested_at": datetime.utcnow(),
            },
        )

    def add_expert_review(self, review: ExpertReview) -> None:
        """Record an expert review (review store + operational table)."""
        self.review_store.add(review)
        self.database.upsert(
            "reviews",
            {
                "review_id": review.review_id,
                "article_id": review.article_id,
                "reviewer_id": review.reviewer_id,
                "scores": dict(review.scores),
                "comment": review.comment,
                "reviewer_weight": review.reviewer_weight,
                "created_at": review.created_at,
                "ingested_at": datetime.utcnow(),
            },
        )

    # ====================================================================== #
    # Operational reads
    # ====================================================================== #

    def article_count(self) -> int:
        return self.database.table("articles").row_count()

    def get_article(self, article_id: str) -> Article:
        row = self.database.get("articles", article_id)
        if row is None:
            raise ArticleNotFound(f"no article with id {article_id!r}")
        return _row_to_article(row)

    def get_article_by_url(self, url: str) -> Article:
        rows = self.database.query("articles").where(col("url") == url).limit(1).execute().rows
        if not rows:
            raise ArticleNotFound(f"no article with url {url!r}")
        return _row_to_article(rows[0])

    def articles(self, outlet_domain: str | None = None) -> list[Article]:
        query = self.database.query("articles")
        if outlet_domain is not None:
            query = query.where(col("outlet_domain") == outlet_domain)
        return [_row_to_article(row) for row in query.execute().rows]

    def count_articles(self, outlet_domain: str | None = None) -> int:
        """Number of stored articles, optionally for one outlet (index-backed)."""
        query = self.database.query("articles")
        if outlet_domain is not None:
            query = query.where(col("outlet_domain") == outlet_domain)
        return query.count()

    def recent_articles(self, outlet_domain: str | None = None, limit: int = 100) -> list[Article]:
        """The most recently published articles, newest first.

        Runs as an index-ordered scan over the sorted ``published_at`` index
        (or a bounded top-k when that is unavailable), so only ``limit`` rows
        are materialised instead of sorting the whole table.
        """
        query = self.database.query("articles")
        if outlet_domain is not None:
            query = query.where(col("outlet_domain") == outlet_domain)
        rows = query.order_by("published_at", descending=True).limit(limit).execute().rows
        return [_row_to_article(row) for row in rows]

    def search_articles(
        self, query: str, limit: int = 10, sync: bool = True
    ) -> list[tuple[Article, float]]:
        """BM25-ranked full-text search over article titles and bodies.

        Served from the segment-backed FTS index when CDC is enabled
        (``sync=True`` drains pending WAL records into the index first, so a
        just-stored article is searchable immediately); otherwise from the
        table-attached index the planner uses for MATCH.  Query semantics
        match the SQL ``MATCH`` operator: every term must appear, a trailing
        ``*`` makes the last term of that chunk a prefix.  Returns
        ``(article, score)`` pairs, best first.
        """
        if self.fts_index is not None and self.fts_indexer is not None:
            if sync and self.cdc_publisher is not None:
                self.cdc_publisher.publish()
                self.fts_indexer.run()
            results: list[tuple[Article, float]] = []
            for doc_id, score in self.fts_index.search(query, limit=limit):
                row = self.database.get("articles", doc_id)
                if row is not None:
                    results.append((_row_to_article(row), score))
            return results
        table = self.database.table("articles")
        fts = table.fts_index
        if fts is None:
            raise StorageError("full-text search is disabled (storage.fts_enabled)")
        return [
            (_row_to_article(table.row_by_id(row_id)), score)
            for row_id, score in fts.search(query, limit=limit)
        ]

    def posts_for_article(self, article_url: str) -> list[SocialPost]:
        rows = (
            self.database.query("posts").where(col("article_url") == article_url).execute().rows
        )
        return [_row_to_post(row) for row in rows]

    def reactions_for_posts(self, post_ids: Sequence[str]) -> dict[str, list[Reaction]]:
        out: dict[str, list[Reaction]] = {post_id: [] for post_id in post_ids}
        if not post_ids:
            return out
        rows = self.database.query("reactions").where(col("post_id").is_in(list(post_ids))).execute().rows
        for row in rows:
            out.setdefault(row["post_id"], []).append(_row_to_reaction(row))
        return out

    # ====================================================================== #
    # Real-time evaluation (Indicators API backend)
    # ====================================================================== #

    def evaluate_article(self, article_id: str, as_of: datetime | None = None) -> ArticleAssessment:
        """Evaluate a stored article with its full social context and reviews."""
        article = self.get_article(article_id)
        posts = self.posts_for_article(article.url)
        reactions = self.reactions_for_posts([post.post_id for post in posts])
        assessment = self.evaluation.evaluate_article(article, posts, reactions, as_of=as_of)
        self._cache_indicators(assessment)
        return assessment

    def evaluate_url(self, url: str, as_of: datetime | None = None) -> ArticleAssessment:
        """Evaluate any URL: stored articles use their social context, unknown
        URLs are scraped on the fly (the "arbitrary news article" path)."""
        try:
            article = self.get_article_by_url(url)
        except ArticleNotFound:
            return self.evaluation.evaluate_url(url, as_of=as_of)
        return self.evaluate_article(article.article_id, as_of=as_of)

    def _cache_indicators(self, assessment: ArticleAssessment) -> None:
        self.database.upsert(
            "indicators",
            {
                "article_id": assessment.article_id,
                "payload": json.loads(json.dumps(assessment.profile.as_dict())),
                "automated_score": assessment.profile.automated_score,
                "computed_at": datetime.utcnow(),
            },
        )

    def cached_indicators(self, article_id: str) -> dict[str, float] | None:
        row = self.database.get("indicators", article_id)
        return dict(row["payload"]) if row else None

    # ====================================================================== #
    # Data management: segmentation and model training
    # ====================================================================== #

    def assign_topics(
        self, topic_keywords: Mapping[str, Sequence[str]] | None = None, min_hits: int = 2
    ) -> dict[str, int]:
        """Content-based supervised topic segmentation.

        Tags every stored article with each topic whose keyword list matches at
        least ``min_hits`` distinct tokens of the title+body; returns the
        number of articles tagged per topic.
        """
        keywords = {k: tuple(v) for k, v in (topic_keywords or SUPERVISED_TOPIC_KEYWORDS).items()}
        counts: dict[str, int] = {key: 0 for key in keywords}
        for row in self.database.query("articles").execute().rows:
            tokens = set(word_tokens(f"{row['title']} {row['text']}"))
            topics = set(row.get("topics") or [])
            for topic_key, topic_words in keywords.items():
                hits = sum(1 for word in topic_words if word in tokens)
                if hits >= min_hits:
                    topics.add(topic_key)
                    counts[topic_key] += 1
            self.database.update(
                "articles",
                col("article_id") == row["article_id"],
                {"topics": sorted(topics)},
            )
        return counts

    def warehouse_analytics(self) -> WarehouseAnalytics:
        """Batch-analytics view over the warehouse (run a migration first)."""
        return WarehouseAnalytics(self.warehouse)

    def derive_outlet_ratings_from_reviews(
        self, min_reviewed_articles: int = 1, overwrite: bool = False
    ) -> dict[str, RatingClass]:
        """Quality-based outlet segmentation computed from expert reviews.

        "The quality of an outlet is either computed using the expert reviews
        or imported from external sources" (§3.3).  For every outlet with at
        least ``min_reviewed_articles`` reviewed articles, the outlet quality
        is the mean aggregated review quality of those articles, mapped onto a
        rating class.  Outlets that already carry an (external) rating keep it
        unless ``overwrite`` is true.  Returns the ratings that were derived.
        """
        derived: dict[str, RatingClass] = {}
        summaries_by_outlet: dict[str, list] = defaultdict(list)
        for article_id in self.review_store.reviewed_article_ids():
            try:
                article = self.get_article(article_id)
            except ArticleNotFound:
                continue
            reviews = self.review_store.latest_per_reviewer(article_id)
            summaries_by_outlet[article.outlet_domain].append(
                self.review_aggregator.summarize(article_id, reviews)
            )

        for outlet_domain, summaries in summaries_by_outlet.items():
            if len(summaries) < min_reviewed_articles:
                continue
            quality = self.review_aggregator.outlet_quality(summaries)
            if quality is None:
                continue
            rating = RatingClass.from_score(quality)
            derived[outlet_domain] = rating
            if overwrite or outlet_domain not in self.outlet_ratings:
                self.outlet_ratings[outlet_domain] = rating
                self.database.update(
                    "outlets",
                    col("domain") == outlet_domain,
                    {"rating_class": rating.value},
                )
        return derived

    def outlet_segments(self) -> dict[str, list[str]]:
        """Quality-based outlet segmentation: rating class → outlet domains."""
        segments: dict[str, list[str]] = defaultdict(list)
        for domain, rating in sorted(self.outlet_ratings.items()):
            segments[rating.value].append(domain)
        return dict(segments)

    def run_daily_migration(self, now: datetime | None = None) -> MigrationReport:
        """Synchronise the warehouse with the RDBMS (bootstrap + CDC drain).

        Empty warehouse tables are bootstrap-backfilled; everything newer
        reaches the warehouse through the CDC delta stream, which this job
        drains before returning.  The report combines both paths, so callers
        keep the old contract: rows move on the first run, a re-run with no
        new operational writes reports zero.
        """
        result = self.jobs.run("daily_migration", now)
        if not result.succeeded:
            raise RuntimeError(f"migration failed: {result.error}")
        return result.result

    def _run_migration_job(self, now: datetime | None = None) -> MigrationReport:
        if self.cdc_publisher is None or self.cdc_applier is None:
            # CDC disabled: batch fallback — re-copy registered tables
            # wholesale whenever the warehouse already holds data.
            return self.migration.run(
                now=now, full_refresh=self.warehouse.total_rows() > 0
            )
        # Bootstrap pass first; the roll-up refresh is deferred until the
        # CDC deltas have landed so it sees the post-sync block identity.
        refresh = self.migration.refresh_rollups
        self.migration.refresh_rollups = False
        try:
            bootstrap = self.migration.run(now=now)
        finally:
            self.migration.refresh_rollups = refresh
        if set(bootstrap.bootstrapped) == set(self.migration.registered_tables()):
            # Every registered table was copied wholesale, so the WAL records
            # up to the pre-copy LSN are already reflected — skip them instead
            # of republishing.  (On partial bootstraps the cursor stays put;
            # redelivery is safe because delta application is idempotent.)
            self.cdc_publisher.skip_to(bootstrap.cursor_lsn)
            # ``skip_to`` means the copied rows never reach the CDC topics,
            # so the search index backfills straight from the table at the
            # bootstrap LSN (later CDC messages carry higher LSNs and win).
            if self.fts_indexer is not None and "articles" in bootstrap.bootstrapped:
                self.fts_indexer.bootstrap(
                    self.database.table("articles").rows(),
                    lsn=bootstrap.cursor_lsn,
                )
        sync = self.process_cdc(refresh_rollups=False)
        rollups_refreshed: dict[str, int] = {}
        if refresh:
            rollups_refreshed = self.migration.refresh_standing_rollups()
        migrated = dict(bootstrap.migrated_rows)
        for rdbms_table, rows in sync["applied_tables"].items():
            migrated[rdbms_table] = migrated.get(rdbms_table, 0) + rows
        report = MigrationReport(
            run_at=bootstrap.run_at,
            migrated_rows=migrated,
            bootstrapped=bootstrap.bootstrapped,
            cursor_lsn=bootstrap.cursor_lsn,
            rollups_refreshed=rollups_refreshed,
        )
        self.migration.history[-1] = report
        return report

    def process_cdc(self, refresh_rollups: bool = True) -> dict[str, Any]:
        """Publish pending WAL records and land them as warehouse deltas.

        The continuous freshness path: cheap enough to run after every ingest
        batch, no daily schedule required.  Returns a summary with the
        messages published, rows applied per RDBMS table and the worst
        write→visible latency observed (seconds).
        """
        if self.cdc_publisher is None or self.cdc_applier is None:
            return {
                "enabled": False, "published": 0, "applied_rows": 0,
                "applied_tables": {}, "max_latency_s": 0.0, "fts": None,
            }
        published = self.cdc_publisher.publish()
        # The search index drains its own consumer group first: it never
        # shares the applier's breaker, so search freshness survives a
        # quarantined warehouse batch.
        fts_report: dict[str, Any] | None = None
        if self.fts_indexer is not None:
            fts_report = self.fts_indexer.run()
        try:
            report = self.cdc_applier.apply()
        except CircuitOpenError as exc:
            # The applier's breaker is open (a batch kept failing): surface
            # the backoff through health instead of crashing the sync job.
            # Published messages stay on the broker, uncommitted, until the
            # cooldown lets a probe through.
            self.health.subsystem("cdc-applier").degrade(exc)
            return {
                "enabled": True, "published": published, "applied_rows": 0,
                "applied_tables": {}, "max_latency_s": 0.0, "fts": fts_report,
                "breaker_open": True,
            }
        for rdbms_table, stamp in report.synced.items():
            self.migration.note_synced(rdbms_table, stamp)
        if refresh_rollups and report.rows and self.migration.refresh_rollups:
            self.migration.refresh_standing_rollups()
        by_rdbms_table = {
            m.warehouse_table: m.rdbms_table for m in self.migration.mappings()
        }
        return {
            "enabled": True,
            "published": published,
            "applied_rows": report.rows,
            "applied_tables": {
                by_rdbms_table.get(table, table): rows
                for table, rows in report.tables.items()
            },
            "max_latency_s": report.max_latency_s,
            "fts": fts_report,
        }

    def _run_cdc_job(self, now: datetime | None = None) -> dict[str, Any]:
        return self.process_cdc()

    def recover_storage(self, redeliver: bool = False) -> dict[str, Any]:
        """Reconcile durable CDC state with the live WAL/broker/warehouse.

        Runs automatically when the platform is constructed over an existing
        data directory; call it explicitly (optionally with
        ``redeliver=True`` to replay every CDC topic from offset 0 — the
        warehouse's exactly-once delta index absorbs the redelivery) after
        restoring state by hand.  Returns the publisher and applier recovery
        reports.
        """
        report: dict[str, Any] = {"publisher": None, "applier": None, "fts": None}
        if self.cdc_publisher is not None:
            report["publisher"] = self.cdc_publisher.recover()
        if self.cdc_applier is not None:
            report["applier"] = self.cdc_applier.recover(redeliver=redeliver)
        if self.fts_index is not None:
            fts_report = self.fts_index.recover()
            if self.fts_indexer is not None:
                fts_report["indexer"] = self.fts_indexer.recover(redeliver=redeliver)
            report["fts"] = fts_report
        return report

    def run_warehouse_compaction(self, now: datetime | None = None):
        """Run the scheduled warehouse compaction pass (defragment partitions).

        Daily migrations append small incremental blocks; this job merges
        fragmented partitions back into few large sorted blocks, freeing DFS
        space without changing any query result.
        """
        result = self.jobs.run("warehouse_compaction", now)
        if not result.succeeded:
            raise RuntimeError(f"compaction failed: {result.error}")
        return result.result

    def _run_compaction_job(self, now: datetime | None = None):
        return self.migration.run_compaction(now=now)

    def train_models(self, now: datetime | None = None) -> dict[str, Any]:
        """Run the periodic model-training job over the full article history."""
        result = self.jobs.run("train_models", now)
        if not result.succeeded:
            raise RuntimeError(f"training failed: {result.error}")
        return result.result

    def _run_training_job(self, now: datetime | None = None) -> dict[str, Any]:
        now = now or datetime.utcnow()
        # Click-bait model inputs: titles labelled by the quality class of
        # their outlet (low-quality outlets are the click-bait-positive
        # class).  One streaming pass collects both model inputs, so the
        # history is no longer held twice (row dicts and derived lists);
        # the titles/texts accumulators themselves still scale with the
        # corpus.
        n_articles = 0
        titles: list[str] = []
        labels: list[int] = []
        texts: list[str] = []
        for row in self._training_articles():
            n_articles += 1
            if row["text"]:
                texts.append(row["text"])
            rating = self.outlet_ratings.get(row["outlet_domain"])
            if rating is None or rating is RatingClass.MIXED:
                continue
            titles.append(row["title"])
            labels.append(1 if rating.is_low_quality else 0)
        trained: dict[str, Any] = {"n_articles": n_articles}
        if n_articles < 10:
            trained["skipped"] = True
            return trained

        if len(set(labels)) == 2:
            clickbait_model = TextClassifier(positive_class=1)
            clickbait_model.fit(titles, labels)
            record = self.models.register("clickbait-title", clickbait_model, trained_at=now,
                                          metrics={"n_titles": float(len(titles))})
            trained["clickbait_model_version"] = record.version

        # Topic model: probabilistic hierarchical clustering over the bodies.
        if len(texts) >= 20:
            topic_model = HierarchicalTopicModel(
                depth=self.config.analytics.topic_tree_depth,
                branching=self.config.analytics.topic_branching,
                min_probability=self.config.analytics.min_topic_probability,
                random_seed=self.config.random_seed,
            )
            topic_model.fit(texts)
            record = self.models.register("topic-hierarchy", topic_model, trained_at=now,
                                          metrics={"n_documents": float(len(texts))})
            trained["topic_model_version"] = record.version
            trained["topic_labels"] = topic_model.topic_labels()
        return trained

    def _training_articles(self) -> Iterator[dict[str, Any]]:
        """Stream the article history: the warehouse when populated, else the RDBMS.

        The warehouse branch streams block-by-block from the table scan
        (emptiness is decided from the in-memory ``block_count()`` partition
        metadata, not a row-count walk), so the history is never held in
        memory twice.
        """
        if self.warehouse.has_table("articles") and self.warehouse.table("articles").block_count() > 0:
            yield from self.warehouse.table("articles").scan()
        else:
            yield from self.database.query("articles").execute().rows

    # ====================================================================== #
    # Topic insights (§4.2)
    # ====================================================================== #

    def reactions_per_article(self, topic_key: str | None = None) -> dict[str, int]:
        """Number of reactions per stored article (optionally only for one topic).

        The per-post reaction roll-up is pushed down to the query engine as a
        grouped aggregate (``GROUP BY post_id``) instead of counting reaction
        rows one at a time here; only the post→article join map is walked.
        """
        articles = self.database.query("articles").execute().rows
        if topic_key is not None:
            articles = [row for row in articles if topic_key in (row.get("topics") or [])]
        url_to_id = {row["url"]: row["article_id"] for row in articles}

        post_to_article: dict[str, str] = {}
        for row in self.database.query("posts").execute().rows:
            article_id = url_to_id.get(row["article_url"])
            if article_id is not None:
                post_to_article[row["post_id"]] = article_id

        counts: dict[str, int] = {article_id: 0 for article_id in url_to_id.values()}
        grouped = (
            self.database.query("reactions")
            .group_by("post_id")
            .aggregate(reactions=("count", "*"))
            .execute()
            .rows
        )
        for row in grouped:
            article_id = post_to_article.get(row["post_id"])
            if article_id is not None:
                counts[article_id] += row["reactions"]
        return counts

    def scientific_ratio_per_article(self, topic_key: str | None = None) -> dict[str, float]:
        """Scientific-reference ratio per stored article (from the context indicators)."""
        ratios: dict[str, float] = {}
        for row in self.database.query("articles").execute().rows:
            if topic_key is not None and topic_key not in (row.get("topics") or []):
                continue
            article = _row_to_article(row)
            context = self.context_computer.compute(article)
            ratios[article.article_id] = context.scientific_ratio
        return ratios

    def topic_insights(
        self,
        topic_key: str = "covid19",
        window_start: datetime | None = None,
        window_end: datetime | None = None,
    ) -> TopicInsights:
        """Compute the three §4.2 axes for ``topic_key`` from the stored data."""
        articles = [
            _row_to_article(row) for row in self.database.query("articles").execute().rows
        ]
        if not articles:
            raise ArticleNotFound("the platform holds no articles yet")
        window_start = window_start or min(a.published_at for a in articles)
        window_end = window_end or max(a.published_at for a in articles)

        engine = InsightsEngine(self.outlet_ratings)
        return engine.topic_insights(
            articles=articles,
            topic_key=topic_key,
            window_start=window_start,
            window_end=window_end,
            reactions_per_article=self.reactions_per_article(topic_key),
            scientific_ratio_per_article=self.scientific_ratio_per_article(topic_key),
        )

    # ====================================================================== #
    # Monitoring
    # ====================================================================== #

    def attach_serving(self, serving: Any) -> None:
        """Register the serving-tier front door (a ``ShardedGateway``).

        Called by :func:`repro.api.serving.build_serving_tier`; afterwards
        ``status()["serving"]`` carries the admitted/throttled/coalesced and
        per-shard counters of the attached tier.
        """
        self._serving = serving

    def status(self) -> dict[str, Any]:
        """Operational snapshot: table sizes, stream lag, warehouse and job health."""
        warehouse_storage: dict[str, dict[str, Any]] = {}
        for name in self.warehouse.table_names():
            totals = self.warehouse.table(name).storage_totals()
            warehouse_storage[name] = {
                "blocks": totals["block_count"],
                "delta_blocks": totals.get("delta_block_count", 0),
                "compressed_bytes": totals["compressed_bytes"],
                "compression_ratio": round(totals["compression_ratio"], 3),
            }
        cdc: dict[str, Any] = {"enabled": self.cdc_publisher is not None}
        if self.cdc_publisher is not None and self.cdc_applier is not None:
            cdc.update(
                {
                    "wal_lsn": self.database.wal_lsn(),
                    "published_lsn": self.cdc_publisher.cursor,
                    "pending_records": self.cdc_publisher.pending(),
                    "apply_lag": self.cdc_applier.lag(),
                    "applied_rows": self.cdc_applier.applied_rows,
                    # Write→visible freshness: worst latency ever / last pass.
                    "max_latency_s": round(self.cdc_applier.max_latency_s, 6),
                    "last_latency_s": round(self.cdc_applier.last_latency_s, 6),
                    "breaker": (
                        self.cdc_applier.breaker.state
                        if self.cdc_applier.breaker is not None else None
                    ),
                    "quarantined_batches": len(self.cdc_applier.quarantined),
                }
            )
        fts: dict[str, Any] = {"enabled": self.config.storage.fts_enabled}
        if self.fts_index is not None and self.fts_indexer is not None:
            fts.update(self.fts_index.stats())
            fts["lag"] = self.fts_indexer.lag()
        return {
            "articles": self.database.table("articles").row_count(),
            "posts": self.database.table("posts").row_count(),
            "reactions": self.database.table("reactions").row_count(),
            "reviews": self.database.table("reviews").row_count(),
            "outlets": self.database.table("outlets").row_count(),
            "stream_lag": self.extraction.lag(),
            "warehouse_rows": self.warehouse.total_rows(),
            "warehouse_storage": warehouse_storage,
            "cdc": cdc,
            "fts": fts,
            "planner": self.database.planner_status(),
            "serving": (
                self._serving.stats() if self._serving is not None else {"enabled": False}
            ),
            "health": self.health.report(),
            "warehouse_rollups": self.warehouse.rollups.overview(),
            "dfs": self.dfs.stats(),
            "jobs_success_rate": self.jobs.success_rate(),
            "registered_models": self.models.names(),
        }


# --------------------------------------------------------------- row mapping

def _row_to_article(row: Mapping[str, Any]) -> Article:
    return Article(
        article_id=row["article_id"],
        url=row["url"],
        outlet_domain=row["outlet_domain"],
        title=row["title"],
        published_at=row["published_at"],
        text=row.get("text") or "",
        html=row.get("html") or "",
        author=row.get("author"),
        topics=tuple(row.get("topics") or ()),
    )


def _row_to_post(row: Mapping[str, Any]) -> SocialPost:
    return SocialPost(
        post_id=row["post_id"],
        platform=row.get("platform") or "twitter",
        account=row["account"],
        article_url=row["article_url"],
        text=row.get("text") or "",
        created_at=row["created_at"],
        followers=row.get("followers") or 0,
        reply_to=row.get("reply_to"),
    )


def _row_to_reaction(row: Mapping[str, Any]) -> Reaction:
    return Reaction(
        reaction_id=row["reaction_id"],
        post_id=row["post_id"],
        kind=ReactionKind(row.get("kind") or "like"),
        created_at=row["created_at"],
        account=row.get("account") or "",
        text=row.get("text") or "",
    )
