"""Weighted, time-sensitive aggregation of expert reviews.

"Based on these evaluation scores, the system computes a weighted,
time-sensitive average and displays a final score of the criteria for each
article." (§3.2)

The aggregator weighs each review by the reviewer's weight multiplied by an
exponential time-decay factor: a review loses half its weight every
``half_life_days`` days relative to the evaluation instant.  Per-criterion
averages stay on the Likert scale; the overall quality score maps them onto
``[0, 1]`` with click-baitness inverted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from datetime import datetime
from typing import Sequence

from ..errors import ReviewError
from ..models import ExpertReview
from .criteria import CRITERIA, normalize_to_quality


@dataclass(frozen=True)
class ArticleReviewSummary:
    """Aggregated expert assessment of one article."""

    article_id: str
    n_reviews: int
    criterion_scores: dict[str, float] = field(default_factory=dict)
    overall_quality: float = 0.0
    total_weight: float = 0.0
    comments: tuple[str, ...] = ()

    def score(self, criterion: str) -> float | None:
        """Aggregated Likert score of one criterion (``None`` if never rated)."""
        return self.criterion_scores.get(criterion)

    def as_dict(self) -> dict[str, float]:
        out = {f"expert_{key}": value for key, value in self.criterion_scores.items()}
        out["expert_overall_quality"] = self.overall_quality
        out["expert_n_reviews"] = float(self.n_reviews)
        return out


class ReviewAggregator:
    """Computes weighted, time-sensitive review averages."""

    def __init__(self, half_life_days: float = 30.0) -> None:
        if half_life_days <= 0:
            raise ReviewError("half_life_days must be positive")
        self.half_life_days = half_life_days

    def time_weight(self, review_created_at: datetime, as_of: datetime) -> float:
        """Exponential decay weight of a review at evaluation time ``as_of``.

        Reviews newer than ``as_of`` (clock skew) get weight 1.
        """
        age_days = (as_of - review_created_at).total_seconds() / 86400.0
        if age_days <= 0:
            return 1.0
        return math.pow(0.5, age_days / self.half_life_days)

    def summarize(
        self,
        article_id: str,
        reviews: Sequence[ExpertReview],
        as_of: datetime | None = None,
    ) -> ArticleReviewSummary:
        """Aggregate ``reviews`` (all belonging to ``article_id``) at time ``as_of``."""
        relevant = [r for r in reviews if r.article_id == article_id]
        if not relevant:
            return ArticleReviewSummary(article_id=article_id, n_reviews=0)
        as_of = as_of or max(r.created_at for r in relevant)

        weighted_sums: dict[str, float] = {key: 0.0 for key in CRITERIA}
        weight_totals: dict[str, float] = {key: 0.0 for key in CRITERIA}
        total_weight = 0.0
        comments: list[str] = []

        for review in relevant:
            weight = review.reviewer_weight * self.time_weight(review.created_at, as_of)
            total_weight += weight
            if review.comment.strip():
                comments.append(review.comment.strip())
            for criterion, value in review.scores.items():
                weighted_sums[criterion] += weight * value
                weight_totals[criterion] += weight

        criterion_scores = {
            criterion: weighted_sums[criterion] / weight_totals[criterion]
            for criterion in CRITERIA
            if weight_totals[criterion] > 0
        }

        if criterion_scores:
            quality_components = [
                normalize_to_quality(criterion, score)
                for criterion, score in criterion_scores.items()
            ]
            overall = sum(quality_components) / len(quality_components)
        else:
            overall = 0.0

        return ArticleReviewSummary(
            article_id=article_id,
            n_reviews=len(relevant),
            criterion_scores=criterion_scores,
            overall_quality=overall,
            total_weight=total_weight,
            comments=tuple(comments),
        )

    def outlet_quality(
        self,
        summaries: Sequence[ArticleReviewSummary],
    ) -> float | None:
        """Outlet-level quality: mean overall quality over its reviewed articles.

        Used by the quality-based outlet segmentation when expert reviews (and
        not an external ranking) define outlet quality.  Returns ``None`` when
        no article of the outlet has reviews.
        """
        reviewed = [s for s in summaries if s.n_reviews > 0]
        if not reviewed:
            return None
        return sum(s.overall_quality for s in reviewed) / len(reviewed)
