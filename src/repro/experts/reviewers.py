"""Simulated expert reviewers.

The live platform is reviewed by human domain experts; offline we simulate a
pool of reviewers with individual severity biases, noise levels and
reliability weights.  Given the latent quality of an article (which the
scenario generator knows), each reviewer produces a plausible seven-criterion
Likert review — enough to exercise the whole review → aggregation → display
path and the consensus analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Sequence

import numpy as np

from ..errors import ReviewError
from ..models import LIKERT_MAX, LIKERT_MIN, ExpertReview
from .criteria import CRITERIA, criterion_definition


@dataclass(frozen=True)
class SimulatedReviewer:
    """One simulated expert."""

    reviewer_id: str
    #: Systematic severity bias on the Likert scale (negative = harsher).
    bias: float = 0.0
    #: Standard deviation of the per-criterion noise.
    noise: float = 0.5
    #: Weight used by the aggregator (senior reviewers count more).
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.noise < 0:
            raise ReviewError("noise must be non-negative")
        if self.weight <= 0:
            raise ReviewError("weight must be positive")

    def review(
        self,
        article_id: str,
        true_quality: float,
        created_at: datetime,
        rng: np.random.Generator,
        comment: str = "",
    ) -> ExpertReview:
        """Produce a review of an article whose latent quality is ``true_quality``.

        ``true_quality`` lives in ``[0, 1]``; it is mapped to the Likert scale,
        perturbed by the reviewer's bias and noise, and click-baitness is
        scored on the inverted scale (low-quality articles are click-baity).
        """
        if not 0.0 <= true_quality <= 1.0:
            raise ReviewError(f"true_quality must be in [0, 1], got {true_quality}")

        base = LIKERT_MIN + true_quality * (LIKERT_MAX - LIKERT_MIN)
        scores: dict[str, int] = {}
        for criterion in CRITERIA:
            target = base if criterion_definition(criterion).higher_is_better else (
                LIKERT_MAX + LIKERT_MIN - base
            )
            value = target + self.bias + rng.normal(0.0, self.noise)
            scores[criterion] = int(np.clip(round(value), LIKERT_MIN, LIKERT_MAX))

        return ExpertReview(
            review_id=f"rev-{article_id}-{self.reviewer_id}-{created_at.strftime('%Y%m%d%H%M%S')}",
            article_id=article_id,
            reviewer_id=self.reviewer_id,
            created_at=created_at,
            scores=scores,
            comment=comment,
            reviewer_weight=self.weight,
        )


class ReviewerPool:
    """A pool of simulated reviewers with a shared random generator."""

    def __init__(
        self,
        n_reviewers: int = 5,
        random_seed: int = 13,
        reviewers: Sequence[SimulatedReviewer] | None = None,
    ) -> None:
        self._rng = np.random.default_rng(random_seed)
        if reviewers is not None:
            self.reviewers = list(reviewers)
        else:
            if n_reviewers < 1:
                raise ReviewError("n_reviewers must be >= 1")
            self.reviewers = [
                SimulatedReviewer(
                    reviewer_id=f"expert-{i:02d}",
                    bias=float(self._rng.normal(0.0, 0.3)),
                    noise=float(abs(self._rng.normal(0.4, 0.15)) + 0.1),
                    weight=float(self._rng.choice([1.0, 1.0, 1.5, 2.0])),
                )
                for i in range(n_reviewers)
            ]

    def __len__(self) -> int:
        return len(self.reviewers)

    def review_article(
        self,
        article_id: str,
        true_quality: float,
        created_at: datetime,
        n_reviews: int | None = None,
        comment: str = "",
    ) -> list[ExpertReview]:
        """Collect reviews of one article from (a subset of) the pool."""
        selected = self.reviewers
        if n_reviews is not None:
            if n_reviews < 1:
                raise ReviewError("n_reviews must be >= 1")
            indices = self._rng.choice(
                len(self.reviewers), size=min(n_reviews, len(self.reviewers)), replace=False
            )
            selected = [self.reviewers[i] for i in sorted(indices)]
        return [
            reviewer.review(article_id, true_quality, created_at, self._rng, comment=comment)
            for reviewer in selected
        ]
