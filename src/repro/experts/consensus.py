"""Consensus metrics over expert and non-expert assessments.

The paper claims that the augmented view (automated indicators + expert
reviews) "has provably helped the platform users to have a better consensus
about the quality of the underlying articles".  The metrics here quantify
consensus: pairwise agreement and score variance across assessors, plus a
report comparing two assessment conditions (e.g. with and without access to
the indicators).
"""

from __future__ import annotations

from itertools import combinations
from typing import Mapping, Sequence

from ..errors import ReviewError
from ..models import LIKERT_MAX, LIKERT_MIN


def score_variance(scores: Sequence[float]) -> float:
    """Population variance of a set of assessment scores (0 for < 2 scores)."""
    values = list(scores)
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    return sum((v - mean) ** 2 for v in values) / len(values)


def pairwise_agreement(scores: Sequence[float], scale: float | None = None) -> float:
    """Mean pairwise agreement in ``[0, 1]``.

    Agreement between two assessors is ``1 - |a - b| / scale``; ``scale``
    defaults to the Likert range.  A single assessor trivially agrees with
    itself (returns 1.0).
    """
    values = list(scores)
    if len(values) < 2:
        return 1.0
    scale = scale if scale is not None else float(LIKERT_MAX - LIKERT_MIN)
    if scale <= 0:
        raise ReviewError("agreement scale must be positive")
    agreements = [
        1.0 - min(abs(a - b) / scale, 1.0) for a, b in combinations(values, 2)
    ]
    return sum(agreements) / len(agreements)


def consensus_report(
    without_indicators: Mapping[str, Sequence[float]],
    with_indicators: Mapping[str, Sequence[float]],
    scale: float | None = None,
) -> dict[str, float]:
    """Compare consensus between two assessment conditions.

    Both mappings go from article id to the list of quality scores different
    assessors gave that article.  Returns the mean pairwise agreement and mean
    variance under each condition plus the improvement (positive = the
    indicator-augmented condition produced better consensus, as the paper
    reports).
    """
    common = sorted(set(without_indicators) & set(with_indicators))
    if not common:
        raise ReviewError("the two conditions share no articles")

    def mean_metric(data: Mapping[str, Sequence[float]], metric) -> float:
        return sum(metric(data[article_id]) for article_id in common) / len(common)

    agreement_without = mean_metric(without_indicators, lambda s: pairwise_agreement(s, scale))
    agreement_with = mean_metric(with_indicators, lambda s: pairwise_agreement(s, scale))
    variance_without = mean_metric(without_indicators, score_variance)
    variance_with = mean_metric(with_indicators, score_variance)

    return {
        "articles": float(len(common)),
        "agreement_without_indicators": agreement_without,
        "agreement_with_indicators": agreement_with,
        "agreement_improvement": agreement_with - agreement_without,
        "variance_without_indicators": variance_without,
        "variance_with_indicators": variance_with,
        "variance_reduction": variance_without - variance_with,
    }
