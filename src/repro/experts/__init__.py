"""Expert-review subsystem (§3.2).

Experts annotate articles on seven Likert-scale criteria; the platform
combines those annotations into a weighted, time-sensitive average and
displays a final score next to the automated indicators.  This package holds
the criteria definitions, the review store, the aggregation maths, consensus
metrics and a simulated reviewer pool (standing in for the human experts of
the live deployment).
"""

from .criteria import CRITERIA, CriterionDefinition, criterion_definition
from .reviews import ReviewStore
from .aggregation import ArticleReviewSummary, ReviewAggregator
from .reviewers import SimulatedReviewer, ReviewerPool
from .consensus import pairwise_agreement, score_variance, consensus_report

__all__ = [
    "CRITERIA",
    "CriterionDefinition",
    "criterion_definition",
    "ReviewStore",
    "ArticleReviewSummary",
    "ReviewAggregator",
    "SimulatedReviewer",
    "ReviewerPool",
    "pairwise_agreement",
    "score_variance",
    "consensus_report",
]
