"""The seven expert-review criteria.

"The system allows experts to annotate any article based on seven criteria:
1) Factual accuracy, 2) Scientific understanding, 3) Logic/Reasoning,
4) Precision/Clarity, 5) Sources quality, 6) Fairness, and 7) Click-baitness
on a Likert Scale, from very low quality to very high quality." (§3.2)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReviewError
from ..models import LIKERT_MAX, LIKERT_MIN, REVIEW_CRITERIA

#: Ordered tuple of criterion identifiers (same order as the paper lists them).
CRITERIA: tuple[str, ...] = REVIEW_CRITERIA


@dataclass(frozen=True)
class CriterionDefinition:
    """Display name and question wording of one criterion."""

    key: str
    display_name: str
    question: str
    #: Whether a *high* Likert value means *high* quality.  Click-baitness is
    #: asked on the same scale but inverted when fused into a quality score.
    higher_is_better: bool = True


_DEFINITIONS: dict[str, CriterionDefinition] = {
    "factual_accuracy": CriterionDefinition(
        key="factual_accuracy",
        display_name="Factual accuracy",
        question="Are the factual claims of the article accurate?",
    ),
    "scientific_understanding": CriterionDefinition(
        key="scientific_understanding",
        display_name="Scientific understanding",
        question="Does the article reflect a correct understanding of the underlying science?",
    ),
    "logic_reasoning": CriterionDefinition(
        key="logic_reasoning",
        display_name="Logic / Reasoning",
        question="Is the reasoning of the article logically sound?",
    ),
    "precision_clarity": CriterionDefinition(
        key="precision_clarity",
        display_name="Precision / Clarity",
        question="Is the article precise and clearly written?",
    ),
    "sources_quality": CriterionDefinition(
        key="sources_quality",
        display_name="Sources quality",
        question="Does the article rely on high-quality, primary sources?",
    ),
    "fairness": CriterionDefinition(
        key="fairness",
        display_name="Fairness",
        question="Does the article treat the subject fairly and without bias?",
    ),
    "clickbaitness": CriterionDefinition(
        key="clickbaitness",
        display_name="Click-baitness",
        question="How click-baity is the title relative to the content?",
        higher_is_better=False,
    ),
}


def criterion_definition(key: str) -> CriterionDefinition:
    """Return the definition of a criterion, raising on unknown keys."""
    try:
        return _DEFINITIONS[key]
    except KeyError:
        raise ReviewError(f"unknown review criterion: {key!r}") from None


def validate_scores(scores: dict[str, int], require_all: bool = False) -> dict[str, int]:
    """Validate a criterion → Likert-score mapping.

    Unknown criteria and out-of-range values raise; when ``require_all`` is
    true every one of the seven criteria must be present.
    """
    for key, value in scores.items():
        if key not in _DEFINITIONS:
            raise ReviewError(f"unknown review criterion: {key!r}")
        if not LIKERT_MIN <= value <= LIKERT_MAX:
            raise ReviewError(
                f"criterion {key!r} must be scored in [{LIKERT_MIN}, {LIKERT_MAX}], got {value}"
            )
    if require_all:
        missing = [key for key in CRITERIA if key not in scores]
        if missing:
            raise ReviewError(f"missing criteria: {missing}")
    return dict(scores)


def quality_direction(key: str) -> int:
    """+1 when a high Likert value means high quality, -1 otherwise."""
    return 1 if criterion_definition(key).higher_is_better else -1


def normalize_to_quality(key: str, likert_value: float) -> float:
    """Map a Likert value onto a quality contribution in ``[0, 1]``.

    Criteria where higher is better map 1→0 and 5→1; click-baitness is
    inverted (1→1, 5→0).
    """
    span = LIKERT_MAX - LIKERT_MIN
    fraction = (likert_value - LIKERT_MIN) / span
    return fraction if criterion_definition(key).higher_is_better else 1.0 - fraction
