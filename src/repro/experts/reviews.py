"""Storage and retrieval of expert reviews."""

from __future__ import annotations

from collections import defaultdict
from datetime import datetime
from typing import Iterable

from ..errors import ReviewError
from ..models import ExpertReview
from .criteria import validate_scores


class ReviewStore:
    """In-memory store of expert reviews, indexed by article and reviewer."""

    def __init__(self, reviews: Iterable[ExpertReview] = ()) -> None:
        self._by_id: dict[str, ExpertReview] = {}
        self._by_article: dict[str, list[str]] = defaultdict(list)
        self._by_reviewer: dict[str, list[str]] = defaultdict(list)
        for review in reviews:
            self.add(review)

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, review_id: str) -> bool:
        return review_id in self._by_id

    def add(self, review: ExpertReview) -> None:
        """Add a review (ids must be unique; scores are re-validated)."""
        if review.review_id in self._by_id:
            raise ReviewError(f"duplicate review id {review.review_id!r}")
        validate_scores(review.scores)
        self._by_id[review.review_id] = review
        self._by_article[review.article_id].append(review.review_id)
        self._by_reviewer[review.reviewer_id].append(review.review_id)

    def get(self, review_id: str) -> ExpertReview:
        try:
            return self._by_id[review_id]
        except KeyError:
            raise ReviewError(f"no review with id {review_id!r}") from None

    def reviews_for_article(self, article_id: str) -> list[ExpertReview]:
        """All reviews of one article, oldest first."""
        reviews = [self._by_id[rid] for rid in self._by_article.get(article_id, [])]
        return sorted(reviews, key=lambda r: r.created_at)

    def reviews_by_reviewer(self, reviewer_id: str) -> list[ExpertReview]:
        """All reviews authored by one reviewer, oldest first."""
        reviews = [self._by_id[rid] for rid in self._by_reviewer.get(reviewer_id, [])]
        return sorted(reviews, key=lambda r: r.created_at)

    def latest_per_reviewer(self, article_id: str) -> list[ExpertReview]:
        """For one article, the most recent review of each reviewer.

        Reviewers may revise their assessment; only their latest review should
        count in the aggregate.
        """
        latest: dict[str, ExpertReview] = {}
        for review in self.reviews_for_article(article_id):
            current = latest.get(review.reviewer_id)
            if current is None or review.created_at >= current.created_at:
                latest[review.reviewer_id] = review
        return sorted(latest.values(), key=lambda r: r.created_at)

    def comments_for_article(self, article_id: str) -> list[tuple[str, datetime, str]]:
        """Free-text reviews of an article as ``(reviewer, timestamp, text)``."""
        return [
            (review.reviewer_id, review.created_at, review.comment)
            for review in self.reviews_for_article(article_id)
            if review.comment.strip()
        ]

    def reviewed_article_ids(self) -> list[str]:
        """Ids of every article with at least one review."""
        return sorted(article_id for article_id, ids in self._by_article.items() if ids)

    def reviewer_ids(self) -> list[str]:
        return sorted(self._by_reviewer)
