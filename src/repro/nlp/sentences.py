"""Sentence splitting.

A small rule-based splitter: terminates sentences on ``.``, ``!``, ``?``
followed by whitespace and an upper-case/quote/digit start, while protecting
common abbreviations (``Dr.``, ``e.g.``, ``U.S.``) and decimal numbers.
"""

from __future__ import annotations

import re

_ABBREVIATIONS = {
    "dr", "mr", "mrs", "ms", "prof", "sr", "jr", "st",
    "vs", "etc", "e.g", "i.e", "fig", "al", "inc", "ltd", "co",
    "jan", "feb", "mar", "apr", "jun", "jul", "aug", "sep", "sept", "oct", "nov", "dec",
    "no", "vol", "pp", "approx", "dept", "univ", "assn", "est",
    "u.s", "u.k", "u.n", "ph.d", "m.d",
}

_BOUNDARY_RE = re.compile(r"([.!?]+)(\s+)")


def _last_token(fragment: str) -> str:
    parts = fragment.rstrip().split()
    return parts[-1].lower() if parts else ""


def _is_abbreviation(token: str) -> bool:
    token = token.rstrip(".").lower()
    return token in _ABBREVIATIONS or (len(token) == 1 and token.isalpha())


def split_sentences(text: str) -> list[str]:
    """Split ``text`` into sentences.

    Returns a list of non-empty, stripped sentence strings.  Newlines that
    separate paragraphs always terminate a sentence.
    """
    if not text:
        return []

    sentences: list[str] = []
    for paragraph in re.split(r"\n\s*\n|\r\n\s*\r\n", text):
        paragraph = paragraph.strip()
        if not paragraph:
            continue
        sentences.extend(_split_paragraph(paragraph))
    return sentences


def _split_paragraph(paragraph: str) -> list[str]:
    pieces: list[str] = []
    start = 0
    for match in _BOUNDARY_RE.finditer(paragraph):
        end = match.end(1)
        candidate = paragraph[start:end]
        rest = paragraph[match.end():]

        last = _last_token(candidate[:-len(match.group(1))] or candidate)
        # Do not split after an abbreviation or inside a decimal number.
        if match.group(1) == "." and _is_abbreviation(last):
            continue
        if rest and rest[0].islower():
            continue

        stripped = candidate.strip()
        if stripped:
            pieces.append(stripped)
        start = match.end()

    tail = paragraph[start:].strip()
    if tail:
        pieces.append(tail)
    return pieces


def sentence_lengths(text: str) -> list[int]:
    """Return the number of word tokens in each sentence of ``text``."""
    from .tokenize import word_tokens

    return [len(word_tokens(sentence)) for sentence in split_sentences(text)]
