"""Click-bait scoring of article titles.

The content indicator "click-baitness of the title" is computed by a hybrid
scorer: a set of interpretable lexical features (click-bait phrases, hyperbolic
words, question/exclamation marks, second-person address, listicle patterns,
ALL-CAPS tokens) combined through a hand-tuned linear model.  An optional
Naive-Bayes model trained on labelled titles can be plugged in through
:class:`ClickbaitScorer` for the "periodically retrained" path of the platform.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .lexicons import CLICKBAIT_PHRASES, CLICKBAIT_WORDS, PERSONAL_PRONOUNS
from .tokenize import tokenize, word_tokens

_NUMBER_START_RE = re.compile(r"^\s*\d+\s+\w+")
_ALL_CAPS_RE = re.compile(r"^[A-Z]{3,}$")


@dataclass(frozen=True)
class ClickbaitFeatures:
    """Interpretable features extracted from a title."""

    phrase_hits: int
    word_hits: int
    question_marks: int
    exclamation_marks: int
    personal_pronouns: int
    starts_with_number: bool
    all_caps_tokens: int
    title_length: int
    ellipsis: bool

    def as_dict(self) -> dict[str, float]:
        return {
            "phrase_hits": float(self.phrase_hits),
            "word_hits": float(self.word_hits),
            "question_marks": float(self.question_marks),
            "exclamation_marks": float(self.exclamation_marks),
            "personal_pronouns": float(self.personal_pronouns),
            "starts_with_number": float(self.starts_with_number),
            "all_caps_tokens": float(self.all_caps_tokens),
            "title_length": float(self.title_length),
            "ellipsis": float(self.ellipsis),
        }


def extract_clickbait_features(title: str) -> ClickbaitFeatures:
    """Extract the interpretable click-bait features from ``title``."""
    lowered = title.lower()
    tokens = tokenize(title)
    words = word_tokens(title)

    return ClickbaitFeatures(
        phrase_hits=sum(1 for phrase in CLICKBAIT_PHRASES if phrase in lowered),
        word_hits=sum(1 for w in words if w in CLICKBAIT_WORDS),
        question_marks=lowered.count("?"),
        exclamation_marks=lowered.count("!"),
        personal_pronouns=sum(1 for w in words if w in PERSONAL_PRONOUNS),
        starts_with_number=bool(_NUMBER_START_RE.match(title)),
        all_caps_tokens=sum(1 for tok in tokens if _ALL_CAPS_RE.match(tok)),
        title_length=len(words),
        ellipsis="..." in title or "…" in title,
    )


#: Hand-tuned weights for the linear feature model (logit scale).
_DEFAULT_WEIGHTS: dict[str, float] = {
    "phrase_hits": 2.2,
    "word_hits": 0.9,
    "question_marks": 0.6,
    "exclamation_marks": 0.8,
    "personal_pronouns": 0.5,
    "starts_with_number": 0.9,
    "all_caps_tokens": 0.7,
    "ellipsis": 0.6,
}
_DEFAULT_BIAS = -1.8


def _sigmoid(x: float) -> float:
    import math

    if x >= 0:
        z = math.exp(-x)
        return 1.0 / (1.0 + z)
    z = math.exp(x)
    return z / (1.0 + z)


@dataclass
class ClickbaitScorer:
    """Hybrid click-bait scorer.

    By default the score is the sigmoid of a linear combination of the
    interpretable features.  If a trained ``model`` (anything exposing
    ``predict_proba(texts) -> list[float]``) is attached, the final score is
    the average of the lexical score and the model probability, mirroring the
    platform's combination of rules and periodically retrained models.
    """

    weights: dict[str, float] = field(default_factory=lambda: dict(_DEFAULT_WEIGHTS))
    bias: float = _DEFAULT_BIAS
    model: object | None = None

    def lexical_score(self, title: str) -> float:
        """Score using only the interpretable lexical features."""
        if not title.strip():
            return 0.0
        features = extract_clickbait_features(title).as_dict()
        logit = self.bias + sum(
            self.weights.get(name, 0.0) * value for name, value in features.items()
        )
        return _sigmoid(logit)

    def score(self, title: str) -> float:
        """Return the click-bait probability of ``title`` in ``[0, 1]``."""
        lexical = self.lexical_score(title)
        if self.model is None:
            return lexical
        proba = float(self.model.predict_proba([title])[0])
        return 0.5 * (lexical + proba)


_DEFAULT_SCORER = ClickbaitScorer()


def clickbait_score(title: str) -> float:
    """Module-level convenience wrapper around the default scorer."""
    return _DEFAULT_SCORER.score(title)
