"""Readability formulas.

Implements the standard battery of readability metrics (Flesch reading ease,
Flesch-Kincaid grade, Gunning fog, SMOG, ARI, Coleman-Liau) plus a composite
normalised score in ``[0, 1]`` used by the content-indicator layer, where 1
means "easily readable by a broad audience".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .sentences import split_sentences
from .tokenize import (
    count_characters,
    count_syllables_text,
    is_complex_word,
    word_tokens,
)


@dataclass(frozen=True)
class TextStatistics:
    """Raw counts feeding the readability formulas."""

    sentences: int
    words: int
    syllables: int
    characters: int
    complex_words: int

    @property
    def words_per_sentence(self) -> float:
        return self.words / self.sentences if self.sentences else 0.0

    @property
    def syllables_per_word(self) -> float:
        return self.syllables / self.words if self.words else 0.0

    @property
    def characters_per_word(self) -> float:
        return self.characters / self.words if self.words else 0.0

    @property
    def complex_word_ratio(self) -> float:
        return self.complex_words / self.words if self.words else 0.0


def text_statistics(text: str) -> TextStatistics:
    """Compute sentence/word/syllable/character counts for ``text``."""
    sentences = split_sentences(text)
    words = word_tokens(text)
    return TextStatistics(
        sentences=len(sentences),
        words=len(words),
        syllables=count_syllables_text(words),
        characters=count_characters(words),
        complex_words=sum(1 for w in words if is_complex_word(w)),
    )


def flesch_reading_ease(text: str, stats: TextStatistics | None = None) -> float:
    """Flesch Reading Ease (higher = easier; typical range roughly 0-100)."""
    stats = stats or text_statistics(text)
    if not stats.words or not stats.sentences:
        return 0.0
    return (
        206.835
        - 1.015 * stats.words_per_sentence
        - 84.6 * stats.syllables_per_word
    )


def flesch_kincaid_grade(text: str, stats: TextStatistics | None = None) -> float:
    """Flesch-Kincaid grade level (US school grade; lower = easier)."""
    stats = stats or text_statistics(text)
    if not stats.words or not stats.sentences:
        return 0.0
    return 0.39 * stats.words_per_sentence + 11.8 * stats.syllables_per_word - 15.59


def gunning_fog(text: str, stats: TextStatistics | None = None) -> float:
    """Gunning fog index (years of formal education needed; lower = easier)."""
    stats = stats or text_statistics(text)
    if not stats.words or not stats.sentences:
        return 0.0
    return 0.4 * (stats.words_per_sentence + 100.0 * stats.complex_word_ratio)


def smog_index(text: str, stats: TextStatistics | None = None) -> float:
    """SMOG grade (lower = easier).  Defined for texts with at least one sentence."""
    stats = stats or text_statistics(text)
    if not stats.sentences:
        return 0.0
    polysyllables = stats.complex_words
    return 1.0430 * math.sqrt(polysyllables * (30.0 / stats.sentences)) + 3.1291


def automated_readability_index(text: str, stats: TextStatistics | None = None) -> float:
    """Automated Readability Index (approximate US grade level)."""
    stats = stats or text_statistics(text)
    if not stats.words or not stats.sentences:
        return 0.0
    return (
        4.71 * stats.characters_per_word
        + 0.5 * stats.words_per_sentence
        - 21.43
    )


def coleman_liau_index(text: str, stats: TextStatistics | None = None) -> float:
    """Coleman-Liau index (approximate US grade level)."""
    stats = stats or text_statistics(text)
    if not stats.words:
        return 0.0
    letters_per_100 = stats.characters_per_word * 100.0
    sentences_per_100 = (stats.sentences / stats.words) * 100.0
    return 0.0588 * letters_per_100 - 0.296 * sentences_per_100 - 15.8


@dataclass(frozen=True)
class ReadabilityReport:
    """All readability metrics for one text plus a normalised composite score."""

    statistics: TextStatistics
    flesch_reading_ease: float
    flesch_kincaid_grade: float
    gunning_fog: float
    smog_index: float
    automated_readability_index: float
    coleman_liau_index: float
    #: Composite score in [0, 1]; 1 = very readable.
    score: float = field(default=0.0)

    def grade_levels(self) -> dict[str, float]:
        """Return the grade-level metrics as a dict (for serialisation)."""
        return {
            "flesch_kincaid_grade": self.flesch_kincaid_grade,
            "gunning_fog": self.gunning_fog,
            "smog_index": self.smog_index,
            "automated_readability_index": self.automated_readability_index,
            "coleman_liau_index": self.coleman_liau_index,
        }


def _normalise_flesch(value: float) -> float:
    """Map Flesch reading ease (roughly [-50, 120]) onto [0, 1]."""
    return min(1.0, max(0.0, value / 100.0))


def _normalise_grade(value: float) -> float:
    """Map a grade-level metric onto [0, 1] where 1 = easiest (grade <= 5)."""
    if value <= 5.0:
        return 1.0
    if value >= 20.0:
        return 0.0
    return (20.0 - value) / 15.0


def readability_report(text: str) -> ReadabilityReport:
    """Compute every readability metric for ``text`` and a composite score.

    The composite averages the normalised Flesch reading ease with the
    normalised grade-level metrics; empty text scores 0.
    """
    stats = text_statistics(text)
    fre = flesch_reading_ease(text, stats)
    fkg = flesch_kincaid_grade(text, stats)
    fog = gunning_fog(text, stats)
    smog = smog_index(text, stats)
    ari = automated_readability_index(text, stats)
    cli = coleman_liau_index(text, stats)

    if stats.words == 0:
        score = 0.0
    else:
        grade_scores = [
            _normalise_grade(fkg),
            _normalise_grade(fog),
            _normalise_grade(smog),
            _normalise_grade(ari),
            _normalise_grade(cli),
        ]
        score = 0.5 * _normalise_flesch(fre) + 0.5 * (sum(grade_scores) / len(grade_scores))

    return ReadabilityReport(
        statistics=stats,
        flesch_reading_ease=fre,
        flesch_kincaid_grade=fkg,
        gunning_fog=fog,
        smog_index=smog,
        automated_readability_index=ari,
        coleman_liau_index=cli,
        score=score,
    )
