"""Subjectivity scoring of article bodies.

The scorer is lexicon-based: strongly subjective clues count 1.0, weakly
subjective clues 0.5, and objective/evidence cues subtract weight.  The final
score is normalised to ``[0, 1]`` where 1 means "highly subjective / opinion
heavy" — the polarity the SciLens content indicator reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from .lexicons import (
    OBJECTIVE_CUES,
    PERSONAL_PRONOUNS,
    STRONG_SUBJECTIVE,
    WEAK_SUBJECTIVE,
)
from .tokenize import word_tokens


@dataclass(frozen=True)
class SubjectivityResult:
    """Breakdown of the subjectivity computation for one text."""

    score: float
    strong_hits: int
    weak_hits: int
    objective_hits: int
    pronoun_hits: int
    total_words: int


class SubjectivityScorer:
    """Lexicon-based subjectivity scorer.

    Parameters
    ----------
    strong_weight, weak_weight, pronoun_weight:
        Contribution of each hit type to the subjective mass.
    objective_weight:
        Contribution of each objective cue to the objective mass.
    scale:
        Per-word density multiplier mapping hit density onto [0, 1]; density
        ``1/scale`` or higher saturates the score at 1.
    """

    def __init__(
        self,
        strong_weight: float = 1.0,
        weak_weight: float = 0.5,
        pronoun_weight: float = 0.25,
        objective_weight: float = 0.75,
        scale: float = 12.0,
    ) -> None:
        self.strong_weight = strong_weight
        self.weak_weight = weak_weight
        self.pronoun_weight = pronoun_weight
        self.objective_weight = objective_weight
        self.scale = scale

    def analyse(self, text: str) -> SubjectivityResult:
        """Return the full subjectivity breakdown for ``text``."""
        words = word_tokens(text)
        if not words:
            return SubjectivityResult(0.0, 0, 0, 0, 0, 0)

        strong = sum(1 for w in words if w in STRONG_SUBJECTIVE)
        weak = sum(1 for w in words if w in WEAK_SUBJECTIVE)
        objective = sum(1 for w in words if w in OBJECTIVE_CUES)
        pronouns = sum(1 for w in words if w in PERSONAL_PRONOUNS)

        subjective_mass = (
            self.strong_weight * strong
            + self.weak_weight * weak
            + self.pronoun_weight * pronouns
        )
        objective_mass = self.objective_weight * objective

        density = max(0.0, subjective_mass - objective_mass) / len(words)
        score = min(1.0, density * self.scale)
        return SubjectivityResult(
            score=score,
            strong_hits=strong,
            weak_hits=weak,
            objective_hits=objective,
            pronoun_hits=pronouns,
            total_words=len(words),
        )

    def score(self, text: str) -> float:
        """Return only the subjectivity score in ``[0, 1]``."""
        return self.analyse(text).score


_DEFAULT_SCORER = SubjectivityScorer()


def subjectivity_score(text: str) -> float:
    """Module-level convenience wrapper around the default scorer."""
    return _DEFAULT_SCORER.score(text)
