"""Stance classification of social-media posts towards a news article.

The paper defines stance as the positioning of social-media users towards an
article: *positive* (support/comment without doubts) or *negative* (question
the quality or contradict the article).  We classify each post into the
four-way SUPPORT / COMMENT / QUESTION / DENY scheme used by the underlying
SciLens paper (Smeros et al., 2019) and map it onto the positive/negative axis
the platform displays.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .lexicons import NEGATIONS, STANCE_DENY, STANCE_QUESTION, STANCE_SUPPORT
from .tokenize import word_tokens


class Stance(str, Enum):
    """Four-way stance of a social post towards an article."""

    SUPPORT = "support"
    COMMENT = "comment"
    QUESTION = "question"
    DENY = "deny"

    @property
    def is_positive(self) -> bool:
        """The paper's positive axis: supporting or neutrally commenting."""
        return self in (Stance.SUPPORT, Stance.COMMENT)

    @property
    def is_negative(self) -> bool:
        """The paper's negative axis: questioning or contradicting."""
        return self in (Stance.QUESTION, Stance.DENY)


@dataclass(frozen=True)
class StanceResult:
    """Stance decision with the lexicon evidence behind it."""

    stance: Stance
    support_hits: int
    question_hits: int
    deny_hits: int
    negated_support: int
    confidence: float


class StanceClassifier:
    """Lexicon-based stance classifier with an optional trained fallback model.

    A post is classified by counting support / question / deny cues; support
    cues preceded by a negation within ``negation_window`` tokens count as
    deny evidence ("not true", "don't agree").  Ties and cue-free posts fall
    back to COMMENT (neutral sharing), which matches the observed dominance of
    neutral resharing on social platforms.
    """

    def __init__(self, negation_window: int = 2, model: object | None = None) -> None:
        self.negation_window = negation_window
        self.model = model

    def analyse(self, text: str) -> StanceResult:
        """Classify ``text`` and return the evidence counts."""
        words = word_tokens(text)
        if not words:
            return StanceResult(Stance.COMMENT, 0, 0, 0, 0, 0.0)

        support = 0
        question = 0
        deny = 0
        negated_support = 0

        for index, word in enumerate(words):
            window = words[max(0, index - self.negation_window):index]
            negated = any(w in NEGATIONS for w in window)
            if word in STANCE_SUPPORT:
                if negated:
                    negated_support += 1
                    deny += 1
                else:
                    support += 1
            elif word in STANCE_DENY:
                deny += 1
            elif word in STANCE_QUESTION:
                if negated:
                    support += 1
                else:
                    question += 1

        question += text.count("?")

        counts = {
            Stance.SUPPORT: support,
            Stance.QUESTION: question,
            Stance.DENY: deny,
        }
        best_stance, best_count = max(counts.items(), key=lambda item: item[1])
        total = support + question + deny

        if total == 0:
            stance = Stance.COMMENT
            confidence = 0.5
        elif deny > 0 and deny >= best_count:
            # Denial dominates when tied: contradiction is the strongest signal.
            stance = Stance.DENY
            confidence = deny / total
        else:
            stance = best_stance
            confidence = best_count / total

        return StanceResult(
            stance=stance,
            support_hits=support,
            question_hits=question,
            deny_hits=deny,
            negated_support=negated_support,
            confidence=confidence,
        )

    def classify(self, text: str) -> Stance:
        """Return only the stance label for ``text``."""
        if self.model is not None:
            label = self.model.predict([text])[0]
            return Stance(label)
        return self.analyse(text).stance


_DEFAULT_CLASSIFIER = StanceClassifier()


def classify_stance(text: str) -> Stance:
    """Module-level convenience wrapper around the default classifier."""
    return _DEFAULT_CLASSIFIER.classify(text)
