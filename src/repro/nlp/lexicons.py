"""Hand-built lexicons used by the subjectivity, click-bait and stance scorers.

The original SciLens system relies on lexicon- and model-based scorers trained
on external resources (MPQA-style subjectivity clues, click-bait corpora,
stance-annotated tweets).  Offline we ship compact lexicons that cover the
vocabulary produced by :mod:`repro.simulation.corpus`, plus a generous set of
common English cue words so that arbitrary text also gets sensible scores.
"""

from __future__ import annotations

#: Strongly subjective words (weight 1.0 in the subjectivity scorer).
STRONG_SUBJECTIVE: frozenset[str] = frozenset(
    """
    amazing awful terrible horrible fantastic incredible unbelievable shocking
    outrageous disgusting stunning miraculous devastating catastrophic
    disastrous wonderful brilliant absurd ridiculous insane crazy evil
    corrupt sinister scandalous explosive jaw-dropping mind-blowing
    astonishing appalling atrocious deplorable despicable dreadful
    hateful hideous monstrous nightmarish obscene revolting sickening
    terrifying tragic vile wicked glorious magnificent marvelous
    phenomenal spectacular superb breathtaking dazzling extraordinary
    bogus fraudulent hoax scam conspiracy coverup cover-up lies lying liar
    miracle cure miraculously poison toxic deadly lethal killer
    worst best greatest perfect flawless useless worthless pathetic
    alarming frightening scary horrifying panic chaos crisis catastrophe
    stunningly shockingly outrageously unbelievably
    """.split()
)

#: Weakly subjective words (weight 0.5 in the subjectivity scorer).
WEAK_SUBJECTIVE: frozenset[str] = frozenset(
    """
    good bad better worse great poor nice ugly happy sad angry upset
    concerning worrying troubling promising encouraging discouraging
    surprising unexpected remarkable notable significant important
    interesting boring exciting dull controversial questionable dubious
    unclear uncertain likely unlikely probably possibly apparently seemingly
    reportedly allegedly supposedly arguably clearly obviously certainly
    definitely undoubtedly truly really very extremely highly deeply
    strongly fairly quite rather somewhat slightly barely hardly
    believe think feel hope fear worry doubt suspect claim argue insist
    suggest assume speculate guess wonder
    dangerous risky unsafe harmful beneficial helpful effective ineffective
    impressive disappointing frustrating annoying
    huge massive enormous tiny major minor serious severe mild dramatic
    rapid sudden unprecedented historic
    """.split()
)

#: Objective / evidence-bearing cue words (reduce the subjectivity score).
OBJECTIVE_CUES: frozenset[str] = frozenset(
    """
    study studies research researchers data dataset evidence findings results
    analysis measured measurement observed observation experiment experiments
    trial trials sample samples participants patients cohort
    published journal peer-reviewed university institute laboratory
    percent percentage rate ratio average median statistically significant
    confidence interval methodology method methods model models estimate
    estimated according report reported survey census figures
    professor scientist scientists epidemiologist virologist physician
    """.split()
)

#: Phrases that frequently open click-bait headlines.
CLICKBAIT_PHRASES: tuple[str, ...] = (
    "you won't believe",
    "you wont believe",
    "what happens next",
    "will shock you",
    "will blow your mind",
    "doctors hate",
    "this one trick",
    "one weird trick",
    "the real reason",
    "the shocking truth",
    "the truth about",
    "they don't want you to know",
    "they dont want you to know",
    "number one reason",
    "can't even handle",
    "before it's too late",
    "before its too late",
    "everything you need to know",
    "here's what",
    "heres what",
    "this is why",
    "find out why",
    "you need to see",
    "goes viral",
    "breaks the internet",
)

#: Single words highly associated with click-bait headlines.
CLICKBAIT_WORDS: frozenset[str] = frozenset(
    """
    shocking unbelievable insane crazy epic viral secret secrets trick tricks
    hack hacks miracle weird bizarre stunning jaw-dropping mind-blowing
    exposed revealed busted banned hidden forbidden
    literally actually totally absolutely
    """.split()
)

#: Words/phrases indicating a questioning or denying stance in a social post.
STANCE_DENY: frozenset[str] = frozenset(
    """
    fake false untrue wrong incorrect misleading debunked hoax lie lies lying
    nonsense bogus fabricated myth disproved disproven pseudoscience
    misinformation disinformation propaganda clickbait
    """.split()
)

STANCE_QUESTION: frozenset[str] = frozenset(
    """
    really source sources proof evidence doubt doubtful doubts skeptical
    sceptical questionable suspicious unverified unconfirmed citation
    allegedly supposedly hmm sure certain verify verified
    """.split()
)

STANCE_SUPPORT: frozenset[str] = frozenset(
    """
    true correct accurate confirmed agree agreed exactly important must-read
    mustread informative helpful great excellent thanks sharing share
    recommended finally crucial vital essential insightful
    """.split()
)

#: Negation words that flip nearby polarity cues.
NEGATIONS: frozenset[str] = frozenset(
    "not no never none nobody nothing neither nor cannot can't won't don't doesn't isn't aren't wasn't weren't".split()
)

#: First/second-person pronouns (a classic click-bait / subjectivity signal).
PERSONAL_PRONOUNS: frozenset[str] = frozenset(
    "i me my mine we us our ours you your yours".split()
)
