"""Natural-language-processing substrate.

Everything the indicator layer needs from "NLP libraries" in the original
SciLens deployment is implemented here from scratch: tokenisation, sentence
splitting, readability formulas, subjectivity scoring, click-bait detection
features and stance analysis of social-media posts.
"""

from .tokenize import tokenize, word_tokens, count_syllables
from .sentences import split_sentences
from .stopwords import STOPWORDS, is_stopword, remove_stopwords
from .readability import (
    ReadabilityReport,
    flesch_reading_ease,
    flesch_kincaid_grade,
    gunning_fog,
    smog_index,
    automated_readability_index,
    coleman_liau_index,
    readability_report,
)
from .subjectivity import SubjectivityScorer, subjectivity_score
from .clickbait import ClickbaitScorer, clickbait_score
from .stance import Stance, StanceClassifier, classify_stance
from .features import ngrams, bag_of_words, hashed_features
from .similarity import cosine_similarity, jaccard_similarity

__all__ = [
    "tokenize",
    "word_tokens",
    "count_syllables",
    "split_sentences",
    "STOPWORDS",
    "is_stopword",
    "remove_stopwords",
    "ReadabilityReport",
    "flesch_reading_ease",
    "flesch_kincaid_grade",
    "gunning_fog",
    "smog_index",
    "automated_readability_index",
    "coleman_liau_index",
    "readability_report",
    "SubjectivityScorer",
    "subjectivity_score",
    "ClickbaitScorer",
    "clickbait_score",
    "Stance",
    "StanceClassifier",
    "classify_stance",
    "ngrams",
    "bag_of_words",
    "hashed_features",
    "cosine_similarity",
    "jaccard_similarity",
]
