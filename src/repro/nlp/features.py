"""Text feature extraction: n-grams, bags of words and hashed feature vectors.

These primitives feed the ML substrate (vectorisers, Naive Bayes, logistic
regression) and the topic-clustering component of the analytics layer.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import Iterable, Sequence

import numpy as np

from .stopwords import remove_stopwords
from .tokenize import word_tokens


def ngrams(tokens: Sequence[str], n: int) -> list[tuple[str, ...]]:
    """Return the list of ``n``-grams (as tuples) over ``tokens``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if len(tokens) < n:
        return []
    return [tuple(tokens[i:i + n]) for i in range(len(tokens) - n + 1)]


def ngram_strings(tokens: Sequence[str], n: int, separator: str = " ") -> list[str]:
    """Return ``n``-grams joined into strings (convenient dictionary keys)."""
    return [separator.join(gram) for gram in ngrams(tokens, n)]


def bag_of_words(
    text: str,
    lowercase: bool = True,
    drop_stopwords: bool = True,
    ngram_range: tuple[int, int] = (1, 1),
) -> Counter[str]:
    """Return a token-count bag for ``text``.

    ``ngram_range = (lo, hi)`` includes every n-gram size in ``[lo, hi]``;
    n-grams beyond unigrams are joined with spaces.
    """
    lo, hi = ngram_range
    if lo < 1 or hi < lo:
        raise ValueError("invalid ngram_range")
    tokens = word_tokens(text, lowercase=lowercase)
    if drop_stopwords:
        tokens = remove_stopwords(tokens)
    counts: Counter[str] = Counter()
    for n in range(lo, hi + 1):
        if n == 1:
            counts.update(tokens)
        else:
            counts.update(ngram_strings(tokens, n))
    return counts


def _stable_hash(token: str) -> int:
    """Deterministic 64-bit hash of ``token`` (independent of PYTHONHASHSEED)."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def hashed_features(
    text: str,
    n_features: int = 1024,
    lowercase: bool = True,
    drop_stopwords: bool = True,
) -> np.ndarray:
    """Return a fixed-size hashed bag-of-words vector for ``text``.

    Uses the signed hashing trick so collisions partially cancel; the vector
    is L2-normalised (zero vector for empty text).
    """
    if n_features < 1:
        raise ValueError("n_features must be >= 1")
    vector = np.zeros(n_features, dtype=np.float64)
    counts = bag_of_words(text, lowercase=lowercase, drop_stopwords=drop_stopwords)
    for token, count in counts.items():
        digest = _stable_hash(token)
        index = digest % n_features
        sign = 1.0 if (digest >> 63) & 1 else -1.0
        vector[index] += sign * count
    norm = float(np.linalg.norm(vector))
    if norm > 0:
        vector /= norm
    return vector


def vocabulary(documents: Iterable[str], min_count: int = 1) -> dict[str, int]:
    """Build a token → index vocabulary over ``documents``.

    Tokens appearing fewer than ``min_count`` times across the corpus are
    dropped.  Indices are assigned in sorted token order for determinism.
    """
    totals: Counter[str] = Counter()
    for document in documents:
        totals.update(bag_of_words(document))
    kept = sorted(token for token, count in totals.items() if count >= min_count)
    return {token: index for index, token in enumerate(kept)}
