"""Text and vector similarity measures used by clustering and deduplication."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping

import numpy as np


def cosine_similarity(a, b) -> float:
    """Cosine similarity between two vectors or two sparse count mappings.

    Accepts numpy arrays / sequences of floats, or ``Mapping[str, number]``
    (e.g. :class:`collections.Counter`).  Returns 0.0 when either side has
    zero norm.
    """
    if isinstance(a, Mapping) and isinstance(b, Mapping):
        return _cosine_mappings(a, b)
    va = np.asarray(a, dtype=np.float64)
    vb = np.asarray(b, dtype=np.float64)
    if va.shape != vb.shape:
        raise ValueError(f"shape mismatch: {va.shape} vs {vb.shape}")
    norm = float(np.linalg.norm(va)) * float(np.linalg.norm(vb))
    if norm == 0.0:
        return 0.0
    return float(np.dot(va, vb) / norm)


def _cosine_mappings(a: Mapping[str, float], b: Mapping[str, float]) -> float:
    if not a or not b:
        return 0.0
    common = set(a) & set(b)
    dot = sum(float(a[key]) * float(b[key]) for key in common)
    norm_a = sum(float(v) ** 2 for v in a.values()) ** 0.5
    norm_b = sum(float(v) ** 2 for v in b.values()) ** 0.5
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


def jaccard_similarity(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard similarity of two token collections (sets of their elements)."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    if not union:
        return 0.0
    return len(set_a & set_b) / len(union)


def token_overlap(a: str, b: str) -> float:
    """Jaccard similarity of the word tokens of two texts."""
    from .tokenize import word_tokens

    return jaccard_similarity(word_tokens(a), word_tokens(b))


def counter_distance(a: Counter, b: Counter) -> float:
    """Cosine *distance* (1 - similarity) between two token-count bags."""
    return 1.0 - _cosine_mappings(a, b)
