"""Word-level tokenisation and syllable counting.

The tokenizer is regex-based and deliberately conservative: it keeps
hyphenated words and internal apostrophes together (``state-of-the-art``,
``don't``) because readability formulas and lexicon lookups want whole words,
and it separates punctuation which the stance/click-bait feature extractors
inspect explicitly.
"""

from __future__ import annotations

import re
from typing import Iterable

_TOKEN_RE = re.compile(
    r"""
    [A-Za-z]+(?:['’-][A-Za-z]+)*   # words, possibly hyphen/apostrophe joined
    | \d+(?:[.,]\d+)*%?                 # numbers, 1,000 / 3.14 / 45%
    | [?!.]+                            # sentence punctuation runs
    | [^\sA-Za-z\d]                     # any other single symbol
    """,
    re.VERBOSE,
)

_WORD_RE = re.compile(r"^[A-Za-z]+(?:['’-][A-Za-z]+)*$")

_VOWEL_GROUP_RE = re.compile(r"[aeiouy]+")

# Characters allowed to join two letters inside a single word token.
_WORD_JOINERS = ("'", "’", "-")


def fold_token(token: str) -> str:
    """Case-fold ``token`` for caseless matching, stably.

    ``str.casefold()`` alone is not lowercase-stable (Cherokee letters fold to
    uppercase), which would break the invariant that folded tokens compare
    equal to their own ``lower()``.  Folding and then lowering is idempotent:
    ``fold_token(fold_token(t)) == fold_token(t)`` for every string.
    """
    return token.casefold().lower()


def tokenize(text: str) -> list[str]:
    """Split ``text`` into word, number and punctuation tokens (order preserved)."""
    if not text:
        return []
    return _TOKEN_RE.findall(text)


def word_tokens(text: str, lowercase: bool = True) -> list[str]:
    """Return only the alphabetic word tokens of ``text``.

    Numbers and punctuation are dropped; hyphenated/apostrophe words are kept
    intact (a joiner must have a letter on both sides).  Empty and
    punctuation-only inputs yield ``[]``.  Unlike :func:`tokenize`, which keeps
    its ASCII-only contract for the punctuation-sensitive feature extractors,
    word extraction is Unicode-aware: any character for which
    ``str.isalpha()`` holds starts or extends a word, so ``café`` and
    ``наука`` survive tokenisation instead of being shredded into symbols.

    When ``lowercase`` is true each token is folded with :func:`fold_token`,
    which is what every lexicon lookup in the library expects — folded tokens
    always satisfy ``token == token.lower()``.
    """
    if not text:
        return []
    words: list[str] = []
    i, n = 0, len(text)
    while i < n:
        if not text[i].isalpha():
            i += 1
            continue
        start = i
        i += 1
        while i < n:
            ch = text[i]
            if ch.isalpha():
                i += 1
            elif ch in _WORD_JOINERS and i + 1 < n and text[i + 1].isalpha():
                i += 1
            else:
                break
        words.append(text[start:i])
    if lowercase:
        words = [fold_token(w) for w in words]
    return words


def is_word(token: str) -> bool:
    """Return ``True`` if ``token`` is an alphabetic word token."""
    return bool(_WORD_RE.match(token))


def count_syllables(word: str) -> int:
    """Estimate the number of syllables in an English ``word``.

    Uses the standard vowel-group heuristic with corrections for silent
    trailing ``e`` and common suffixes.  Always returns at least 1 for a
    non-empty word.
    """
    word = word.lower().strip()
    if not word:
        return 0
    word = re.sub(r"[^a-z]", "", word)
    if not word:
        return 1
    if len(word) <= 3:
        return 1

    stripped = word
    # Silent endings: "-e" (make), "-es" (makes), "-ed" (baked) — but keep
    # "-le" (table) and "-ted"/"-ded" (wanted, added) which are voiced.
    if stripped.endswith("e") and not stripped.endswith("le"):
        stripped = stripped[:-1]
    elif stripped.endswith("es") and not stripped.endswith(("ses", "zes", "ches", "shes")):
        stripped = stripped[:-2]
    elif stripped.endswith("ed") and not stripped.endswith(("ted", "ded")):
        stripped = stripped[:-2]

    groups = _VOWEL_GROUP_RE.findall(stripped)
    count = len(groups)
    if count == 0:
        count = 1
    return count


def count_syllables_text(words: Iterable[str]) -> int:
    """Sum syllable estimates over an iterable of words."""
    return sum(count_syllables(w) for w in words)


def count_characters(words: Iterable[str]) -> int:
    """Total number of alphanumeric characters across ``words`` (for ARI/Coleman-Liau)."""
    return sum(len(re.sub(r"[^A-Za-z0-9]", "", w)) for w in words)


def is_complex_word(word: str) -> bool:
    """Return ``True`` for "complex" words (3+ syllables) as used by Gunning fog/SMOG."""
    return count_syllables(word) >= 3
