"""The scenario data bundle shared by examples, tests and benchmarks."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from datetime import date, datetime
from typing import Any, Iterator

from ..models import Reaction, SocialPost
from ..web.sitestore import SiteStore
from .corpus import GeneratedArticle
from .outlets import OutletRegistry


@dataclass
class ScenarioData:
    """Everything one generated scenario produced.

    The bundle keeps both the ground-truth view (generated articles with their
    latent quality and link counts) and the raw-event view (postings and
    reactions ready to be replayed through the streaming pipeline).
    """

    outlets: OutletRegistry
    site_store: SiteStore
    articles: list[GeneratedArticle]
    posts: list[SocialPost]
    reactions: list[Reaction]
    window_start: datetime
    window_end: datetime
    topic_of_interest: str = "covid19"
    metadata: dict[str, Any] = field(default_factory=dict)

    # ----------------------------------------------------------------- lookups

    def article_by_url(self, url: str) -> GeneratedArticle | None:
        for generated in self.articles:
            if generated.url == url:
                return generated
        return None

    def articles_of_outlet(self, domain: str) -> list[GeneratedArticle]:
        return [g for g in self.articles if g.article.outlet_domain == domain]

    def topic_articles(self, topic_key: str | None = None) -> list[GeneratedArticle]:
        """Articles on the topic of interest (COVID-19 by default)."""
        topic_key = topic_key or self.topic_of_interest
        return [g for g in self.articles if g.topic_key == topic_key]

    def posts_by_article(self) -> dict[str, list[SocialPost]]:
        grouped: dict[str, list[SocialPost]] = defaultdict(list)
        for post in self.posts:
            grouped[post.article_url].append(post)
        return dict(grouped)

    def reactions_by_post(self) -> dict[str, list[Reaction]]:
        grouped: dict[str, list[Reaction]] = defaultdict(list)
        for reaction in self.reactions:
            grouped[reaction.post_id].append(reaction)
        return dict(grouped)

    # --------------------------------------------------------------- summaries

    def daily_article_counts(self, topic_key: str | None = None) -> dict[str, dict[date, int]]:
        """Per-outlet, per-day article counts (optionally restricted to one topic)."""
        counts: dict[str, dict[date, int]] = defaultdict(lambda: defaultdict(int))
        for generated in self.articles:
            if topic_key is not None and generated.topic_key != topic_key:
                continue
            day = generated.article.published_at.date()
            counts[generated.article.outlet_domain][day] += 1
        return {domain: dict(days) for domain, days in counts.items()}

    def summary(self) -> dict[str, int]:
        """Size summary of the scenario."""
        return {
            "outlets": len(self.outlets),
            "articles": len(self.articles),
            "topic_articles": len(self.topic_articles()),
            "posts": len(self.posts),
            "reactions": len(self.reactions),
            "days": (self.window_end - self.window_start).days,
        }

    # ------------------------------------------------------------ event replay

    def posting_events(self) -> Iterator[tuple[str, dict[str, Any]]]:
        """Posting events ``(key, value)`` ready for the postings topic."""
        for post in sorted(self.posts, key=lambda p: p.created_at):
            yield post.account, {
                "post_id": post.post_id,
                "platform": post.platform,
                "account": post.account,
                "article_url": post.article_url,
                "text": post.text,
                "created_at": post.created_at.isoformat(),
                "followers": post.followers,
                "reply_to": post.reply_to,
            }

    def reaction_events(self) -> Iterator[tuple[str, dict[str, Any]]]:
        """Reaction events ``(key, value)`` ready for the reactions topic."""
        for reaction in sorted(self.reactions, key=lambda r: r.created_at):
            yield reaction.post_id, {
                "reaction_id": reaction.reaction_id,
                "post_id": reaction.post_id,
                "kind": reaction.kind.value,
                "created_at": reaction.created_at.isoformat(),
                "account": reaction.account,
                "text": reaction.text,
            }

    def true_quality_by_article_id(self) -> dict[str, float]:
        """Latent quality of every article (ground truth for reviews/ablations)."""
        return {g.article.article_id: g.true_quality for g in self.articles}
