"""Serving-tier load scenario: zipfian tenants hammering zipfian hot keys.

Real dashboard traffic is doubly skewed: a few tenants generate most of the
requests, and a few hot keys (today's roll-ups, the front-page listing)
receive most of the reads.  This module generates that shape
deterministically — rank-weighted zipfian draws over a tenant population and
a request pool, seeded through :class:`SeededRng` — and provides a threaded
load runner that measures what the serving tier is gated on in CI:
throughput, latency percentiles (p50/p99) and per-status outcome counts.

The workload is transport-agnostic: ``run_serving_load`` drives any handler
``(SimulatedRequest) -> response`` where the response carries a ``status``
attribute, so the same workload replays against a bare ``ApiGateway``, the
``ShardedGateway`` front door, or an ``AsyncGateway`` wrapper.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from .rng import SeededRng


@dataclass(frozen=True)
class ServingLoadConfig:
    """Shape of one generated serving workload."""

    n_tenants: int = 100
    n_requests: int = 2000
    #: Zipf exponent of the tenant activity ranking (higher = more skew:
    #: tenant ranked ``r`` gets weight ``1 / (r+1)**s``).
    tenant_zipf_s: float = 1.2
    #: Zipf exponent of the request-key popularity ranking.
    key_zipf_s: float = 1.1
    random_seed: int = 13


@dataclass(frozen=True)
class SimulatedRequest:
    """One request of the generated workload."""

    route: str
    params: dict[str, Any]
    tenant: str


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalised rank weights ``1/(rank+1)**s`` for ``n`` items."""
    if n < 1:
        raise ValueError("n must be >= 1")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-float(s))
    return weights / weights.sum()


def generate_serving_workload(
    config: ServingLoadConfig,
    request_pool: Sequence[tuple[str, dict[str, Any]]],
) -> list[SimulatedRequest]:
    """Draw a deterministic request sequence from ``request_pool``.

    ``request_pool`` lists the distinct ``(route, params)`` keys the
    workload may issue, **ordered hottest first** — the zipfian key weights
    follow the pool order, and tenants ``tenant-000…`` are likewise ranked
    by activity.  Two calls with equal config and pool produce the same
    sequence.
    """
    if not request_pool:
        raise ValueError("request_pool must not be empty")
    rng = SeededRng(config.random_seed).child("serving-load")
    key_indices = rng.generator.choice(
        len(request_pool),
        size=config.n_requests,
        p=zipf_weights(len(request_pool), config.key_zipf_s),
    )
    tenant_indices = rng.generator.choice(
        config.n_tenants,
        size=config.n_requests,
        p=zipf_weights(config.n_tenants, config.tenant_zipf_s),
    )
    width = max(3, len(str(config.n_tenants - 1)))
    workload: list[SimulatedRequest] = []
    for key_index, tenant_index in zip(key_indices, tenant_indices):
        route, params = request_pool[int(key_index)]
        workload.append(
            SimulatedRequest(
                route=route,
                params=dict(params),
                tenant=f"tenant-{int(tenant_index):0{width}d}",
            )
        )
    return workload


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0 < q <= 1) of an ascending-sorted sequence."""
    if not sorted_values:
        raise ValueError("cannot take a percentile of no samples")
    index = max(0, math.ceil(q * len(sorted_values)) - 1)
    return float(sorted_values[index])


@dataclass
class LoadReport:
    """What one load run measured."""

    n_requests: int
    concurrency: int
    elapsed_s: float
    status_counts: dict[int, int]
    #: Per-request wall-clock latencies (seconds), ascending.
    latencies_s: list[float] = field(repr=False, default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.n_requests / self.elapsed_s if self.elapsed_s > 0 else float("inf")

    @property
    def p50_s(self) -> float:
        return percentile(self.latencies_s, 0.50)

    @property
    def p99_s(self) -> float:
        return percentile(self.latencies_s, 0.99)

    def ok_count(self) -> int:
        return sum(n for status, n in self.status_counts.items() if 200 <= status < 300)

    def throttled_count(self) -> int:
        return self.status_counts.get(429, 0)

    def summary(self) -> dict[str, float | int]:
        return {
            "requests": self.n_requests,
            "concurrency": self.concurrency,
            "elapsed_s": round(self.elapsed_s, 6),
            "throughput_rps": round(self.throughput_rps, 1),
            "p50_ms": round(self.p50_s * 1e3, 3),
            "p99_ms": round(self.p99_s * 1e3, 3),
            "ok": self.ok_count(),
            "throttled": self.throttled_count(),
        }


def run_serving_load(
    handler: Callable[[SimulatedRequest], Any],
    workload: Sequence[SimulatedRequest],
    concurrency: int = 8,
) -> LoadReport:
    """Replay ``workload`` through ``handler`` from ``concurrency`` client threads.

    Threads pull the next request off a shared cursor, so identical hot-key
    requests genuinely overlap in flight — the condition request coalescing
    exists for.  Each response must expose ``status`` (an int); exceptions
    are recorded as status 599.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    cursor_lock = threading.Lock()
    cursor = 0
    latencies: list[list[float]] = [[] for _ in range(concurrency)]
    statuses: list[dict[int, int]] = [{} for _ in range(concurrency)]

    def client(slot: int) -> None:
        nonlocal cursor
        while True:
            with cursor_lock:
                index = cursor
                if index >= len(workload):
                    return
                cursor = index + 1
            request = workload[index]
            started = time.perf_counter()
            try:
                response = handler(request)
                status = int(response.status)
            except Exception:
                status = 599
            latencies[slot].append(time.perf_counter() - started)
            statuses[slot][status] = statuses[slot].get(status, 0) + 1

    threads = [
        threading.Thread(target=client, args=(slot,), name=f"load-client-{slot}")
        for slot in range(concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    merged_statuses: dict[int, int] = {}
    for per_thread in statuses:
        for status, count in per_thread.items():
            merged_statuses[status] = merged_statuses.get(status, 0) + count
    all_latencies = sorted(latency for per_thread in latencies for latency in per_thread)
    return LoadReport(
        n_requests=len(workload),
        concurrency=concurrency,
        elapsed_s=elapsed,
        status_counts=merged_statuses,
        latencies_s=all_latencies,
    )
