"""Synthetic article corpus.

Generates article pages (title, by-line, body, outgoing references) whose
measurable properties depend on the publishing outlet's quality class:

* low-quality outlets produce click-baity titles, subjective bodies, few
  by-lines and almost no scientific references;
* high-quality outlets produce sober titles, evidence-oriented bodies, by-lines
  and several scientific references.

Every generated article is registered as an HTML page on the synthetic web
(:class:`~repro.web.sitestore.SiteStore`) so the scraper and the indicator
pipeline process it exactly like a crawled page.
"""

from __future__ import annotations

import html as html_module
from dataclasses import dataclass
from datetime import datetime

from ..models import Article, RatingClass
from ..web.references import SCIENTIFIC_DOMAINS
from ..web.sitestore import SiteStore
from .outlets import OutletProfile, OutletRegistry
from .rng import SeededRng
from .topics import TopicSpec, topic

_AUTHORS = (
    "Alex Morgan", "Jamie Chen", "Priya Natarajan", "Samuel Ortiz", "Elena Petrova",
    "Noah Williams", "Maria Rossi", "David Kim", "Fatima Hassan", "Lucas Meyer",
    "Ana Silva", "Tom Becker", "Grace O'Connor", "Yuki Tanaka", "Omar Farouk",
)

_CLICKBAIT_OPENERS = (
    "You won't believe what",
    "The shocking truth about",
    "Doctors hate this:",
    "This is why",
    "The real reason",
    "What they don't want you to know about",
)

_FACTUAL_TITLE_TEMPLATES = (
    "New study examines {kw1} and {kw2}",
    "Researchers report findings on {kw1} {kw2}",
    "{entity} releases data on {kw1} trends",
    "What the evidence says about {kw1} and {kw2}",
    "Scientists measure {kw1} effects in new {kw2} analysis",
)

_SENSATIONAL_TITLE_TEMPLATES = (
    "{opener} {kw1} and {kw2}!",
    "{opener} the {kw1} crisis",
    "SHOCKING: {kw1} {kw2} will change everything",
    "This one {kw1} trick about {kw2} is going viral",
    "{opener} {kw1}? Experts stunned",
)

_OBJECTIVE_SENTENCES = (
    "A peer-reviewed study published this week analysed {kw1} data from {n} participants.",
    "Researchers at {entity} measured {kw1} rates using a standardised methodology.",
    "The analysis reports a statistically significant association between {kw1} and {kw2}.",
    "According to the data, the observed {kw1} rate was {pct} percent over the study period.",
    "The authors caution that the findings on {kw2} require replication in larger cohorts.",
    "Experts interviewed for this article noted that the evidence on {kw1} remains preliminary.",
    "The report includes confidence intervals for every {kw2} estimate it presents.",
    "Officials at {entity} published the underlying {kw1} dataset alongside the report.",
)

_SUBJECTIVE_SENTENCES = (
    "This {kw1} situation is absolutely terrifying and nobody is talking about it.",
    "Honestly, the truth about {kw2} is being hidden from you.",
    "It is outrageous how the so-called experts keep getting {kw1} wrong.",
    "Everyone knows that {kw2} is a disaster waiting to happen.",
    "I think this {kw1} story proves the mainstream narrative is a complete lie.",
    "The shocking reality of {kw2} will leave you speechless.",
    "They claim {kw1} is under control, which is obviously ridiculous nonsense.",
    "This miracle {kw2} cure is something doctors simply refuse to discuss.",
)

_NEUTRAL_SENTENCES = (
    "The {kw1} developments continued throughout the week across several regions.",
    "Local authorities provided an update on the {kw2} response on {weekday}.",
    "Coverage of {kw1} has increased steadily since the beginning of the year.",
    "Readers have asked how {kw2} compares with previous years.",
    "The situation around {kw1} continues to evolve as new information arrives.",
)

_WEEKDAYS = ("Monday", "Tuesday", "Wednesday", "Thursday", "Friday")

_SCIENTIFIC_LINK_TARGETS = tuple(sorted(SCIENTIFIC_DOMAINS))


@dataclass(frozen=True)
class GeneratedArticle:
    """A synthetic article together with its ground-truth generation parameters."""

    article: Article
    html: str
    topic_key: str
    true_quality: float
    n_internal_links: int
    n_external_links: int
    n_scientific_links: int

    @property
    def url(self) -> str:
        return self.article.url

    @property
    def scientific_ratio(self) -> float:
        total = self.n_internal_links + self.n_external_links + self.n_scientific_links
        return self.n_scientific_links / total if total else 0.0


class ArticleGenerator:
    """Generates quality-dependent article pages onto a synthetic web."""

    def __init__(
        self,
        site_store: SiteStore,
        outlets: OutletRegistry,
        random_seed: int = 13,
    ) -> None:
        self.site_store = site_store
        self.outlets = outlets
        self.random_seed = random_seed

    # ----------------------------------------------------------------- public

    def generate(
        self,
        profile: OutletProfile,
        topic_key: str,
        published_at: datetime,
        sequence: int,
    ) -> GeneratedArticle:
        """Generate one article for ``profile`` on ``topic_key`` and register its page."""
        spec = topic(topic_key)
        rng = SeededRng(self.random_seed).child(profile.domain, topic_key, sequence)

        quality = self._true_quality(profile, rng)
        title = self._title(spec, quality, rng)
        author = self._author(quality, rng)
        paragraphs = self._paragraphs(spec, quality, rng)
        links = self._links(profile, quality, rng)
        url = self._url(profile, published_at, topic_key, sequence)

        page_html = self._render_html(title, author, published_at, paragraphs, links)
        self.site_store.register(url, page_html)

        article = Article(
            article_id=f"art-{profile.domain.split('.')[0]}-{topic_key}-{sequence:05d}",
            url=url,
            outlet_domain=profile.domain,
            title=title,
            published_at=published_at,
            text="\n\n".join(paragraphs),
            html=page_html,
            author=author,
            topics=(topic_key,),
        )
        internal, external, scientific = links
        return GeneratedArticle(
            article=article,
            html=page_html,
            topic_key=topic_key,
            true_quality=quality,
            n_internal_links=len(internal),
            n_external_links=len(external),
            n_scientific_links=len(scientific),
        )

    # ------------------------------------------------------------ components

    def _true_quality(self, profile: OutletProfile, rng: SeededRng) -> float:
        quality = profile.evidence_score + rng.normal(0.0, 0.08)
        return float(min(1.0, max(0.0, quality)))

    def _title(self, spec: TopicSpec, quality: float, rng: SeededRng) -> str:
        kw1, kw2 = rng.sample(spec.keywords, 2)
        entity = rng.choice(spec.entities) if spec.entities else "the research team"
        if rng.chance(1.0 - quality):
            template = rng.choice(_SENSATIONAL_TITLE_TEMPLATES)
            title = template.format(opener=rng.choice(_CLICKBAIT_OPENERS), kw1=kw1, kw2=kw2)
        else:
            template = rng.choice(_FACTUAL_TITLE_TEMPLATES)
            title = template.format(kw1=kw1, kw2=kw2, entity=entity)
        return title[0].upper() + title[1:]

    def _author(self, quality: float, rng: SeededRng) -> str | None:
        byline_probability = 0.35 + 0.6 * quality
        return rng.choice(_AUTHORS) if rng.chance(byline_probability) else None

    def _paragraphs(self, spec: TopicSpec, quality: float, rng: SeededRng) -> list[str]:
        n_paragraphs = rng.randint(3, 6)
        sentences_per_paragraph = rng.randint(3, 5)
        entity = rng.choice(spec.entities) if spec.entities else "the research institute"

        paragraphs: list[str] = []
        for _ in range(n_paragraphs):
            sentences: list[str] = []
            for _ in range(sentences_per_paragraph):
                roll = rng.uniform()
                if roll < quality * 0.75:
                    template = rng.choice(_OBJECTIVE_SENTENCES)
                elif roll < quality * 0.75 + (1.0 - quality) * 0.65:
                    template = rng.choice(_SUBJECTIVE_SENTENCES)
                else:
                    template = rng.choice(_NEUTRAL_SENTENCES)
                kw1, kw2 = rng.sample(spec.keywords, 2)
                sentences.append(
                    template.format(
                        kw1=kw1,
                        kw2=kw2,
                        entity=entity,
                        n=rng.randint(120, 9000),
                        pct=rng.randint(2, 85),
                        weekday=rng.choice(_WEEKDAYS),
                    )
                )
            paragraphs.append(" ".join(sentences))
        return paragraphs

    def _links(
        self, profile: OutletProfile, quality: float, rng: SeededRng
    ) -> tuple[list[str], list[str], list[str]]:
        """Internal, external and scientific link targets for one article."""
        internal = [
            f"https://{profile.domain}/related/story-{rng.randint(1000, 9999)}"
            for _ in range(rng.poisson(2.0))
        ]

        other_domains = [p.domain for p in self.outlets.profiles if p.domain != profile.domain]
        external = [
            f"https://{rng.choice(other_domains)}/coverage/item-{rng.randint(1000, 9999)}"
            for _ in range(rng.poisson(0.8 + 1.2 * quality))
        ] if other_domains else []

        # Evidence seeking: high-quality outlets cite several scientific sources,
        # low-quality outlets rarely cite any (the Figure 5-right contrast).
        scientific_rate = max(0.0, 4.5 * quality - 0.9)
        n_scientific = rng.poisson(scientific_rate)
        if quality < 0.4 and rng.chance(0.75):
            n_scientific = 0
        scientific = [
            f"https://{rng.choice(_SCIENTIFIC_LINK_TARGETS)}/paper/{rng.randint(10000, 99999)}"
            for _ in range(n_scientific)
        ]
        return internal, external, scientific

    def _url(
        self, profile: OutletProfile, published_at: datetime, topic_key: str, sequence: int
    ) -> str:
        return (
            f"https://{profile.domain}/{published_at.year}/{published_at.month:02d}/"
            f"{published_at.day:02d}/{topic_key}-story-{sequence:05d}"
        )

    # --------------------------------------------------------------- rendering

    def _render_html(
        self,
        title: str,
        author: str | None,
        published_at: datetime,
        paragraphs: list[str],
        links: tuple[list[str], list[str], list[str]],
    ) -> str:
        internal, external, scientific = links
        escaped_title = html_module.escape(title)

        head_parts = [
            f"<title>{escaped_title}</title>",
            f'<meta property="article:published_time" content="{published_at.isoformat()}">',
        ]
        if author:
            head_parts.append(f'<meta name="author" content="{html_module.escape(author)}">')

        body_parts = [f"<h1>{escaped_title}</h1>"]
        if author:
            body_parts.append(f'<p class="byline">By {html_module.escape(author)}</p>')

        all_links = (
            [(href, "internal coverage") for href in internal]
            + [(href, "external report") for href in external]
            + [(href, "published study") for href in scientific]
        )
        link_cursor = 0
        for index, paragraph in enumerate(paragraphs):
            text = html_module.escape(paragraph)
            # Interleave reference anchors into the article body.
            anchors = ""
            while link_cursor < len(all_links) and link_cursor <= index * 2 + 1:
                href, label = all_links[link_cursor]
                anchors += f' <a href="{href}">{label}</a>.'
                link_cursor += 1
            body_parts.append(f"<p>{text}{anchors}</p>")
        # Any remaining links go into a "see also" section.
        if link_cursor < len(all_links):
            see_also = "".join(
                f'<li><a href="{href}">{label}</a></li>'
                for href, label in all_links[link_cursor:]
            )
            body_parts.append(f"<h3>See also</h3><ul>{see_also}</ul>")

        return (
            "<html><head>" + "".join(head_parts) + "</head><body>"
            + "".join(body_parts)
            + "</body></html>"
        )
