"""Topic vocabularies used by the synthetic corpus.

Each topic carries the keyword vocabulary the article generator draws from, so
articles about different topics are lexically separable — which is what the
probabilistic hierarchical topic clustering of the analytics layer needs to
recover generic and specific topics ("Health" vs "COVID-19").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ValidationError


@dataclass(frozen=True)
class TopicSpec:
    """A topic with its parent category and characteristic vocabulary."""

    key: str
    label: str
    category: str
    keywords: tuple[str, ...]
    entities: tuple[str, ...] = ()


TOPICS: dict[str, TopicSpec] = {
    "covid19": TopicSpec(
        key="covid19",
        label="COVID-19",
        category="health",
        keywords=(
            "coronavirus", "covid", "pandemic", "outbreak", "virus", "infection",
            "epidemic", "quarantine", "lockdown", "transmission", "symptoms",
            "vaccine", "immunity", "respiratory", "wuhan", "cases", "testing",
            "epidemiologist", "incubation", "mask", "distancing", "hospitalization",
        ),
        entities=("World Health Organization", "CDC", "Johns Hopkins", "Dr. Li", "Imperial College"),
    ),
    "influenza": TopicSpec(
        key="influenza",
        label="Seasonal influenza",
        category="health",
        keywords=(
            "influenza", "flu", "seasonal", "vaccination", "strain", "fever",
            "antiviral", "immunization", "outbreak", "virus",
        ),
        entities=("CDC", "WHO"),
    ),
    "nutrition": TopicSpec(
        key="nutrition",
        label="Nutrition",
        category="health",
        keywords=(
            "diet", "nutrition", "vitamin", "supplement", "protein", "sugar",
            "obesity", "calories", "metabolism", "superfood", "antioxidants",
            "cholesterol", "fasting",
        ),
        entities=("Harvard School of Public Health", "Mayo Clinic"),
    ),
    "climate": TopicSpec(
        key="climate",
        label="Climate change",
        category="environment",
        keywords=(
            "climate", "warming", "emissions", "carbon", "temperature", "glaciers",
            "renewable", "fossil", "drought", "wildfire", "sea-level", "greenhouse",
        ),
        entities=("IPCC", "NASA", "NOAA"),
    ),
    "space": TopicSpec(
        key="space",
        label="Space exploration",
        category="science",
        keywords=(
            "spacecraft", "orbit", "rover", "telescope", "astronomers", "galaxy",
            "launch", "asteroid", "mission", "satellite", "planet",
        ),
        entities=("NASA", "ESA", "SpaceX"),
    ),
    "genetics": TopicSpec(
        key="genetics",
        label="Genetics",
        category="science",
        keywords=(
            "gene", "genome", "dna", "crispr", "mutation", "sequencing",
            "hereditary", "chromosome", "protein", "editing", "therapy",
        ),
        entities=("Broad Institute", "NIH"),
    ),
}


def topic(key: str) -> TopicSpec:
    """Return the topic spec of ``key``, raising on unknown topics."""
    try:
        return TOPICS[key]
    except KeyError:
        raise ValidationError(f"unknown topic: {key!r}") from None


def topic_keys() -> list[str]:
    """All available topic keys, sorted."""
    return sorted(TOPICS)
