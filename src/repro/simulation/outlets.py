"""The outlet registry: 45 synthetic news outlets with quality ratings.

The paper's COVID-19 use case relies on "a shortlist, published by the
American Council on Science and Health, that contains 45 mainstream news
outlets accompanied by their quality ranking".  The real infographic ranks
outlets on two axes (evidence-based reporting and compellingness); here we
generate 45 synthetic outlets spread over the five rating classes with the
same structure, plus the social handles and follower counts the streaming
layer needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import OutletNotFound
from ..models import Outlet, RatingClass
from ..social.accounts import AccountRegistry, SocialAccount
from .rng import SeededRng

#: Number of outlets in the ACSH shortlist used by §4.
DEFAULT_OUTLET_COUNT = 45

#: How the 45 outlets are spread over the rating classes (sums to 45).
DEFAULT_CLASS_DISTRIBUTION: dict[RatingClass, int] = {
    RatingClass.VERY_HIGH: 8,
    RatingClass.HIGH: 10,
    RatingClass.MIXED: 9,
    RatingClass.LOW: 10,
    RatingClass.VERY_LOW: 8,
}

_NAME_PREFIXES = (
    "Daily", "Global", "National", "Evening", "Morning", "Metro", "Capital",
    "Pacific", "Atlantic", "Northern", "Southern", "Central", "Coastal",
    "United", "First", "Modern", "Open", "Civic", "Public", "Plain",
)
_NAME_SUFFIXES = (
    "Science", "Health", "Tribune", "Chronicle", "Observer", "Courier",
    "Gazette", "Herald", "Journal", "Monitor", "Post", "Record", "Review",
    "Standard", "Times", "Wire", "Dispatch", "Report", "Bulletin", "Ledger",
)

_CLASS_SCORE_RANGES: dict[RatingClass, tuple[float, float]] = {
    RatingClass.VERY_LOW: (0.02, 0.18),
    RatingClass.LOW: (0.20, 0.38),
    RatingClass.MIXED: (0.42, 0.58),
    RatingClass.HIGH: (0.62, 0.78),
    RatingClass.VERY_HIGH: (0.82, 0.98),
}


@dataclass(frozen=True)
class OutletProfile:
    """An outlet plus the behavioural parameters the generators use."""

    outlet: Outlet
    twitter_handle: str
    followers: int
    #: Average number of articles the newsroom publishes per day (all topics).
    daily_articles: float

    @property
    def domain(self) -> str:
        return self.outlet.domain

    @property
    def rating_class(self) -> RatingClass:
        return self.outlet.rating_class

    @property
    def evidence_score(self) -> float:
        return self.outlet.evidence_score


def build_default_outlets(
    n_outlets: int = DEFAULT_OUTLET_COUNT,
    random_seed: int = 13,
    class_distribution: dict[RatingClass, int] | None = None,
) -> list[OutletProfile]:
    """Generate ``n_outlets`` synthetic outlet profiles.

    The class distribution defaults to the 45-outlet split above and is scaled
    proportionally when a different ``n_outlets`` is requested.
    """
    rng = SeededRng(random_seed).child("outlets")
    distribution = dict(class_distribution or DEFAULT_CLASS_DISTRIBUTION)
    total = sum(distribution.values())

    # Scale the distribution to the requested outlet count.
    scaled: dict[RatingClass, int] = {
        cls: max(1, round(count * n_outlets / total)) for cls, count in distribution.items()
    }
    while sum(scaled.values()) > n_outlets:
        largest = max(scaled, key=lambda c: scaled[c])
        scaled[largest] -= 1
    while sum(scaled.values()) < n_outlets:
        smallest = min(scaled, key=lambda c: scaled[c])
        scaled[smallest] += 1

    profiles: list[OutletProfile] = []
    used_names: set[str] = set()
    index = 0
    for rating_class in (
        RatingClass.VERY_HIGH,
        RatingClass.HIGH,
        RatingClass.MIXED,
        RatingClass.LOW,
        RatingClass.VERY_LOW,
    ):
        for _ in range(scaled.get(rating_class, 0)):
            profiles.append(_build_profile(index, rating_class, rng, used_names))
            index += 1
    return profiles


def _build_profile(
    index: int, rating_class: RatingClass, rng: SeededRng, used_names: set[str]
) -> OutletProfile:
    child = rng.child("outlet", index)
    while True:
        name = f"{child.choice(_NAME_PREFIXES)} {child.choice(_NAME_SUFFIXES)}"
        if name not in used_names:
            used_names.add(name)
            break
    domain = name.lower().replace(" ", "") + ".example.com"
    low, high = _CLASS_SCORE_RANGES[rating_class]
    evidence = child.uniform(low, high)
    compelling = min(1.0, max(0.0, child.normal(0.6, 0.15)))
    handle = "@" + name.lower().replace(" ", "_")

    # Low-quality outlets in the synthetic population skew towards larger
    # follower counts and higher publication volumes (they chase engagement).
    if rating_class.is_low_quality:
        followers = int(child.lognormal(12.2, 0.6))
        daily_articles = child.uniform(6.0, 10.0)
    elif rating_class.is_high_quality:
        followers = int(child.lognormal(11.6, 0.5))
        daily_articles = child.uniform(3.0, 6.0)
    else:
        followers = int(child.lognormal(11.9, 0.5))
        daily_articles = child.uniform(4.0, 8.0)

    outlet = Outlet(
        domain=domain,
        name=name,
        rating_class=rating_class,
        evidence_score=round(evidence, 3),
        compelling_score=round(compelling, 3),
        social_handles=(handle,),
    )
    return OutletProfile(
        outlet=outlet,
        twitter_handle=handle,
        followers=followers,
        daily_articles=daily_articles,
    )


class OutletRegistry:
    """Lookup structure over outlet profiles (by domain, handle and rating class)."""

    def __init__(self, profiles: Iterable[OutletProfile]) -> None:
        self.profiles = sorted(profiles, key=lambda p: p.domain)
        self._by_domain = {profile.domain: profile for profile in self.profiles}
        self._by_handle = {profile.twitter_handle.lower(): profile for profile in self.profiles}

    @classmethod
    def default(cls, n_outlets: int = DEFAULT_OUTLET_COUNT, random_seed: int = 13) -> "OutletRegistry":
        return cls(build_default_outlets(n_outlets=n_outlets, random_seed=random_seed))

    def __len__(self) -> int:
        return len(self.profiles)

    def __iter__(self) -> Iterator[OutletProfile]:
        return iter(self.profiles)

    def get(self, domain: str) -> OutletProfile:
        try:
            return self._by_domain[domain]
        except KeyError:
            raise OutletNotFound(f"no outlet with domain {domain!r}") from None

    def has(self, domain: str) -> bool:
        return domain in self._by_domain

    def by_handle(self, handle: str) -> OutletProfile | None:
        return self._by_handle.get(handle.lower())

    def by_rating_class(self, rating_class: RatingClass) -> list[OutletProfile]:
        return [p for p in self.profiles if p.rating_class is rating_class]

    def low_quality(self) -> list[OutletProfile]:
        """Outlets in the low half of the ranking (very-low + low)."""
        return [p for p in self.profiles if p.rating_class.is_low_quality]

    def high_quality(self) -> list[OutletProfile]:
        """Outlets in the high half of the ranking (high + very-high)."""
        return [p for p in self.profiles if p.rating_class.is_high_quality]

    def outlets(self) -> list[Outlet]:
        return [p.outlet for p in self.profiles]

    def account_registry(self) -> AccountRegistry:
        """Build the streaming-layer account registry for these outlets."""
        registry = AccountRegistry()
        for profile in self.profiles:
            registry.add(
                SocialAccount(
                    handle=profile.twitter_handle,
                    platform="twitter",
                    outlet_domain=profile.domain,
                    followers=profile.followers,
                    verified=profile.rating_class.is_high_quality,
                )
            )
        return registry

    def rating_of(self, domain: str) -> RatingClass:
        return self.get(domain).rating_class
