"""Deterministic randomness helpers for the scenario generators."""

from __future__ import annotations

import hashlib
from typing import Sequence, TypeVar

import numpy as np

T = TypeVar("T")


def derive_seed(base_seed: int, *parts: str | int) -> int:
    """Derive a stable 63-bit seed from a base seed and any number of labels.

    Lets every outlet/day/article get its own independent but reproducible
    random stream regardless of generation order.
    """
    text = ":".join([str(base_seed), *map(str, parts)])
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") >> 1


class SeededRng:
    """A thin convenience wrapper over :class:`numpy.random.Generator`."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.generator = np.random.default_rng(seed)

    def child(self, *parts: str | int) -> "SeededRng":
        """Independent generator derived from this seed and the given labels."""
        return SeededRng(derive_seed(self.seed, *parts))

    # ------------------------------------------------------------- sampling

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self.generator.uniform(low, high))

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        return float(self.generator.normal(mean, std))

    def lognormal(self, mean: float, sigma: float) -> float:
        return float(self.generator.lognormal(mean, sigma))

    def beta(self, a: float, b: float) -> float:
        return float(self.generator.beta(a, b))

    def poisson(self, lam: float) -> int:
        return int(self.generator.poisson(max(lam, 0.0)))

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` (inclusive)."""
        return int(self.generator.integers(low, high + 1))

    def chance(self, probability: float) -> bool:
        """Bernoulli draw."""
        return bool(self.generator.random() < probability)

    def choice(self, items: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[int(self.generator.integers(0, len(items)))]

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct items (or fewer if the sequence is shorter)."""
        k = min(k, len(items))
        if k == 0:
            return []
        indices = self.generator.choice(len(items), size=k, replace=False)
        return [items[int(i)] for i in indices]

    def shuffled(self, items: Sequence[T]) -> list[T]:
        """Return a shuffled copy of ``items``."""
        out = list(items)
        self.generator.shuffle(out)
        return out
