"""The COVID-19 scenario of §4.

Generates the 60-day data segment (2020-01-15 → 2020-03-15) over the 45-outlet
shortlist: each outlet publishes a quality-dependent mix of COVID-19 and
other-topic articles every day, and every COVID-19 article triggers social
postings and reactions.  The generator encodes only the qualitative behaviour
the paper describes —

* early on, low- and high-quality outlets devote a similar share of their daily
  output to the topic; after roughly a month, low-quality outlets dedicate a
  much larger share (Figure 4);
* low-quality articles attract a wider, larger distribution of social
  reactions (Figure 5 left);
* high-quality articles cite scientific sources far more often (Figure 5
  right, produced by the corpus generator's link model);

— and the platform then *measures* those properties through the full
scrape → indicator → insight pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from datetime import datetime, timedelta

from .._time import COVID_WINDOW_END, COVID_WINDOW_START, iter_days
from ..models import Reaction, SocialPost
from ..web.sitestore import SiteStore
from .corpus import ArticleGenerator, GeneratedArticle
from .outlets import DEFAULT_OUTLET_COUNT, OutletProfile, OutletRegistry
from .rng import SeededRng
from .scenario import ScenarioData
from .social_activity import SocialActivityConfig, SocialActivityGenerator
from .topics import topic_keys

#: Topics the newsrooms cover besides the topic of interest.
_BACKGROUND_TOPICS = ("influenza", "nutrition", "climate", "space", "genetics")


@dataclass(frozen=True)
class CovidScenarioConfig:
    """Parameters of the COVID-19 scenario generator."""

    n_outlets: int = DEFAULT_OUTLET_COUNT
    window_start: datetime = COVID_WINDOW_START
    window_end: datetime = COVID_WINDOW_END
    random_seed: int = 13
    #: Scales every outlet's daily article volume (1.0 = full newsroom output).
    volume_scale: float = 0.25
    #: Day (relative to the window start) at which public attention is at its
    #: inflection point; the paper observes the divergence "by the end of the
    #: first month".
    attention_midpoint_day: float = 32.0
    #: Steepness of the attention ramp.
    attention_steepness: float = 0.16
    #: COVID share of daily output at full attention, per quality half.
    low_quality_peak_share: float = 0.72
    high_quality_peak_share: float = 0.38
    #: COVID share of daily output before the topic takes off.
    baseline_share: float = 0.12
    #: Whether to also generate social activity for non-COVID articles.
    social_for_background: bool = False
    social: SocialActivityConfig = field(default_factory=SocialActivityConfig)

    def n_days(self) -> int:
        return (self.window_end - self.window_start).days

    @classmethod
    def small(cls, n_outlets: int = 6, n_days: int = 20, random_seed: int = 13) -> "CovidScenarioConfig":
        """A scaled-down configuration for unit tests and quick examples."""
        return cls(
            n_outlets=n_outlets,
            window_start=COVID_WINDOW_START,
            window_end=COVID_WINDOW_START + timedelta(days=n_days),
            random_seed=random_seed,
            volume_scale=0.35,
            attention_midpoint_day=min(32.0, n_days * 0.55),
        )


def attention_curve(day_index: float, config: CovidScenarioConfig) -> float:
    """Public attention to the topic on a given day, in ``[0, 1]`` (logistic ramp)."""
    exponent = -config.attention_steepness * (day_index - config.attention_midpoint_day)
    return 1.0 / (1.0 + math.exp(exponent))


def covid_share(day_index: float, profile: OutletProfile, config: CovidScenarioConfig) -> float:
    """Expected share of an outlet's daily output devoted to COVID-19."""
    attention = attention_curve(day_index, config)
    if profile.rating_class.is_low_quality:
        peak = config.low_quality_peak_share
    elif profile.rating_class.is_high_quality:
        peak = config.high_quality_peak_share
    else:
        peak = 0.5 * (config.low_quality_peak_share + config.high_quality_peak_share)
    return config.baseline_share + (peak - config.baseline_share) * attention


def generate_covid_scenario(config: CovidScenarioConfig | None = None) -> ScenarioData:
    """Generate the full COVID-19 scenario described by ``config``."""
    config = config or CovidScenarioConfig()
    rng = SeededRng(config.random_seed).child("covid-scenario")

    outlets = OutletRegistry.default(n_outlets=config.n_outlets, random_seed=config.random_seed)
    site_store = SiteStore()
    article_generator = ArticleGenerator(site_store, outlets, random_seed=config.random_seed)
    social_generator = SocialActivityGenerator(config.social, random_seed=config.random_seed)

    articles: list[GeneratedArticle] = []
    posts: list[SocialPost] = []
    reactions: list[Reaction] = []
    sequence = 0

    for profile in outlets:
        outlet_rng = rng.child(profile.domain)
        for day_index, day in enumerate(iter_days(config.window_start, config.window_end)):
            day_rng = outlet_rng.child(day.isoformat())
            expected_articles = profile.daily_articles * config.volume_scale
            n_articles = day_rng.poisson(expected_articles)
            if n_articles == 0:
                continue

            share = covid_share(day_index, profile, config)
            for _ in range(n_articles):
                is_covid = day_rng.chance(share)
                topic_key = "covid19" if is_covid else day_rng.choice(_BACKGROUND_TOPICS)
                published_at = datetime(day.year, day.month, day.day) + timedelta(
                    hours=day_rng.uniform(6.0, 22.0)
                )
                generated = article_generator.generate(profile, topic_key, published_at, sequence)
                sequence += 1
                articles.append(generated)

                if is_covid or config.social_for_background:
                    article_posts, article_reactions = social_generator.generate(generated, profile)
                    posts.extend(article_posts)
                    reactions.extend(article_reactions)
                else:
                    # Outlet accounts announce every article; background
                    # articles simply attract no user discussion.
                    posts.append(social_generator.announce(generated, profile))

    return ScenarioData(
        outlets=outlets,
        site_store=site_store,
        articles=articles,
        posts=posts,
        reactions=reactions,
        window_start=config.window_start,
        window_end=config.window_end,
        topic_of_interest="covid19",
        metadata={
            "config": {
                "n_outlets": config.n_outlets,
                "volume_scale": config.volume_scale,
                "random_seed": config.random_seed,
                "days": config.n_days(),
            },
            "background_topics": list(_BACKGROUND_TOPICS),
            "available_topics": topic_keys(),
        },
    )
