"""Synthetic data generation.

The live platform consumes the Datastreamer feed, crawls outlet pages and uses
the ACSH outlet ranking; none of those are available offline.  This package
generates a deterministic synthetic equivalent: a registry of 45 outlets with
quality ratings, article pages on a synthetic web, and social-media postings
and reactions over the paper's 60-day COVID-19 window — with the
quality-dependent behaviour (newsroom activity, evidence seeking, social
engagement) the paper's Figures 4 and 5 measure.
"""

from .rng import SeededRng
from .topics import TOPICS, TopicSpec, topic
from .outlets import OutletProfile, OutletRegistry, build_default_outlets
from .corpus import ArticleGenerator, GeneratedArticle
from .social_activity import SocialActivityGenerator
from .scenario import ScenarioData
from .covid import CovidScenarioConfig, generate_covid_scenario
from .load import (
    LoadReport,
    ServingLoadConfig,
    SimulatedRequest,
    generate_serving_workload,
    run_serving_load,
    zipf_weights,
)

__all__ = [
    "SeededRng",
    "TOPICS",
    "TopicSpec",
    "topic",
    "OutletProfile",
    "OutletRegistry",
    "build_default_outlets",
    "ArticleGenerator",
    "GeneratedArticle",
    "SocialActivityGenerator",
    "ScenarioData",
    "CovidScenarioConfig",
    "generate_covid_scenario",
    "LoadReport",
    "ServingLoadConfig",
    "SimulatedRequest",
    "generate_serving_workload",
    "run_serving_load",
    "zipf_weights",
]
