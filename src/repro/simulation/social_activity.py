"""Synthetic social-media activity around articles.

For every article the generator produces the outlet's own posting plus a
number of user postings and their reactions.  The volume and the stance mix
depend on the publishing outlet's quality:

* articles from low-quality outlets attract a **wider, heavier-tailed**
  distribution of reactions (the Figure 5-left contrast) and a larger share of
  questioning/denying posts;
* articles from high-quality outlets attract fewer reactions and mostly
  supportive or neutral posts.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta

from ..models import Reaction, ReactionKind, SocialPost
from .corpus import GeneratedArticle
from .outlets import OutletProfile
from .rng import SeededRng

_SUPPORT_TEMPLATES = (
    "Important read on {kw}: accurate and informative reporting.",
    "Great article, this is exactly right about {kw}. Sharing.",
    "Finally some correct information about {kw}. Must-read.",
    "Helpful and informative piece about {kw}, thanks for sharing.",
)

_COMMENT_TEMPLATES = (
    "Latest coverage on {kw}.",
    "New article about {kw} from this outlet.",
    "Reading about {kw} today.",
    "More news on {kw}.",
)

_QUESTION_TEMPLATES = (
    "Is this really true? What are the sources on {kw}?",
    "Where is the evidence for these {kw} claims?",
    "Not sure about this, seems unverified. Anyone have proof about {kw}?",
    "Really? This {kw} story sounds questionable to me.",
)

_DENY_TEMPLATES = (
    "This is fake news about {kw}, completely debunked nonsense.",
    "Wrong and misleading. The {kw} claims here are false.",
    "Do not share this, it's misinformation about {kw}.",
    "Total hoax. This {kw} article is a lie.",
)

_USER_HANDLES = tuple(f"@user_{i:04d}" for i in range(400))


@dataclass(frozen=True)
class SocialActivityConfig:
    """Knobs of the social-activity generator."""

    #: Log-normal parameters of the per-article reaction count, by quality half.
    low_quality_log_mean: float = 3.3
    low_quality_log_sigma: float = 1.1
    high_quality_log_mean: float = 2.2
    high_quality_log_sigma: float = 0.7
    #: Hard cap on reactions per article (keeps extreme tails bounded).
    max_reactions_per_article: int = 2000
    #: Mean number of user postings (besides the outlet's own posting).
    user_posts_mean: float = 2.5


class SocialActivityGenerator:
    """Generates posts and reactions for generated articles."""

    def __init__(self, config: SocialActivityConfig | None = None, random_seed: int = 13) -> None:
        self.config = config or SocialActivityConfig()
        self.random_seed = random_seed

    def generate(
        self, generated: GeneratedArticle, profile: OutletProfile
    ) -> tuple[list[SocialPost], list[Reaction]]:
        """Generate the social activity around one article."""
        rng = SeededRng(self.random_seed).child("social", generated.article.article_id)
        article = generated.article
        quality = generated.true_quality

        posts = self._posts(article.article_id, article.url, article.published_at,
                            generated.topic_key, profile, quality, rng)
        reactions = self._reactions(article.article_id, posts, quality, rng)
        return posts, reactions

    def announce(self, generated: GeneratedArticle, profile: OutletProfile) -> SocialPost:
        """Only the outlet's own announcement posting (no user activity).

        Outlet accounts post every article they publish; this is how the
        streaming pipeline learns about articles that never attract user
        discussion (the background topics of the scenario).
        """
        rng = SeededRng(self.random_seed).child("announce", generated.article.article_id)
        article = generated.article
        return SocialPost(
            post_id=f"post-{article.article_id}-outlet",
            platform="twitter",
            account=profile.twitter_handle,
            article_url=article.url,
            text=f"New on {profile.outlet.name}: coverage of {generated.topic_key}.",
            created_at=article.published_at + timedelta(minutes=rng.randint(1, 45)),
            followers=profile.followers,
        )

    # -------------------------------------------------------------- postings

    def _stance_template(self, quality: float, rng: SeededRng) -> str:
        """Pick a post template; low-quality articles draw more scepticism."""
        roll = rng.uniform()
        question_or_deny = 0.45 - 0.30 * quality   # 0.45 at q=0 .. 0.15 at q=1
        support = 0.20 + 0.30 * quality            # 0.20 at q=0 .. 0.50 at q=1
        if roll < question_or_deny / 2:
            return rng.choice(_DENY_TEMPLATES)
        if roll < question_or_deny:
            return rng.choice(_QUESTION_TEMPLATES)
        if roll < question_or_deny + support:
            return rng.choice(_SUPPORT_TEMPLATES)
        return rng.choice(_COMMENT_TEMPLATES)

    def _posts(
        self,
        article_id: str,
        article_url: str,
        published_at: datetime,
        topic_key: str,
        profile: OutletProfile,
        quality: float,
        rng: SeededRng,
    ) -> list[SocialPost]:
        posts: list[SocialPost] = []

        # The outlet's own announcement posting (this is what the Datastreamer
        # feed of outlet accounts delivers first).
        outlet_post = SocialPost(
            post_id=f"post-{article_id}-outlet",
            platform="twitter",
            account=profile.twitter_handle,
            article_url=article_url,
            text=f"New on {profile.outlet.name}: coverage of {topic_key}.",
            created_at=published_at + timedelta(minutes=rng.randint(1, 45)),
            followers=profile.followers,
        )
        posts.append(outlet_post)

        n_user_posts = rng.poisson(self.config.user_posts_mean)
        for index in range(n_user_posts):
            template = self._stance_template(quality, rng)
            posts.append(
                SocialPost(
                    post_id=f"post-{article_id}-user-{index:03d}",
                    platform="twitter",
                    account=rng.choice(_USER_HANDLES),
                    article_url=article_url,
                    text=template.format(kw=topic_key),
                    created_at=outlet_post.created_at + timedelta(hours=rng.uniform(0.2, 30.0)),
                    followers=int(rng.lognormal(6.0, 1.4)),
                    reply_to=outlet_post.post_id if rng.chance(0.4) else None,
                )
            )
        return posts

    # -------------------------------------------------------------- reactions

    def _reaction_count(self, quality: float, rng: SeededRng) -> int:
        cfg = self.config
        if quality < 0.5:
            count = rng.lognormal(cfg.low_quality_log_mean, cfg.low_quality_log_sigma)
        else:
            count = rng.lognormal(cfg.high_quality_log_mean, cfg.high_quality_log_sigma)
        return int(min(cfg.max_reactions_per_article, round(count)))

    def _reactions(
        self,
        article_id: str,
        posts: list[SocialPost],
        quality: float,
        rng: SeededRng,
    ) -> list[Reaction]:
        total = self._reaction_count(quality, rng)
        reactions: list[Reaction] = []
        if not posts or total == 0:
            return reactions

        kinds = (ReactionKind.LIKE, ReactionKind.SHARE, ReactionKind.REPLY, ReactionKind.QUOTE)
        weights = (0.55, 0.25, 0.12, 0.08)
        for index in range(total):
            roll = rng.uniform()
            cumulative = 0.0
            kind = kinds[0]
            for candidate, weight in zip(kinds, weights):
                cumulative += weight
                if roll < cumulative:
                    kind = candidate
                    break
            target = posts[0] if rng.chance(0.7) else rng.choice(posts)
            text = ""
            if kind in (ReactionKind.REPLY, ReactionKind.QUOTE):
                text = self._stance_template(quality, rng).format(kw="this story")
            reactions.append(
                Reaction(
                    reaction_id=f"react-{article_id}-{index:05d}",
                    post_id=target.post_id,
                    kind=kind,
                    created_at=target.created_at + timedelta(hours=rng.uniform(0.05, 48.0)),
                    account=rng.choice(_USER_HANDLES),
                    text=text,
                )
            )
        return reactions
