"""Batch-compute substrate.

A miniature Spark: partitioned datasets with lazy, lineage-tracked
transformations (map/filter/flatMap, key-based shuffles, joins), executed by a
thread-pool executor, plus a job tracker used by the platform's daily
migration and periodic training jobs.
"""

from .executor import LocalExecutor, TaskMetrics
from .dataset import Dataset
from .shuffle import hash_partition
from .jobs import JobResult, JobTracker

__all__ = [
    "LocalExecutor",
    "TaskMetrics",
    "Dataset",
    "hash_partition",
    "JobResult",
    "JobTracker",
]
