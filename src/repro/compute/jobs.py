"""Named analytics jobs with timing and history.

The platform schedules two recurring jobs over the warehouse — the daily
migration and the periodic model training — plus ad-hoc analytics.  The
:class:`JobTracker` runs them, times them and keeps a history for monitoring.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Callable

from ..errors import ComputeError


@dataclass(frozen=True)
class JobResult:
    """Outcome of one job run."""

    name: str
    started_at: datetime
    elapsed_seconds: float
    succeeded: bool
    result: Any = None
    error: str | None = None


@dataclass
class JobTracker:
    """Registry and runner of named jobs."""

    history: list[JobResult] = field(default_factory=list)
    _jobs: dict[str, Callable[..., Any]] = field(default_factory=dict)

    def register(self, name: str, fn: Callable[..., Any]) -> None:
        """Register a job under ``name`` (replacing any previous definition)."""
        if not name:
            raise ComputeError("job name must be non-empty")
        self._jobs[name] = fn

    def job_names(self) -> list[str]:
        return sorted(self._jobs)

    def run(self, name: str, *args: Any, **kwargs: Any) -> JobResult:
        """Run a registered job, capturing its result or error."""
        if name not in self._jobs:
            raise ComputeError(f"no job registered under {name!r}")
        started_at = datetime.utcnow()
        start = time.perf_counter()
        try:
            result = self._jobs[name](*args, **kwargs)
            outcome = JobResult(
                name=name,
                started_at=started_at,
                elapsed_seconds=time.perf_counter() - start,
                succeeded=True,
                result=result,
            )
        except Exception as exc:  # jobs are monitored, not crashed on
            outcome = JobResult(
                name=name,
                started_at=started_at,
                elapsed_seconds=time.perf_counter() - start,
                succeeded=False,
                error=f"{type(exc).__name__}: {exc}",
            )
        self.history.append(outcome)
        return outcome

    def last_result(self, name: str) -> JobResult | None:
        """Most recent run of ``name`` (``None`` when it never ran)."""
        for result in reversed(self.history):
            if result.name == name:
                return result
        return None

    def success_rate(self, name: str | None = None) -> float:
        """Fraction of successful runs (of one job, or overall)."""
        runs = [r for r in self.history if name is None or r.name == name]
        if not runs:
            return 1.0
        return sum(1 for r in runs if r.succeeded) / len(runs)
