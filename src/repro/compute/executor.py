"""Parallel execution of per-partition tasks."""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

from ..errors import ComputeError

T = TypeVar("T")
R = TypeVar("R")


@dataclass
class TaskMetrics:
    """Execution metrics accumulated by an executor."""

    tasks_run: int = 0
    partitions_processed: int = 0
    total_task_seconds: float = 0.0
    stage_descriptions: list[str] = field(default_factory=list)

    def record(self, n_partitions: int, elapsed: float, description: str) -> None:
        self.tasks_run += 1
        self.partitions_processed += n_partitions
        self.total_task_seconds += elapsed
        self.stage_descriptions.append(description)


class LocalExecutor:
    """Runs one task per partition on a persistent thread pool.

    The pool is created lazily on the first parallel stage and reused for the
    executor's whole lifetime, so multi-stage ``Dataset`` lineages do not pay
    thread-pool construction/teardown on every stage.  ``max_workers=1``
    degenerates to sequential execution, which is handy for debugging and for
    deterministic benchmarks.
    """

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ComputeError("max_workers must be >= 1")
        self.max_workers = max_workers
        self.metrics = TaskMetrics()
        self._pool: ThreadPoolExecutor | None = None

    def _get_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-executor"
            )
        return self._pool

    def run(
        self,
        partitions: Sequence[list[T]],
        task: Callable[[list[T]], list[R]],
        description: str = "stage",
    ) -> list[list[R]]:
        """Apply ``task`` to every partition, preserving partition order."""
        start = time.perf_counter()
        if not partitions:
            results: list[list[R]] = []
        elif self.max_workers == 1 or len(partitions) == 1:
            results = [task(list(partition)) for partition in partitions]
        else:
            results = list(self._get_pool().map(lambda p: task(list(p)), partitions))
        elapsed = time.perf_counter() - start
        self.metrics.record(len(partitions), elapsed, description)
        return results

    def shutdown(self, wait: bool = True) -> None:
        """Tear down the worker pool (it is recreated on the next stage)."""
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
            self._pool = None

    def __enter__(self) -> "LocalExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __del__(self) -> None:
        # Datasets often create executors implicitly; wind the worker threads
        # down when the executor is garbage-collected so long-lived processes
        # do not leak a pool per dataset.
        try:
            self.shutdown(wait=False)
        except Exception:  # pragma: no cover - interpreter teardown
            pass
