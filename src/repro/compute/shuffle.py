"""Shuffle: repartitioning of keyed records by key hash."""

from __future__ import annotations

import hashlib
from typing import Hashable, Iterable, Sequence, TypeVar

from ..errors import ComputeError

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


def canonical_key(key: Hashable) -> Hashable:
    """Collapse equal-but-differently-typed keys onto one canonical form.

    Python's numeric tower makes ``1 == 1.0 == True``, but their ``repr``
    differs, so hashing the repr directly would scatter equal keys across
    partitions and make ``reduce_by_key``/``group_by_key``/``join`` emit
    duplicate keys.  Booleans and integral floats are normalised to ``int``
    (a float that equals an int is always exactly representable), and tuple
    keys are canonicalised element-wise.

    Shared with :func:`repro.storage.warehouse.warehouse.value_partitioner`,
    which uses the same canonical form for partition keys.
    """
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, float) and key.is_integer():
        return int(key)
    if isinstance(key, tuple):
        return tuple(canonical_key(element) for element in key)
    return key


#: Backwards-compatible alias (pre-publication name).
_canonical_key = canonical_key


def stable_hash(key: Hashable) -> int:
    """A process-independent 64-bit hash of ``canonical_key(key)``.

    Unlike the built-in ``hash`` this is not randomised per interpreter run,
    so it is safe to use wherever placement must be reproducible across
    processes and restarts: shuffle partitioning here, warehouse partition
    placement, and the serving tier's consistent-hash shard ring.
    """
    digest = hashlib.blake2b(repr(canonical_key(key)).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


#: Backwards-compatible alias (pre-publication name).
_stable_hash = stable_hash


def hash_partition(
    records: Iterable[tuple[K, V]], n_partitions: int
) -> list[list[tuple[K, V]]]:
    """Distribute ``(key, value)`` records into ``n_partitions`` by key hash.

    All records sharing a key land in the same partition, which is what the
    key-based transformations (reduce-by-key, group-by-key, join) rely on.
    """
    if n_partitions < 1:
        raise ComputeError("n_partitions must be >= 1")
    partitions: list[list[tuple[K, V]]] = [[] for _ in range(n_partitions)]
    for key, value in records:
        partitions[_stable_hash(key) % n_partitions].append((key, value))
    return partitions


def merge_partitions(partitions: Sequence[Sequence[tuple[K, V]]]) -> list[tuple[K, V]]:
    """Flatten shuffled partitions back into a single record list."""
    out: list[tuple[K, V]] = []
    for partition in partitions:
        out.extend(partition)
    return out
