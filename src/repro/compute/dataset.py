"""Partitioned datasets with lazy, lineage-tracked transformations.

``Dataset`` is the RDD-style abstraction the analytics jobs are written
against: transformations (``map``, ``filter``, ``flat_map``, ``key_by``,
``reduce_by_key``, ``group_by_key``, ``join`` …) are recorded lazily and only
executed when an action (``collect``, ``count``, ``take``, ``reduce`` …) is
called.  Narrow transformations run per-partition on the executor; key-based
transformations shuffle records by key hash first.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, Sequence, TypeVar

from ..errors import ComputeError
from .executor import LocalExecutor
from .shuffle import hash_partition

T = TypeVar("T")
U = TypeVar("U")
K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class Dataset:
    """A lazily evaluated, partitioned collection."""

    def __init__(
        self,
        partitions_provider: Callable[[], list[list[Any]]],
        executor: LocalExecutor,
        lineage: tuple[str, ...],
        n_partitions: int,
    ) -> None:
        self._provider = partitions_provider
        self.executor = executor
        self.lineage = lineage
        self.n_partitions = n_partitions
        self._cache: list[list[Any]] | None = None
        self._cached = False

    # ---------------------------------------------------------- construction

    @classmethod
    def from_iterable(
        cls,
        items: Iterable[Any],
        n_partitions: int = 4,
        executor: LocalExecutor | None = None,
    ) -> "Dataset":
        """Create a dataset by round-robin partitioning ``items``."""
        if n_partitions < 1:
            raise ComputeError("n_partitions must be >= 1")
        materialized = list(items)
        executor = executor or LocalExecutor()

        def provider() -> list[list[Any]]:
            partitions: list[list[Any]] = [[] for _ in range(n_partitions)]
            for index, item in enumerate(materialized):
                partitions[index % n_partitions].append(item)
            return partitions

        return cls(provider, executor, ("from_iterable",), n_partitions)

    # -------------------------------------------------------------- internals

    def _partitions(self) -> list[list[Any]]:
        if self._cached and self._cache is not None:
            return self._cache
        partitions = self._provider()
        if self._cached:
            self._cache = partitions
        return partitions

    def _derive(
        self,
        op_name: str,
        per_partition: Callable[[list[Any]], list[Any]],
        n_partitions: int | None = None,
    ) -> "Dataset":
        parent = self

        def provider() -> list[list[Any]]:
            return parent.executor.run(parent._partitions(), per_partition, description=op_name)

        return Dataset(
            provider,
            self.executor,
            self.lineage + (op_name,),
            n_partitions if n_partitions is not None else self.n_partitions,
        )

    # -------------------------------------------------------- transformations

    def map(self, fn: Callable[[T], U]) -> "Dataset":
        """Apply ``fn`` to every element."""
        return self._derive("map", lambda part: [fn(item) for item in part])

    def filter(self, predicate: Callable[[T], bool]) -> "Dataset":
        """Keep only elements satisfying ``predicate``."""
        return self._derive("filter", lambda part: [item for item in part if predicate(item)])

    def flat_map(self, fn: Callable[[T], Iterable[U]]) -> "Dataset":
        """Apply ``fn`` and flatten its iterable results."""

        def run(part: list[Any]) -> list[Any]:
            out: list[Any] = []
            for item in part:
                out.extend(fn(item))
            return out

        return self._derive("flat_map", run)

    def map_partitions(self, fn: Callable[[list[T]], list[U]]) -> "Dataset":
        """Apply ``fn`` to whole partitions (for vectorised / batched work)."""
        return self._derive("map_partitions", lambda part: list(fn(part)))

    def key_by(self, key_fn: Callable[[T], K]) -> "Dataset":
        """Turn each element into a ``(key, element)`` pair."""
        return self._derive("key_by", lambda part: [(key_fn(item), item) for item in part])

    def union(self, other: "Dataset") -> "Dataset":
        """Concatenate two datasets (partitions are appended)."""
        parent = self

        def provider() -> list[list[Any]]:
            return parent._partitions() + other._partitions()

        return Dataset(
            provider,
            self.executor,
            self.lineage + ("union",),
            self.n_partitions + other.n_partitions,
        )

    def distinct(self) -> "Dataset":
        """Remove duplicate elements (requires hashable elements)."""
        parent = self

        def provider() -> list[list[Any]]:
            seen: set[Any] = set()
            out: list[Any] = []
            for partition in parent._partitions():
                for item in partition:
                    if item not in seen:
                        seen.add(item)
                        out.append(item)
            return _repartition(out, parent.n_partitions)

        return Dataset(provider, self.executor, self.lineage + ("distinct",), self.n_partitions)

    def repartition(self, n_partitions: int) -> "Dataset":
        """Redistribute elements round-robin over ``n_partitions``."""
        if n_partitions < 1:
            raise ComputeError("n_partitions must be >= 1")
        parent = self

        def provider() -> list[list[Any]]:
            return _repartition(parent.collect(), n_partitions)

        return Dataset(provider, self.executor, self.lineage + ("repartition",), n_partitions)

    # ----------------------------------------------------- keyed (wide) ops

    def _keyed_partitions(self) -> list[list[tuple[Any, Any]]]:
        records = self.collect()
        for record in records:
            if not (isinstance(record, tuple) and len(record) == 2):
                raise ComputeError(
                    "keyed operations require (key, value) tuples; call key_by() first"
                )
        return hash_partition(records, self.n_partitions)

    def reduce_by_key(self, fn: Callable[[V, V], V]) -> "Dataset":
        """Combine the values of each key with ``fn``."""
        parent = self

        def provider() -> list[list[Any]]:
            shuffled = parent._keyed_partitions()

            def reduce_partition(part: list[tuple[Any, Any]]) -> list[tuple[Any, Any]]:
                acc: dict[Any, Any] = {}
                for key, value in part:
                    acc[key] = fn(acc[key], value) if key in acc else value
                return sorted(acc.items(), key=lambda kv: repr(kv[0]))

            return parent.executor.run(shuffled, reduce_partition, description="reduce_by_key")

        return Dataset(provider, self.executor, self.lineage + ("reduce_by_key",), self.n_partitions)

    def group_by_key(self) -> "Dataset":
        """Group the values of each key into a list."""
        parent = self

        def provider() -> list[list[Any]]:
            shuffled = parent._keyed_partitions()

            def group_partition(part: list[tuple[Any, Any]]) -> list[tuple[Any, list[Any]]]:
                groups: dict[Any, list[Any]] = {}
                for key, value in part:
                    groups.setdefault(key, []).append(value)
                return sorted(groups.items(), key=lambda kv: repr(kv[0]))

            return parent.executor.run(shuffled, group_partition, description="group_by_key")

        return Dataset(provider, self.executor, self.lineage + ("group_by_key",), self.n_partitions)

    def join(self, other: "Dataset") -> "Dataset":
        """Inner join of two keyed datasets: ``(key, (left, right))`` pairs."""
        parent = self

        def provider() -> list[list[Any]]:
            left_groups: dict[Any, list[Any]] = {}
            for key, values in parent.group_by_key().collect():
                left_groups[key] = values
            out: list[tuple[Any, tuple[Any, Any]]] = []
            for key, values in other.group_by_key().collect():
                if key in left_groups:
                    for left_value in left_groups[key]:
                        for right_value in values:
                            out.append((key, (left_value, right_value)))
            return _repartition(out, parent.n_partitions)

        return Dataset(provider, self.executor, self.lineage + ("join",), self.n_partitions)

    # ----------------------------------------------------------------- cache

    def cache(self) -> "Dataset":
        """Materialise this dataset once and reuse the result for later actions."""
        self._cached = True
        return self

    # --------------------------------------------------------------- actions

    def collect(self) -> list[Any]:
        """Materialise every element into a list."""
        out: list[Any] = []
        for partition in self._partitions():
            out.extend(partition)
        return out

    def count(self) -> int:
        """Number of elements."""
        return sum(len(partition) for partition in self._partitions())

    def take(self, n: int) -> list[Any]:
        """First ``n`` elements (partition order)."""
        if n < 0:
            raise ComputeError("take(n) requires n >= 0")
        out: list[Any] = []
        for partition in self._partitions():
            for item in partition:
                if len(out) >= n:
                    return out
                out.append(item)
        return out

    def first(self) -> Any:
        """First element (raises on an empty dataset)."""
        items = self.take(1)
        if not items:
            raise ComputeError("dataset is empty")
        return items[0]

    def reduce(self, fn: Callable[[T, T], T]) -> T:
        """Fold all elements with ``fn`` (raises on an empty dataset)."""
        items = self.collect()
        if not items:
            raise ComputeError("cannot reduce an empty dataset")
        accumulator = items[0]
        for item in items[1:]:
            accumulator = fn(accumulator, item)
        return accumulator

    def count_by_key(self) -> dict[Any, int]:
        """Count records per key of a keyed dataset."""
        counts: dict[Any, int] = {}
        for key, _value in self.collect():
            counts[key] = counts.get(key, 0) + 1
        return counts

    def to_dict(self) -> dict[Any, Any]:
        """Materialise a keyed dataset into a dict (later keys win)."""
        return dict(self.collect())

    # ------------------------------------------------------------------ misc

    def explain(self) -> str:
        """Human-readable lineage of this dataset."""
        return " -> ".join(self.lineage)


def _repartition(items: Sequence[Any], n_partitions: int) -> list[list[Any]]:
    partitions: list[list[Any]] = [[] for _ in range(n_partitions)]
    for index, item in enumerate(items):
        partitions[index % n_partitions].append(item)
    return partitions
