"""Command-line interface.

A small operational CLI over the library, mirroring the interactions the demo
walks through:

* ``python -m repro.cli insights`` — build a COVID-19 segment and print the
  §4.2 topic insights (Figures 4–5);
* ``python -m repro.cli assess --url <url>`` — evaluate one article of the
  generated collection (or an arbitrary registered URL);
* ``python -m repro.cli status`` — ingest a segment and print the platform's
  operational status and outlet segments.

All commands run on synthetic data; ``--outlets``, ``--days`` and ``--scale``
control the size of the generated segment.
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import timedelta
from typing import Sequence

from ._time import COVID_WINDOW_START
from .config import PlatformConfig
from .core.platform import SciLensPlatform
from .simulation import CovidScenarioConfig, generate_covid_scenario


def _build_loaded_platform(args) -> tuple[SciLensPlatform, object]:
    config = CovidScenarioConfig(
        n_outlets=args.outlets,
        window_start=COVID_WINDOW_START,
        window_end=COVID_WINDOW_START + timedelta(days=args.days),
        volume_scale=args.scale,
        random_seed=args.seed,
    )
    scenario = generate_covid_scenario(config)
    platform = SciLensPlatform(
        config=PlatformConfig(),
        site_store=scenario.site_store,
        account_registry=scenario.outlets.account_registry(),
    )
    platform.register_outlets(scenario.outlets.outlets())
    platform.ingest_posting_events(scenario.posting_events())
    platform.ingest_reaction_events(scenario.reaction_events())
    platform.process_stream()
    platform.assign_topics()
    return platform, scenario


def _cmd_insights(args) -> int:
    platform, scenario = _build_loaded_platform(args)
    insights = platform.topic_insights(
        "covid19", window_start=scenario.window_start, window_end=scenario.window_end
    )
    activity = insights.newsroom_activity
    payload = {
        "topic": insights.topic_key,
        "articles": int(insights.metadata["n_articles"]),
        "topic_articles": int(insights.metadata["n_topic_articles"]),
        "newsroom_activity": {
            "low_quality_first_half_pct": round(activity.mean_share(True, True), 2),
            "low_quality_second_half_pct": round(activity.mean_share(True, False), 2),
            "high_quality_first_half_pct": round(activity.mean_share(False, True), 2),
            "high_quality_second_half_pct": round(activity.mean_share(False, False), 2),
            "divergence_pct_points": round(activity.divergence(), 2),
        },
        "social_engagement": {k: round(v, 3) for k, v in insights.social_engagement.summary().items()},
        "evidence_seeking": {k: round(v, 3) for k, v in insights.evidence_seeking.summary().items()},
    }
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_assess(args) -> int:
    platform, scenario = _build_loaded_platform(args)
    url = args.url or scenario.topic_articles()[0].url
    try:
        assessment = platform.evaluate_url(url)
    except Exception as exc:  # surfaced as a CLI error, not a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(assessment.to_payload(), indent=2, default=str))
    return 0


def _cmd_status(args) -> int:
    platform, _scenario = _build_loaded_platform(args)
    platform.run_daily_migration()
    payload = platform.status()
    payload["outlet_segments"] = {k: len(v) for k, v in platform.outlet_segments().items()}
    print(json.dumps(payload, indent=2, default=str))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--outlets", type=int, default=10, help="number of outlets to simulate")
    parser.add_argument("--days", type=int, default=20, help="length of the collection window in days")
    parser.add_argument("--scale", type=float, default=0.2, help="fraction of full newsroom volume")
    parser.add_argument("--seed", type=int, default=13, help="random seed of the scenario")

    subparsers = parser.add_subparsers(dest="command", required=True)

    insights = subparsers.add_parser("insights", help="print the §4.2 topic insights")
    insights.set_defaults(func=_cmd_insights)

    assess = subparsers.add_parser("assess", help="evaluate one article (Figure 3 payload)")
    assess.add_argument("--url", default=None, help="article URL (defaults to the first COVID-19 article)")
    assess.set_defaults(func=_cmd_assess)

    status = subparsers.add_parser("status", help="ingest a segment and print the platform status")
    status.set_defaults(func=_cmd_status)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
