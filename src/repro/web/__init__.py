"""Web substrate: HTML parsing, URL handling, reference classification and a
simulated scraper over a synthetic web.

The operational platform crawls outlet web pages; offline, the synthetic
:class:`SiteStore` plays the role of "the web" and the scraper exercises the
exact same parse → extract-links → classify-references path.
"""

from .urls import normalize_url, domain_of, registered_domain, is_same_site
from .html import HtmlDocument, Link, parse_html
from .references import (
    ReferenceType,
    ReferenceClassifier,
    ReferenceProfile,
    SCIENTIFIC_DOMAINS,
)
from .sitestore import SiteStore
from .scraper import ArticleScraper, ScrapedArticle

__all__ = [
    "normalize_url",
    "domain_of",
    "registered_domain",
    "is_same_site",
    "HtmlDocument",
    "Link",
    "parse_html",
    "ReferenceType",
    "ReferenceClassifier",
    "ReferenceProfile",
    "SCIENTIFIC_DOMAINS",
    "SiteStore",
    "ArticleScraper",
    "ScrapedArticle",
]
