"""A small HTML parser producing the structure the scraper needs.

Built on :class:`html.parser.HTMLParser` from the standard library, it
extracts the document title, the author meta tag / by-line, the main body text
(paragraphs and headings) and every hyperlink with its anchor text.  Script
and style content is ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from html.parser import HTMLParser

_SKIP_TAGS = {"script", "style", "noscript", "template"}
_BLOCK_TAGS = {"p", "h1", "h2", "h3", "h4", "h5", "h6", "li", "blockquote", "figcaption"}
_AUTHOR_META_NAMES = {"author", "article:author", "byl", "parsely-author", "dc.creator"}


@dataclass(frozen=True)
class Link:
    """A hyperlink found in a document."""

    href: str
    anchor_text: str = ""
    rel: str = ""


@dataclass
class HtmlDocument:
    """Parsed representation of an HTML page."""

    title: str = ""
    author: str | None = None
    paragraphs: list[str] = field(default_factory=list)
    links: list[Link] = field(default_factory=list)
    meta: dict[str, str] = field(default_factory=dict)

    @property
    def text(self) -> str:
        """The body text: paragraphs joined by blank lines."""
        return "\n\n".join(self.paragraphs)

    def link_hrefs(self) -> list[str]:
        """All link targets in document order."""
        return [link.href for link in self.links]


class _ArticleHtmlParser(HTMLParser):
    """Stateful HTML parser collecting title, by-line, paragraphs and links."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.document = HtmlDocument()
        self._skip_depth = 0
        self._in_title = False
        self._block_stack: list[str] = []
        self._block_text: list[str] = []
        self._current_link: dict[str, str] | None = None
        self._link_text: list[str] = []
        self._byline_depth = 0

    # -------------------------------------------------------------- handlers

    def handle_starttag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        attributes = {name: (value or "") for name, value in attrs}
        if tag in _SKIP_TAGS:
            self._skip_depth += 1
            return
        if self._skip_depth:
            return
        if tag == "title":
            self._in_title = True
        elif tag == "meta":
            self._handle_meta(attributes)
        elif tag in _BLOCK_TAGS:
            self._block_stack.append(tag)
        elif tag == "a":
            self._current_link = {
                "href": attributes.get("href", ""),
                "rel": attributes.get("rel", ""),
            }
            self._link_text = []
        classes = attributes.get("class", "")
        if tag in ("span", "div", "address", "p") and (
            "byline" in classes or "author" in classes
        ):
            self._byline_depth += 1

    def handle_endtag(self, tag: str) -> None:
        if tag in _SKIP_TAGS:
            self._skip_depth = max(0, self._skip_depth - 1)
            return
        if self._skip_depth:
            return
        if tag == "title":
            self._in_title = False
        elif tag in _BLOCK_TAGS and self._block_stack:
            self._block_stack.pop()
            text = " ".join(" ".join(self._block_text).split())
            self._block_text = []
            if text:
                self.document.paragraphs.append(text)
        elif tag == "a" and self._current_link is not None:
            anchor = " ".join(" ".join(self._link_text).split())
            href = self._current_link.get("href", "")
            if href:
                self.document.links.append(
                    Link(href=href, anchor_text=anchor, rel=self._current_link.get("rel", ""))
                )
            self._current_link = None
            self._link_text = []
        if self._byline_depth and tag in ("span", "div", "address", "p"):
            self._byline_depth = max(0, self._byline_depth - 1)

    def handle_data(self, data: str) -> None:
        if self._skip_depth:
            return
        if self._in_title:
            self.document.title += data
        if self._block_stack:
            self._block_text.append(data)
        if self._current_link is not None:
            self._link_text.append(data)
        if self._byline_depth and not self.document.author:
            candidate = data.strip()
            candidate = candidate.removeprefix("By ").removeprefix("by ").strip()
            if candidate:
                self.document.author = candidate

    # ------------------------------------------------------------------ meta

    def _handle_meta(self, attributes: dict[str, str]) -> None:
        name = (attributes.get("name") or attributes.get("property") or "").lower()
        content = attributes.get("content", "")
        if not name or not content:
            return
        self.document.meta[name] = content
        if name in _AUTHOR_META_NAMES and not self.document.author:
            self.document.author = content.strip()


def parse_html(html: str) -> HtmlDocument:
    """Parse ``html`` into an :class:`HtmlDocument`.

    Never raises on malformed markup — the parser is tolerant and simply
    returns whatever it managed to extract.
    """
    parser = _ArticleHtmlParser()
    parser.feed(html or "")
    parser.close()
    document = parser.document
    document.title = " ".join(document.title.split())
    return document
