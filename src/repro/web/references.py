"""Classification of article references.

§3.1 of the paper distinguishes three reference types:

* **internal** — links within the same news outlet ("see also" sections or
  in-body links used to increase engagement);
* **external** — links to potential primary sources of information such as
  other news outlets;
* **scientific** — links to a predefined list of academic repositories,
  grey literature, peer-reviewed journals and institutional websites.

:class:`ReferenceClassifier` implements that taxonomy and
:class:`ReferenceProfile` summarises the counts and ratios per article.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

from .urls import is_same_site, registered_domain

#: Predefined list of academic repositories, journals and institutions.
SCIENTIFIC_DOMAINS: frozenset[str] = frozenset(
    {
        # preprint / repositories
        "arxiv.org", "biorxiv.org", "medrxiv.org", "ssrn.com", "zenodo.org",
        "pubmed.ncbi.nlm.nih.gov", "ncbi.nlm.nih.gov", "europepmc.org",
        # publishers / journals
        "nature.com", "science.org", "sciencemag.org", "thelancet.com",
        "nejm.org", "bmj.com", "cell.com", "plos.org", "pnas.org",
        "sciencedirect.com", "springer.com", "link.springer.com", "wiley.com",
        "onlinelibrary.wiley.com", "oup.com", "academic.oup.com",
        "jamanetwork.com", "frontiersin.org", "mdpi.com", "elifesciences.org",
        # institutions / agencies
        "who.int", "cdc.gov", "nih.gov", "fda.gov", "ecdc.europa.eu",
        "nhs.uk", "epfl.ch", "ethz.ch", "mit.edu", "stanford.edu",
        "harvard.edu", "ox.ac.uk", "cam.ac.uk", "jhu.edu", "imperial.ac.uk",
        "hopkinsmedicine.org", "mayoclinic.org",
        # scholarly search / indexes
        "scholar.google.com", "semanticscholar.org", "doi.org", "dx.doi.org",
        "researchgate.net",
    }
)

#: Suffixes that mark institutional / academic hosts even when unlisted.
_SCIENTIFIC_SUFFIXES: tuple[str, ...] = (".edu", ".ac.uk", ".ac.jp", ".edu.au")


class ReferenceType(str, Enum):
    """The three reference classes of §3.1."""

    INTERNAL = "internal"
    EXTERNAL = "external"
    SCIENTIFIC = "scientific"


@dataclass(frozen=True)
class ClassifiedReference:
    """One outgoing reference with its resolved type."""

    url: str
    reference_type: ReferenceType


@dataclass(frozen=True)
class ReferenceProfile:
    """Counts and ratios of the reference classes for one article."""

    internal: int
    external: int
    scientific: int

    @property
    def total(self) -> int:
        return self.internal + self.external + self.scientific

    @property
    def scientific_ratio(self) -> float:
        """Share of scientific references among all references (0 when none)."""
        return self.scientific / self.total if self.total else 0.0

    @property
    def external_ratio(self) -> float:
        return self.external / self.total if self.total else 0.0

    @property
    def internal_ratio(self) -> float:
        return self.internal / self.total if self.total else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "internal": float(self.internal),
            "external": float(self.external),
            "scientific": float(self.scientific),
            "scientific_ratio": self.scientific_ratio,
        }


class ReferenceClassifier:
    """Classify outgoing links of an article into the three reference types.

    Parameters
    ----------
    scientific_domains:
        Registrable domains treated as scientific sources (defaults to
        :data:`SCIENTIFIC_DOMAINS`).  Additional domains can be supplied to
        extend the predefined list, mirroring the configurable shortlist the
        platform maintains.
    """

    def __init__(self, scientific_domains: Iterable[str] | None = None) -> None:
        domains = set(SCIENTIFIC_DOMAINS if scientific_domains is None else scientific_domains)
        self.scientific_domains = frozenset(registered_domain(d) for d in domains)

    def is_scientific(self, url_or_host: str) -> bool:
        """True when the target is an academic repository / journal / institution."""
        try:
            domain = registered_domain(url_or_host)
        except Exception:
            return False
        if domain in self.scientific_domains:
            return True
        return any(domain.endswith(suffix) for suffix in _SCIENTIFIC_SUFFIXES)

    def classify(self, url: str, article_outlet_domain: str) -> ReferenceType:
        """Classify one reference of an article published on ``article_outlet_domain``."""
        if self.is_scientific(url):
            return ReferenceType.SCIENTIFIC
        if is_same_site(url, article_outlet_domain):
            return ReferenceType.INTERNAL
        return ReferenceType.EXTERNAL

    def classify_all(
        self, urls: Sequence[str], article_outlet_domain: str
    ) -> list[ClassifiedReference]:
        """Classify every reference, skipping non-absolute URLs."""
        out: list[ClassifiedReference] = []
        for url in urls:
            if "://" not in url:
                continue
            out.append(
                ClassifiedReference(url=url, reference_type=self.classify(url, article_outlet_domain))
            )
        return out

    def profile(self, urls: Sequence[str], article_outlet_domain: str) -> ReferenceProfile:
        """Summarise the reference counts of one article."""
        counts = {rt: 0 for rt in ReferenceType}
        for ref in self.classify_all(urls, article_outlet_domain):
            counts[ref.reference_type] += 1
        return ReferenceProfile(
            internal=counts[ReferenceType.INTERNAL],
            external=counts[ReferenceType.EXTERNAL],
            scientific=counts[ReferenceType.SCIENTIFIC],
        )
