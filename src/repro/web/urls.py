"""URL utilities: normalisation, domain extraction and same-site checks."""

from __future__ import annotations

from urllib.parse import urlsplit, urlunsplit

from ..errors import ValidationError

#: Multi-label public suffixes we care about (enough for news/academic domains).
_TWO_LABEL_SUFFIXES = {
    "co.uk", "ac.uk", "gov.uk", "org.uk",
    "com.au", "edu.au", "gov.au",
    "co.jp", "ac.jp",
    "com.br", "gov.br",
    "co.in", "ac.in",
}


def normalize_url(url: str) -> str:
    """Return a canonical form of ``url``.

    Lower-cases scheme and host, strips fragments, default ports and trailing
    slashes on non-root paths, and removes common tracking query parameters.
    """
    if not url or "://" not in url:
        raise ValidationError(f"not an absolute url: {url!r}")
    scheme, netloc, path, query, _fragment = urlsplit(url)
    scheme = scheme.lower()
    netloc = netloc.lower()
    if netloc.endswith(":80") and scheme == "http":
        netloc = netloc[:-3]
    if netloc.endswith(":443") and scheme == "https":
        netloc = netloc[:-4]
    if path != "/" and path.endswith("/"):
        path = path.rstrip("/")
    if not path:
        path = "/"
    if query:
        kept = [
            pair
            for pair in query.split("&")
            if pair and not pair.lower().startswith(("utm_", "fbclid=", "gclid=", "ref="))
        ]
        query = "&".join(kept)
    return urlunsplit((scheme, netloc, path, query, ""))


def domain_of(url: str) -> str:
    """Return the full host of ``url`` (without port), lower-cased."""
    host = urlsplit(url).netloc.lower()
    if "@" in host:
        host = host.rsplit("@", 1)[1]
    if ":" in host:
        host = host.split(":", 1)[0]
    if not host:
        raise ValidationError(f"url has no host: {url!r}")
    return host


def registered_domain(host_or_url: str) -> str:
    """Return the registrable domain of a host or URL.

    ``news.example.com`` → ``example.com``; ``www.bbc.co.uk`` → ``bbc.co.uk``.
    A small built-in list of two-label public suffixes covers the domains used
    by the platform; everything else falls back to the last two labels.
    """
    host = domain_of(host_or_url) if "://" in host_or_url else host_or_url.lower()
    host = host.strip(".")
    labels = host.split(".")
    if len(labels) <= 2:
        return host
    last_two = ".".join(labels[-2:])
    if last_two in _TWO_LABEL_SUFFIXES and len(labels) >= 3:
        return ".".join(labels[-3:])
    return last_two


def is_same_site(url_a: str, url_b: str) -> bool:
    """True when both URLs (or hosts) share the same registrable domain."""
    return registered_domain(url_a) == registered_domain(url_b)


def path_of(url: str) -> str:
    """Return the path component of ``url`` (always starting with ``/``)."""
    path = urlsplit(url).path
    return path if path.startswith("/") else "/" + path
