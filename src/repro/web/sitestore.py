"""Synthetic web.

The operational platform fetches article pages over HTTP.  Offline, the
:class:`SiteStore` is the "web": a deterministic, in-memory mapping from
normalised URLs to HTML documents which the scraper fetches from.  The corpus
generator registers every synthetic article page (and the scientific / outlet
pages they reference) here, so the scraping code path is identical to the
online one minus the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import ScrapingError
from .urls import domain_of, normalize_url


@dataclass(frozen=True)
class StoredPage:
    """One page of the synthetic web."""

    url: str
    html: str
    status: int = 200
    content_type: str = "text/html"


class SiteStore:
    """In-memory store of web pages keyed by normalised URL."""

    def __init__(self) -> None:
        self._pages: dict[str, StoredPage] = {}
        self.fetch_count = 0

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, url: str) -> bool:
        try:
            return normalize_url(url) in self._pages
        except Exception:
            return False

    def register(self, url: str, html: str, status: int = 200) -> StoredPage:
        """Register (or replace) a page under ``url``."""
        normalized = normalize_url(url)
        page = StoredPage(url=normalized, html=html, status=status)
        self._pages[normalized] = page
        return page

    def fetch(self, url: str) -> StoredPage:
        """Fetch a page, raising :class:`ScrapingError` for unknown URLs or error statuses."""
        normalized = normalize_url(url)
        self.fetch_count += 1
        page = self._pages.get(normalized)
        if page is None:
            raise ScrapingError(f"404: no page registered at {normalized}")
        if page.status >= 400:
            raise ScrapingError(f"{page.status}: error page at {normalized}")
        return page

    def urls(self) -> list[str]:
        """All registered URLs (sorted for determinism)."""
        return sorted(self._pages)

    def pages_for_domain(self, domain: str) -> Iterator[StoredPage]:
        """Iterate over the pages hosted on ``domain``."""
        domain = domain.lower()
        for url in self.urls():
            if domain_of(url) == domain:
                yield self._pages[url]

    def remove(self, url: str) -> None:
        """Remove a page if present (idempotent)."""
        self._pages.pop(normalize_url(url), None)
