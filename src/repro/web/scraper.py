"""Article scraper.

Turns a URL into a :class:`ScrapedArticle` by fetching the page from a
:class:`~repro.web.sitestore.SiteStore` (the synthetic web) and parsing its
HTML.  This is the entry point the streaming pipeline uses when it sees a
posting that links to a not-yet-known article.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime

from ..errors import ScrapingError
from .html import HtmlDocument, parse_html
from .sitestore import SiteStore
from .urls import domain_of, normalize_url


@dataclass(frozen=True)
class ScrapedArticle:
    """The raw material extracted from one article page."""

    url: str
    outlet_domain: str
    title: str
    text: str
    author: str | None
    links: tuple[str, ...]
    published_at: datetime | None = None
    meta: dict[str, str] = field(default_factory=dict)
    html: str = ""

    @property
    def has_byline(self) -> bool:
        return bool(self.author and self.author.strip())


class ArticleScraper:
    """Fetch + parse article pages from a :class:`SiteStore`."""

    def __init__(self, site_store: SiteStore) -> None:
        self.site_store = site_store

    def scrape(self, url: str) -> ScrapedArticle:
        """Scrape one article page.

        Raises :class:`ScrapingError` when the page is missing or its HTML
        yields no usable content (no title and no body text).
        """
        normalized = normalize_url(url)
        page = self.site_store.fetch(normalized)
        document = parse_html(page.html)
        if not document.title and not document.paragraphs:
            raise ScrapingError(f"page at {normalized} has no extractable content")
        return self._to_article(normalized, document, page.html)

    def try_scrape(self, url: str) -> ScrapedArticle | None:
        """Like :meth:`scrape` but returns ``None`` instead of raising."""
        try:
            return self.scrape(url)
        except ScrapingError:
            return None

    def _to_article(self, url: str, document: HtmlDocument, raw_html: str = "") -> ScrapedArticle:
        published_at = _parse_published(document.meta)
        absolute_links = tuple(
            link.href for link in document.links if "://" in link.href
        )
        return ScrapedArticle(
            url=url,
            outlet_domain=domain_of(url),
            title=document.title,
            text=document.text,
            author=document.author,
            links=absolute_links,
            published_at=published_at,
            meta=dict(document.meta),
            html=raw_html,
        )


def _parse_published(meta: dict[str, str]) -> datetime | None:
    """Extract a publication timestamp from common meta tags."""
    for key in ("article:published_time", "article:published", "date", "dc.date", "parsely-pub-date"):
        value = meta.get(key)
        if not value:
            continue
        try:
            return datetime.fromisoformat(value.replace("Z", "+00:00")).replace(tzinfo=None)
        except ValueError:
            continue
    return None
