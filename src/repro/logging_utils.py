"""Logging helpers.

The platform components log through the standard :mod:`logging` module under
the ``repro`` namespace.  :func:`get_logger` is the single entry point so that
module-level loggers stay consistent, and :func:`configure_logging` gives the
examples/benchmarks a one-liner to get readable output.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"
_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``name`` may be a dotted module name; anything not already under the
    ``repro`` root is nested beneath it.
    """
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure_logging(level: int = logging.INFO) -> None:
    """Attach a stream handler with a compact format to the ``repro`` root logger."""
    root = logging.getLogger(_ROOT_NAME)
    root.setLevel(level)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
