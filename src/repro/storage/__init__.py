"""Hybrid data layer.

The SciLens data layer combines an RDBMS for real-time operations with a
Distributed Storage for historical analytics (Figure 2).  Both are provided
here as from-scratch substrates:

* :mod:`repro.storage.rdbms` — an embedded relational engine (typed schemas,
  indexes, a small SQL dialect, transactions, write-ahead log);
* :mod:`repro.storage.warehouse` — a partitioned columnar store on top of a
  simulated block-replicated distributed file system;
* :mod:`repro.storage.cdc` — continuous change-data capture: the WAL is
  tailed onto per-table broker topics and landed as warehouse delta blocks,
  keeping the two stores in sync without a batch copy;
* :mod:`repro.storage.migration` — the bootstrap backfill and scheduled
  compaction that remain around the CDC stream;
* :mod:`repro.storage.fts` — full-text search: BM25 posting-list segments
  fed from the CDC stream, exposed through the RDBMS planner as the
  ``fts_index_scan`` access path;
* :mod:`repro.storage.faults` — the shared fault-injection, retry,
  circuit-breaker and health primitives the layers above wire together.
"""

from .faults import (
    FAULT_SITES,
    CircuitBreaker,
    FaultInjector,
    HealthMonitor,
    RetryPolicy,
    SubsystemHealth,
)
from .rdbms import (
    Column,
    ColumnType,
    Database,
    TableSchema,
    col,
    lit,
)
from .warehouse import DistributedFileSystem, Warehouse, WarehouseTable
from .cdc import CdcApplyReport, CdcPublisher, DeltaApplier, TableMapping
from .fts import FtsIndex, FtsIndexer, TableFtsIndex
from .migration import MigrationJob, MigrationReport

__all__ = [
    "FAULT_SITES",
    "CircuitBreaker",
    "FaultInjector",
    "HealthMonitor",
    "RetryPolicy",
    "SubsystemHealth",
    "Column",
    "ColumnType",
    "Database",
    "TableSchema",
    "col",
    "lit",
    "DistributedFileSystem",
    "Warehouse",
    "WarehouseTable",
    "CdcApplyReport",
    "CdcPublisher",
    "DeltaApplier",
    "TableMapping",
    "MigrationJob",
    "MigrationReport",
    "FtsIndex",
    "FtsIndexer",
    "TableFtsIndex",
]
