"""Bootstrap backfill and scheduled compaction for the warehouse.

"The data synchronization between the RDBMS and the Distributed Storage is
made through a daily data migration process" (§3.3).  The platform now keeps
the warehouse fresh *continuously* through change-data capture
(:mod:`repro.storage.cdc`: WAL → broker → delta blocks); what remains here is
everything CDC cannot do by construction:

* **Bootstrap backfill** — :meth:`MigrationJob.run` copies a registered RDBMS
  table wholesale into its (empty) warehouse table, seeding the base blocks
  that subsequent deltas merge against.  Rows that existed before CDC started
  tailing are never replayed by the WAL, so the first sync is always a batch
  copy.  (The old watermark-based incremental copy is gone — deltas carry the
  increments now.)
* **Scheduled compaction** — :meth:`MigrationJob.run_compaction` folds landed
  delta blocks into the base and merges fragmented partitions back into few
  large sorted blocks (see :meth:`Warehouse.compact`), bounding merge-on-read
  cost and restoring the clustered layout that scans prune best.

The job is also the scheduled owner of the warehouse's **materialized
roll-ups** (:mod:`repro.storage.warehouse.rollups`): after a backfill (and
after a compaction rewrite) it refreshes every registered roll-up, which
re-aggregates only the partitions whose block identity actually changed —
landed delta blocks are part of that identity, so roll-ups consume CDC
deltas for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta, timezone
from typing import Any

from ..errors import RetryExhaustedError, StorageError, TransientFaultError
from ..logging_utils import get_logger
from .cdc import TableMapping
from .rdbms.database import Database
from .rdbms.expressions import col
from .warehouse.warehouse import Warehouse

#: Backwards-compatible alias — the mapping now lives with the CDC pipeline,
#: which shares it (same transforms for bootstrap copies and delta messages).
_TableMapping = TableMapping

logger = get_logger("storage.migration")


def _utcnow() -> datetime:
    """Timezone-aware UTC now (``datetime.utcnow`` is naive and deprecated)."""
    return datetime.now(timezone.utc)


def _match_zone(ts: datetime, reference: datetime) -> datetime:
    """Coerce ``ts`` to the tz-awareness of ``reference`` (naive = UTC).

    Sync markers inherit their awareness from the row timestamps they were
    read from, while "now" defaults to an aware UTC instant; comparing the
    two directly raises ``TypeError``.  Normalising to the marker's
    convention keeps the resulting cutoff comparable to the stored rows.
    """
    if reference.tzinfo is None:
        if ts.tzinfo is None:
            return ts
        return ts.astimezone(timezone.utc).replace(tzinfo=None)
    if ts.tzinfo is None:
        return ts.replace(tzinfo=timezone.utc)
    return ts


@dataclass(frozen=True)
class MigrationReport:
    """Result of one bootstrap/backfill run."""

    run_at: datetime
    migrated_rows: dict[str, int] = field(default_factory=dict)
    #: RDBMS tables that were (re)copied wholesale this run — their warehouse
    #: tables were empty (or a full refresh was forced).
    bootstrapped: tuple[str, ...] = ()
    #: The database's WAL LSN captured when the copy started.  When *every*
    #: registered table bootstrapped, the CDC cursor can skip to this LSN:
    #: the copied rows already reflect all mutations up to it.
    cursor_lsn: int = 0
    #: Materialized roll-up name → number of partitions re-aggregated by the
    #: post-migration refresh (only roll-ups where something changed appear).
    rollups_refreshed: dict[str, int] = field(default_factory=dict)

    @property
    def total_rows(self) -> int:
        return sum(self.migrated_rows.values())


@dataclass(frozen=True)
class CompactionReport:
    """Result of one warehouse compaction pass.

    ``compacted`` maps each warehouse table to the per-partition reports of
    :meth:`~repro.storage.warehouse.warehouse.WarehouseTable.compact_partition`
    (tables and partitions where nothing needed merging are absent).
    """

    run_at: datetime
    compacted: dict[str, list[dict[str, int]]] = field(default_factory=dict)
    #: Materialized roll-up name → partitions re-aggregated after the rewrite
    #: (compaction replaces block files, so every compacted partition's
    #: roll-up state is refreshed from the new blocks).
    rollups_refreshed: dict[str, int] = field(default_factory=dict)

    def _total(self, key: str) -> int:
        return sum(
            report[key] for reports in self.compacted.values() for report in reports
        )

    @property
    def blocks_before(self) -> int:
        return self._total("blocks_before")

    @property
    def blocks_after(self) -> int:
        return self._total("blocks_after")

    @property
    def reclaimed_bytes(self) -> int:
        """Net single-copy wire bytes freed by this pass.

        The DFS stores every block ``replication`` times, so the raw
        capacity handed back to the data nodes is this figure multiplied by
        the effective replication factor.
        """
        return self._total("compressed_bytes_before") - self._total(
            "compressed_bytes_after"
        )


class MigrationJob:
    """Bootstraps warehouse tables from the RDBMS and schedules compaction."""

    def __init__(
        self,
        database: Database,
        warehouse: Warehouse,
        compaction_min_blocks: int = 8,
        refresh_rollups: bool = True,
    ) -> None:
        if compaction_min_blocks < 2:
            raise StorageError("compaction_min_blocks must be >= 2")
        self.database = database
        self.warehouse = warehouse
        #: A partition is considered fragmented — and worth rewriting on a
        #: scheduled compaction pass — once it holds this many blocks.
        #: (Partitions with outstanding CDC deltas are always folded.)
        self.compaction_min_blocks = compaction_min_blocks
        #: Refresh the warehouse's registered materialized roll-ups after each
        #: backfill / compaction pass (incremental: only changed partitions
        #: are re-aggregated; a no-op when nothing is registered).
        self.refresh_rollups = refresh_rollups
        self._mappings: list[TableMapping] = []
        #: Newest timestamp-column value known to be visible in the warehouse,
        #: per RDBMS table (fed by bootstrap copies and by the CDC applier via
        #: :meth:`note_synced`) — the retention cutoff for
        #: :func:`prune_migrated_rows`.
        self._synced: dict[str, datetime] = {}
        self.history: list[MigrationReport] = []
        self.compaction_history: list[CompactionReport] = []

    def add_table(
        self,
        rdbms_table: str,
        warehouse_table: str | None = None,
        timestamp_column: str = "created_at",
        partition_column: str | None = None,
        sort_key: list[str] | None = None,
    ) -> None:
        """Register a table to synchronise; the warehouse table is created if needed.

        ``timestamp_column`` is the freshness column (typically the ingestion
        time) that drives retention pruning and freshness reporting, while
        ``partition_column`` decides how the warehouse table is laid out
        (typically the event time, e.g. the publication date of an article).
        It defaults to the timestamp column.  ``sort_key`` optionally
        clusters each warehouse partition by those columns (tight zone maps +
        early-exit range scans on the sort column).

        A sorted index is declared on the timestamp column (unless the column
        is already indexed) so retention pruning resolves its cutoff filter
        as an index range scan instead of a full table scan.
        """
        table = self.database.table(rdbms_table)
        if not table.schema.has_column(timestamp_column):
            raise StorageError(
                f"table {rdbms_table!r} has no timestamp column {timestamp_column!r}"
            )
        if not table.has_index(timestamp_column):
            table.create_index(timestamp_column, kind="sorted")
        partition_column = partition_column or timestamp_column
        if not table.schema.has_column(partition_column):
            raise StorageError(
                f"table {rdbms_table!r} has no partition column {partition_column!r}"
            )
        warehouse_name = warehouse_table or rdbms_table
        if not self.warehouse.has_table(warehouse_name):
            self.warehouse.create_table(
                warehouse_name,
                columns=table.schema.column_names,
                partition_column=partition_column,
                partition_by="day",
                sort_key=sort_key,
                primary_key=table.schema.primary_key,
            )
        self._mappings.append(
            TableMapping(
                rdbms_table=rdbms_table,
                warehouse_table=warehouse_name,
                timestamp_column=timestamp_column,
                partition_column=partition_column,
                primary_key=table.schema.primary_key,
            )
        )

    def run(
        self,
        now: datetime | None = None,
        compact: bool = False,
        full_refresh: bool = False,
    ) -> MigrationReport:
        """Bootstrap-backfill registered tables and return a report.

        Each registered table whose warehouse table is still **empty** is
        copied wholesale — the seed the CDC delta stream merges against.
        Tables that already hold rows are left alone: their increments arrive
        as deltas (:mod:`repro.storage.cdc`), not as copies.  With
        ``full_refresh=True`` every table is dropped and re-copied (the
        batch fallback when CDC is disabled).  With ``compact=True`` a
        compaction pass (:meth:`run_compaction`) follows, so one scheduled
        job keeps the warehouse both folded and defragmented.  Registered
        materialized roll-ups are refreshed incrementally afterwards (see
        :attr:`refresh_rollups`).
        """
        now = now or _utcnow()
        cursor_lsn = self.database.wal_lsn()
        migrated: dict[str, int] = {}
        bootstrapped: list[str] = []

        for mapping in self._mappings:
            table = self.warehouse.table(mapping.warehouse_table)
            if full_refresh:
                for partition in list(table.partitions()):
                    table.drop_partition(partition)
            elif table.row_count() > 0:
                migrated[mapping.rdbms_table] = 0
                continue
            rows = self.database.query(mapping.rdbms_table).execute().rows
            if rows:
                table.append(rows)
            migrated[mapping.rdbms_table] = len(rows)
            bootstrapped.append(mapping.rdbms_table)
            stamps = [
                row[mapping.timestamp_column]
                for row in rows
                if row.get(mapping.timestamp_column) is not None
            ]
            if stamps:
                self.note_synced(mapping.rdbms_table, max(stamps))

        rollups_refreshed: dict[str, int] = {}
        if self.refresh_rollups and not compact:
            # With compact=True the refresh runs once, after the rewrite —
            # re-aggregating partitions that compaction is about to replace
            # would be wasted work.
            rollups_refreshed = self._refresh_registered_rollups()
        report = MigrationReport(
            run_at=now, migrated_rows=migrated, bootstrapped=tuple(bootstrapped),
            cursor_lsn=cursor_lsn, rollups_refreshed=rollups_refreshed,
        )
        self.history.append(report)
        if compact:
            self.run_compaction(now=now)
        return report

    def refresh_standing_rollups(self) -> dict[str, int]:
        """Incrementally refresh the warehouse's materialized roll-ups.

        Returns ``{rollup name: partitions re-aggregated}`` for roll-ups where
        anything changed; untouched roll-ups cost one block-identity
        comparison each and are omitted.  (Landed delta blocks are part of a
        partition's block identity, so the CDC applier's work is picked up
        exactly like a rewrite.)
        """
        return {
            name: len(report.refreshed_partitions)
            for name, report in self.warehouse.rollups.refresh_all().items()
            if report.changed
        }

    # Backwards-compatible internal alias.
    _refresh_registered_rollups = refresh_standing_rollups

    def run_compaction(
        self, now: datetime | None = None, min_blocks: int | None = None
    ) -> CompactionReport:
        """Compact fragmented partitions of every registered warehouse table.

        ``min_blocks`` overrides :attr:`compaction_min_blocks` for this pass.
        Partitions below the threshold are left untouched — unless they hold
        CDC delta blocks, which are always folded into the base — so the pass
        is cheap when the warehouse is already tidy; query results are
        identical before and after (compaction only rewrites the physical
        layout).  Registered materialized roll-ups are refreshed afterwards:
        the rewrite changes every compacted partition's block identity, and
        the refresh re-aggregates exactly those partitions from the new
        blocks.

        A *transient* storage failure while compacting one table (an
        injected/retry-exhausted DFS fault) skips that table for this pass
        with a logged warning instead of aborting the schedule: compaction
        only rewrites layout, the partition stays readable via merge-on-read
        (``compact_partition`` cleans up its half-written replacements), and
        the next pass retries it.
        """
        now = now or _utcnow()
        threshold = self.compaction_min_blocks if min_blocks is None else min_blocks
        compacted: dict[str, list[dict[str, int]]] = {}
        seen: set[str] = set()
        for mapping in self._mappings:
            name = mapping.warehouse_table
            if name in seen or not self.warehouse.has_table(name):
                continue
            seen.add(name)
            try:
                result = self.warehouse.compact(table=name, min_blocks=threshold)
            except (TransientFaultError, RetryExhaustedError) as exc:
                logger.warning(
                    "compaction of %s skipped this pass (transient fault: %s)",
                    name, exc,
                )
                continue
            compacted.update(result)
        rollups_refreshed: dict[str, int] = {}
        if self.refresh_rollups:
            rollups_refreshed = self._refresh_registered_rollups()
        report = CompactionReport(
            run_at=now, compacted=compacted, rollups_refreshed=rollups_refreshed
        )
        self.compaction_history.append(report)
        return report

    def synced_through(self, rdbms_table: str) -> datetime | None:
        """Newest timestamp-column value known to be warehouse-visible for
        ``rdbms_table`` (``None`` before the first sync)."""
        return self._synced.get(rdbms_table)

    def note_synced(self, rdbms_table: str, stamp: datetime) -> None:
        """Record that rows up to ``stamp`` are visible in the warehouse
        (monotonic; called by bootstrap copies and the CDC applier)."""
        known = self._synced.get(rdbms_table)
        if known is None or _match_zone(stamp, known) > known:
            self._synced[rdbms_table] = stamp

    def mappings(self) -> list[TableMapping]:
        """The registered table mappings (shared with the CDC pipeline)."""
        return list(self._mappings)

    def registered_tables(self) -> list[str]:
        return [mapping.rdbms_table for mapping in self._mappings]


def prune_migrated_rows(
    database: Database,
    migration: MigrationJob,
    rdbms_table: str,
    timestamp_column: str = "created_at",
    keep_days: int = 7,
    now: datetime | None = None,
) -> int:
    """Optional retention step: delete operational rows that are both
    warehouse-visible and older than ``keep_days`` days, keeping the RDBMS
    small.

    "Visible" is judged by the job's sync marker (bootstrap copies and the
    CDC applier both advance it).  ``now`` defaults to an aware UTC instant
    and is normalised to the marker's tz-awareness before the comparison, so
    tz-aware markers (rows ingested with aware timestamps) never raise
    ``TypeError`` against a naive default.
    """
    synced = migration.synced_through(rdbms_table)
    if synced is None:
        return 0
    now = now or _utcnow()
    age_cutoff = _match_zone(now, synced) - timedelta(days=keep_days)
    cutoff = min(synced, age_cutoff)
    return database.delete(rdbms_table, col(timestamp_column) <= cutoff)
