"""Daily migration from the operational RDBMS to the warehouse.

"The data synchronization between the RDBMS and the Distributed Storage is
made through a daily data migration process" (§3.3).  :class:`MigrationJob`
implements that process: it keeps a per-table watermark on a timestamp column
and, on each run, copies every row newer than the watermark into the matching
warehouse table.

Incremental runs fragment the warehouse: every run appends its own (small)
blocks to the partitions it touches, so a day partition that keeps receiving
late rows ends up as many tiny blocks.  The job therefore also owns the
**scheduled compaction** pass (:meth:`MigrationJob.run_compaction`, or
``run(compact=True)`` to piggyback on the migration itself): fragmented
partitions of the registered warehouse tables are merged back into few large
blocks sorted by each table's sort key, freeing DFS space and restoring the
clustered layout that scans prune best.

The migration is also the scheduled owner of the warehouse's **materialized
roll-ups** (:mod:`repro.storage.warehouse.rollups`): after appending (and
after a compaction rewrite) it refreshes every registered roll-up, which
re-aggregates only the partitions whose block set actually changed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from datetime import datetime, timedelta, timezone
from typing import Any

from ..errors import StorageError
from .rdbms.database import Database
from .rdbms.expressions import col
from .warehouse.warehouse import Warehouse


def _utcnow() -> datetime:
    """Timezone-aware UTC now (``datetime.utcnow`` is naive and deprecated)."""
    return datetime.now(timezone.utc)


def _match_zone(ts: datetime, reference: datetime) -> datetime:
    """Coerce ``ts`` to the tz-awareness of ``reference`` (naive = UTC).

    The migration's watermarks inherit their awareness from the row
    timestamps they were read from, while "now" defaults to an aware UTC
    instant; comparing the two directly raises ``TypeError``.  Normalising to
    the watermark's convention keeps the resulting cutoff comparable to the
    stored rows as well.
    """
    if reference.tzinfo is None:
        if ts.tzinfo is None:
            return ts
        return ts.astimezone(timezone.utc).replace(tzinfo=None)
    if ts.tzinfo is None:
        return ts.replace(tzinfo=timezone.utc)
    return ts


@dataclass(frozen=True)
class MigrationReport:
    """Result of one migration run."""

    run_at: datetime
    migrated_rows: dict[str, int] = field(default_factory=dict)
    watermarks: dict[str, datetime | None] = field(default_factory=dict)
    #: Materialized roll-up name → number of partitions re-aggregated by the
    #: post-migration refresh (only roll-ups where something changed appear).
    rollups_refreshed: dict[str, int] = field(default_factory=dict)

    @property
    def total_rows(self) -> int:
        return sum(self.migrated_rows.values())


@dataclass(frozen=True)
class CompactionReport:
    """Result of one warehouse compaction pass.

    ``compacted`` maps each warehouse table to the per-partition reports of
    :meth:`~repro.storage.warehouse.warehouse.WarehouseTable.compact_partition`
    (tables and partitions where nothing needed merging are absent).
    """

    run_at: datetime
    compacted: dict[str, list[dict[str, int]]] = field(default_factory=dict)
    #: Materialized roll-up name → partitions re-aggregated after the rewrite
    #: (compaction replaces block files, so every compacted partition's
    #: roll-up state is refreshed from the new blocks).
    rollups_refreshed: dict[str, int] = field(default_factory=dict)

    def _total(self, key: str) -> int:
        return sum(
            report[key] for reports in self.compacted.values() for report in reports
        )

    @property
    def blocks_before(self) -> int:
        return self._total("blocks_before")

    @property
    def blocks_after(self) -> int:
        return self._total("blocks_after")

    @property
    def reclaimed_bytes(self) -> int:
        """Net single-copy wire bytes freed by this pass.

        The DFS stores every block ``replication`` times, so the raw
        capacity handed back to the data nodes is this figure multiplied by
        the effective replication factor.
        """
        return self._total("compressed_bytes_before") - self._total(
            "compressed_bytes_after"
        )


@dataclass(frozen=True)
class _TableMapping:
    rdbms_table: str
    warehouse_table: str
    timestamp_column: str
    partition_column: str
    primary_key: str | None = None


class MigrationJob:
    """Synchronises RDBMS tables into warehouse tables on demand (daily in production)."""

    def __init__(
        self,
        database: Database,
        warehouse: Warehouse,
        compaction_min_blocks: int = 8,
        refresh_rollups: bool = True,
    ) -> None:
        if compaction_min_blocks < 2:
            raise StorageError("compaction_min_blocks must be >= 2")
        self.database = database
        self.warehouse = warehouse
        #: A partition is considered fragmented — and worth rewriting on a
        #: scheduled compaction pass — once it holds this many blocks.
        self.compaction_min_blocks = compaction_min_blocks
        #: Refresh the warehouse's registered materialized roll-ups after each
        #: migration / compaction pass (incremental: only changed partitions
        #: are re-aggregated; a no-op when nothing is registered).
        self.refresh_rollups = refresh_rollups
        self._mappings: list[_TableMapping] = []
        self._watermarks: dict[str, datetime] = {}
        #: Multiset of row identities (primary keys, or row content for
        #: key-less tables) migrated *at* each table's watermark timestamp:
        #: re-reading the ``== watermark`` boundary on the next run picks up
        #: late rows sharing that timestamp, and these counts keep the
        #: already-migrated ones from being copied twice.  A multiset — not a
        #: set — so a key-less table holding genuinely duplicate rows skips
        #: exactly as many copies as were already migrated.
        self._boundary_ids: dict[str, Counter] = {}
        self.history: list[MigrationReport] = []
        self.compaction_history: list[CompactionReport] = []

    def add_table(
        self,
        rdbms_table: str,
        warehouse_table: str | None = None,
        timestamp_column: str = "created_at",
        partition_column: str | None = None,
        sort_key: list[str] | None = None,
    ) -> None:
        """Register a table to migrate; the warehouse table is created if needed.

        ``timestamp_column`` drives the incremental watermark (typically the
        ingestion time), while ``partition_column`` decides how the warehouse
        table is laid out (typically the event time, e.g. the publication
        date of an article).  It defaults to the watermark column.
        ``sort_key`` optionally clusters each warehouse partition by those
        columns (tight zone maps + early-exit range scans on the sort column).

        A sorted index is declared on the watermark column (unless the column
        is already indexed) so each incremental run resolves its
        ``timestamp >= watermark`` filter (boundary rows are re-read and
        deduped by identity, see :meth:`run`) as an index range scan instead
        of a full table scan.
        """
        table = self.database.table(rdbms_table)
        if not table.schema.has_column(timestamp_column):
            raise StorageError(
                f"table {rdbms_table!r} has no timestamp column {timestamp_column!r}"
            )
        if not table.has_index(timestamp_column):
            table.create_index(timestamp_column, kind="sorted")
        partition_column = partition_column or timestamp_column
        if not table.schema.has_column(partition_column):
            raise StorageError(
                f"table {rdbms_table!r} has no partition column {partition_column!r}"
            )
        warehouse_name = warehouse_table or rdbms_table
        if not self.warehouse.has_table(warehouse_name):
            self.warehouse.create_table(
                warehouse_name,
                columns=table.schema.column_names,
                partition_column=partition_column,
                partition_by="day",
                sort_key=sort_key,
            )
        self._mappings.append(
            _TableMapping(
                rdbms_table=rdbms_table,
                warehouse_table=warehouse_name,
                timestamp_column=timestamp_column,
                partition_column=partition_column,
                primary_key=table.schema.primary_key,
            )
        )

    def run(self, now: datetime | None = None, compact: bool = False) -> MigrationReport:
        """Migrate every registered table and return a report.

        Rows with a timestamp **at or after** the table's watermark are
        re-read; rows already migrated at the exact watermark timestamp are
        recognised by identity (primary key) and skipped, so a late-arriving
        row that *shares* the watermark timestamp is picked up by the next run
        — exactly once — instead of being lost behind a strict ``>`` filter.
        The watermark then advances to the newest migrated timestamp.  With
        ``compact=True`` a compaction pass (:meth:`run_compaction`) follows
        the migration, so one scheduled job keeps the warehouse both fresh
        and defragmented.  Registered materialized roll-ups are refreshed
        incrementally afterwards (see :attr:`refresh_rollups`).
        """
        now = now or _utcnow()
        migrated: dict[str, int] = {}
        watermarks: dict[str, datetime | None] = {}

        for mapping in self._mappings:
            ts_column = mapping.timestamp_column
            watermark = self._watermarks.get(mapping.rdbms_table)
            boundary = self._boundary_ids.get(mapping.rdbms_table, Counter())
            query = self.database.query(mapping.rdbms_table)
            if watermark is not None:
                query = query.where(col(ts_column) >= watermark)
            rows = query.execute().rows
            if watermark is not None:
                # Skip exactly as many boundary-timestamp copies of each
                # identity as previous runs already migrated; any copies
                # beyond that count are genuinely new rows.
                seen: Counter = Counter()
                fresh: list[dict[str, Any]] = []
                for row in rows:
                    if row.get(ts_column) == watermark:
                        identity = self._row_identity(mapping, row)
                        seen[identity] += 1
                        if seen[identity] <= boundary[identity]:
                            continue
                    fresh.append(row)
                rows = fresh

            if rows:
                self.warehouse.table(mapping.warehouse_table).append(rows)
                stamps = [
                    row[ts_column] for row in rows if row.get(ts_column) is not None
                ]
                if stamps:
                    newest = max(stamps)
                    at_newest = Counter(
                        self._row_identity(mapping, row)
                        for row in rows
                        if row.get(ts_column) == newest
                    )
                    if newest == watermark:
                        boundary = boundary + at_newest
                    else:
                        boundary = at_newest
                    self._watermarks[mapping.rdbms_table] = newest
                    self._boundary_ids[mapping.rdbms_table] = boundary
            migrated[mapping.rdbms_table] = len(rows)
            watermarks[mapping.rdbms_table] = self._watermarks.get(mapping.rdbms_table)

        rollups_refreshed: dict[str, int] = {}
        if self.refresh_rollups and not compact:
            # With compact=True the refresh runs once, after the rewrite —
            # re-aggregating partitions that compaction is about to replace
            # would be wasted work.
            rollups_refreshed = self._refresh_registered_rollups()
        report = MigrationReport(
            run_at=now, migrated_rows=migrated, watermarks=watermarks,
            rollups_refreshed=rollups_refreshed,
        )
        self.history.append(report)
        if compact:
            self.run_compaction(now=now)
        return report

    @staticmethod
    def _row_identity(mapping: _TableMapping, row: dict[str, Any]) -> Any:
        """A hashable identity for boundary dedup: the primary key when the
        table declares one, else the row's canonical content."""
        if mapping.primary_key is not None:
            return row.get(mapping.primary_key)
        return repr(sorted((key, repr(value)) for key, value in row.items()))

    def _refresh_registered_rollups(self) -> dict[str, int]:
        """Incrementally refresh the warehouse's materialized roll-ups.

        Returns ``{rollup name: partitions re-aggregated}`` for roll-ups where
        anything changed; untouched roll-ups cost one block-identity
        comparison each and are omitted.
        """
        return {
            name: len(report.refreshed_partitions)
            for name, report in self.warehouse.rollups.refresh_all().items()
            if report.changed
        }

    def run_compaction(
        self, now: datetime | None = None, min_blocks: int | None = None
    ) -> CompactionReport:
        """Compact fragmented partitions of every registered warehouse table.

        ``min_blocks`` overrides :attr:`compaction_min_blocks` for this pass.
        Partitions below the threshold are left untouched, so the pass is
        cheap when the warehouse is already tidy; query results are identical
        before and after (compaction only rewrites the physical layout).
        Registered materialized roll-ups are refreshed afterwards: the
        rewrite changes every compacted partition's block identity, and the
        refresh re-aggregates exactly those partitions from the new blocks.
        """
        now = now or _utcnow()
        threshold = self.compaction_min_blocks if min_blocks is None else min_blocks
        compacted: dict[str, list[dict[str, int]]] = {}
        seen: set[str] = set()
        for mapping in self._mappings:
            name = mapping.warehouse_table
            if name in seen or not self.warehouse.has_table(name):
                continue
            seen.add(name)
            result = self.warehouse.compact(table=name, min_blocks=threshold)
            compacted.update(result)
        rollups_refreshed: dict[str, int] = {}
        if self.refresh_rollups:
            rollups_refreshed = self._refresh_registered_rollups()
        report = CompactionReport(
            run_at=now, compacted=compacted, rollups_refreshed=rollups_refreshed
        )
        self.compaction_history.append(report)
        return report

    def watermark(self, rdbms_table: str) -> datetime | None:
        """Current watermark of ``rdbms_table`` (``None`` before the first run)."""
        return self._watermarks.get(rdbms_table)

    def registered_tables(self) -> list[str]:
        return [mapping.rdbms_table for mapping in self._mappings]


def prune_migrated_rows(
    database: Database,
    migration: MigrationJob,
    rdbms_table: str,
    timestamp_column: str = "created_at",
    keep_days: int = 7,
    now: datetime | None = None,
) -> int:
    """Optional retention step: delete operational rows that are both migrated
    and older than ``keep_days`` days, keeping the RDBMS small.

    ``now`` defaults to an aware UTC instant and is normalised to the
    watermark's tz-awareness before the comparison, so tz-aware watermarks
    (rows ingested with aware timestamps) no longer raise ``TypeError``
    against a naive default.
    """
    watermark = migration.watermark(rdbms_table)
    if watermark is None:
        return 0
    now = now or _utcnow()
    age_cutoff = _match_zone(now, watermark) - timedelta(days=keep_days)
    cutoff = min(watermark, age_cutoff)
    return database.delete(rdbms_table, col(timestamp_column) <= cutoff)
