"""Daily migration from the operational RDBMS to the warehouse.

"The data synchronization between the RDBMS and the Distributed Storage is
made through a daily data migration process" (§3.3).  :class:`MigrationJob`
implements that process: it keeps a per-table watermark on a timestamp column
and, on each run, copies every row newer than the watermark into the matching
warehouse table.

Incremental runs fragment the warehouse: every run appends its own (small)
blocks to the partitions it touches, so a day partition that keeps receiving
late rows ends up as many tiny blocks.  The job therefore also owns the
**scheduled compaction** pass (:meth:`MigrationJob.run_compaction`, or
``run(compact=True)`` to piggyback on the migration itself): fragmented
partitions of the registered warehouse tables are merged back into few large
blocks sorted by each table's sort key, freeing DFS space and restoring the
clustered layout that scans prune best.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Any

from ..errors import StorageError
from .rdbms.database import Database
from .rdbms.expressions import col
from .warehouse.warehouse import Warehouse


@dataclass(frozen=True)
class MigrationReport:
    """Result of one migration run."""

    run_at: datetime
    migrated_rows: dict[str, int] = field(default_factory=dict)
    watermarks: dict[str, datetime | None] = field(default_factory=dict)

    @property
    def total_rows(self) -> int:
        return sum(self.migrated_rows.values())


@dataclass(frozen=True)
class CompactionReport:
    """Result of one warehouse compaction pass.

    ``compacted`` maps each warehouse table to the per-partition reports of
    :meth:`~repro.storage.warehouse.warehouse.WarehouseTable.compact_partition`
    (tables and partitions where nothing needed merging are absent).
    """

    run_at: datetime
    compacted: dict[str, list[dict[str, int]]] = field(default_factory=dict)

    def _total(self, key: str) -> int:
        return sum(
            report[key] for reports in self.compacted.values() for report in reports
        )

    @property
    def blocks_before(self) -> int:
        return self._total("blocks_before")

    @property
    def blocks_after(self) -> int:
        return self._total("blocks_after")

    @property
    def reclaimed_bytes(self) -> int:
        """Net single-copy wire bytes freed by this pass.

        The DFS stores every block ``replication`` times, so the raw
        capacity handed back to the data nodes is this figure multiplied by
        the effective replication factor.
        """
        return self._total("compressed_bytes_before") - self._total(
            "compressed_bytes_after"
        )


@dataclass(frozen=True)
class _TableMapping:
    rdbms_table: str
    warehouse_table: str
    timestamp_column: str
    partition_column: str


class MigrationJob:
    """Synchronises RDBMS tables into warehouse tables on demand (daily in production)."""

    def __init__(
        self,
        database: Database,
        warehouse: Warehouse,
        compaction_min_blocks: int = 8,
    ) -> None:
        if compaction_min_blocks < 2:
            raise StorageError("compaction_min_blocks must be >= 2")
        self.database = database
        self.warehouse = warehouse
        #: A partition is considered fragmented — and worth rewriting on a
        #: scheduled compaction pass — once it holds this many blocks.
        self.compaction_min_blocks = compaction_min_blocks
        self._mappings: list[_TableMapping] = []
        self._watermarks: dict[str, datetime] = {}
        self.history: list[MigrationReport] = []
        self.compaction_history: list[CompactionReport] = []

    def add_table(
        self,
        rdbms_table: str,
        warehouse_table: str | None = None,
        timestamp_column: str = "created_at",
        partition_column: str | None = None,
        sort_key: list[str] | None = None,
    ) -> None:
        """Register a table to migrate; the warehouse table is created if needed.

        ``timestamp_column`` drives the incremental watermark (typically the
        ingestion time), while ``partition_column`` decides how the warehouse
        table is laid out (typically the event time, e.g. the publication
        date of an article).  It defaults to the watermark column.
        ``sort_key`` optionally clusters each warehouse partition by those
        columns (tight zone maps + early-exit range scans on the sort column).

        A sorted index is declared on the watermark column (unless the column
        is already indexed) so each incremental run resolves its
        ``timestamp > watermark`` filter as an index range scan instead of a
        full table scan.
        """
        table = self.database.table(rdbms_table)
        if not table.schema.has_column(timestamp_column):
            raise StorageError(
                f"table {rdbms_table!r} has no timestamp column {timestamp_column!r}"
            )
        if not table.has_index(timestamp_column):
            table.create_index(timestamp_column, kind="sorted")
        partition_column = partition_column or timestamp_column
        if not table.schema.has_column(partition_column):
            raise StorageError(
                f"table {rdbms_table!r} has no partition column {partition_column!r}"
            )
        warehouse_name = warehouse_table or rdbms_table
        if not self.warehouse.has_table(warehouse_name):
            self.warehouse.create_table(
                warehouse_name,
                columns=table.schema.column_names,
                partition_column=partition_column,
                partition_by="day",
                sort_key=sort_key,
            )
        self._mappings.append(
            _TableMapping(
                rdbms_table=rdbms_table,
                warehouse_table=warehouse_name,
                timestamp_column=timestamp_column,
                partition_column=partition_column,
            )
        )

    def run(self, now: datetime | None = None, compact: bool = False) -> MigrationReport:
        """Migrate every registered table and return a report.

        Rows with a timestamp strictly greater than the table's watermark are
        copied; the watermark then advances to the newest migrated timestamp,
        so re-running the job never duplicates rows.  With ``compact=True``
        a compaction pass (:meth:`run_compaction`) follows the migration, so
        one scheduled job keeps the warehouse both fresh and defragmented.
        """
        now = now or datetime.utcnow()
        migrated: dict[str, int] = {}
        watermarks: dict[str, datetime | None] = {}

        for mapping in self._mappings:
            watermark = self._watermarks.get(mapping.rdbms_table)
            query = self.database.query(mapping.rdbms_table)
            if watermark is not None:
                query = query.where(col(mapping.timestamp_column) > watermark)
            rows = query.execute().rows

            if rows:
                self.warehouse.table(mapping.warehouse_table).append(rows)
                newest = max(
                    row[mapping.timestamp_column]
                    for row in rows
                    if row.get(mapping.timestamp_column) is not None
                )
                self._watermarks[mapping.rdbms_table] = newest
            migrated[mapping.rdbms_table] = len(rows)
            watermarks[mapping.rdbms_table] = self._watermarks.get(mapping.rdbms_table)

        report = MigrationReport(run_at=now, migrated_rows=migrated, watermarks=watermarks)
        self.history.append(report)
        if compact:
            self.run_compaction(now=now)
        return report

    def run_compaction(
        self, now: datetime | None = None, min_blocks: int | None = None
    ) -> CompactionReport:
        """Compact fragmented partitions of every registered warehouse table.

        ``min_blocks`` overrides :attr:`compaction_min_blocks` for this pass.
        Partitions below the threshold are left untouched, so the pass is
        cheap when the warehouse is already tidy; query results are identical
        before and after (compaction only rewrites the physical layout).
        """
        now = now or datetime.utcnow()
        threshold = self.compaction_min_blocks if min_blocks is None else min_blocks
        compacted: dict[str, list[dict[str, int]]] = {}
        seen: set[str] = set()
        for mapping in self._mappings:
            name = mapping.warehouse_table
            if name in seen or not self.warehouse.has_table(name):
                continue
            seen.add(name)
            result = self.warehouse.compact(table=name, min_blocks=threshold)
            compacted.update(result)
        report = CompactionReport(run_at=now, compacted=compacted)
        self.compaction_history.append(report)
        return report

    def watermark(self, rdbms_table: str) -> datetime | None:
        """Current watermark of ``rdbms_table`` (``None`` before the first run)."""
        return self._watermarks.get(rdbms_table)

    def registered_tables(self) -> list[str]:
        return [mapping.rdbms_table for mapping in self._mappings]


def prune_migrated_rows(
    database: Database,
    migration: MigrationJob,
    rdbms_table: str,
    timestamp_column: str = "created_at",
    keep_days: int = 7,
    now: datetime | None = None,
) -> int:
    """Optional retention step: delete operational rows that are both migrated
    and older than ``keep_days`` days, keeping the RDBMS small."""
    from datetime import timedelta

    watermark = migration.watermark(rdbms_table)
    if watermark is None:
        return 0
    now = now or datetime.utcnow()
    cutoff = min(watermark, now - timedelta(days=keep_days))
    return database.delete(rdbms_table, col(timestamp_column) <= cutoff)
