"""Continuous change-data capture: WAL → broker → warehouse delta blocks.

The CDC pipeline replaces the old scheduled batch copy as the freshness path
between the operational store and the analytical warehouse:

* :class:`CdcPublisher` tails the database's write-ahead log past a durable
  cursor (:class:`~repro.storage.rdbms.wal.WalTailer`), maps each committed
  insert/update/delete of a registered table through its
  :class:`TableMapping`, and produces one row-delta message per mutation onto
  a per-table broker topic.  Messages are keyed by the row's canonical
  primary-key form (:func:`~repro.compute.shuffle.canonical_key`), so all
  versions of one row land on — and are consumed in order from — the same
  broker partition.
* :class:`DeltaApplier` consumes those topics as a consumer group and lands
  batched deltas via :meth:`WarehouseTable.append_deltas`, which writes small
  sorted *delta blocks* and keeps a last-writer-wins index by primary
  key/LSN.  Application is idempotent (stale LSNs are dropped), so a
  redelivered batch after a consumer-checkpoint restore lands exactly once.

Reads merge base and delta blocks on the fly — bit-identical to a fresh
batch copy — and the scheduled compaction folds deltas into the base.
:class:`~repro.storage.migration.MigrationJob` remains only as the
bootstrap/backfill and compaction scheduler.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..compute.shuffle import canonical_key
from ..errors import StorageError
from .rdbms.database import Database, _row_from_payload
from .rdbms.wal import WalTailer

if TYPE_CHECKING:  # imported for type hints only — avoids hard coupling
    from ..streaming.broker import MessageBroker
    from ..streaming.checkpoint import CheckpointStore
    from .warehouse.warehouse import Warehouse

#: WAL operations that CDC turns into row-delta messages.
_CAPTURED_OPS = {"insert", "upsert", "delete_pk"}


@dataclass(frozen=True)
class TableMapping:
    """How one RDBMS table lands in the warehouse (shared by bootstrap + CDC)."""

    rdbms_table: str
    warehouse_table: str
    timestamp_column: str
    partition_column: str
    primary_key: str | None = None


class CdcPublisher:
    """Tails the WAL and publishes row-delta messages per registered table."""

    def __init__(
        self,
        database: Database,
        broker: "MessageBroker",
        topic_prefix: str = "cdc.",
        cursor_path: Path | str | None = None,
    ) -> None:
        if database.wal is None:
            raise StorageError("CDC needs a database with its WAL enabled")
        self.database = database
        self.broker = broker
        self.topic_prefix = topic_prefix
        self.tailer = WalTailer(database.wal, cursor_path=cursor_path)
        self._mappings: dict[str, TableMapping] = {}
        self.published = 0

    def topic_for(self, mapping: TableMapping) -> str:
        return f"{self.topic_prefix}{mapping.rdbms_table}"

    def add_mapping(self, mapping: TableMapping) -> str:
        """Register a table for capture; creates (and returns) its topic."""
        if mapping.primary_key is None:
            raise StorageError(
                f"CDC needs a primary key on table {mapping.rdbms_table!r} "
                "(last-writer-wins has no row identity without one)"
            )
        self._mappings[mapping.rdbms_table] = mapping
        topic = self.topic_for(mapping)
        self.broker.create_topic(topic)
        return topic

    def mappings(self) -> list[TableMapping]:
        return list(self._mappings.values())

    def topics(self) -> list[str]:
        return [self.topic_for(m) for m in self._mappings.values()]

    @property
    def cursor(self) -> int:
        """The highest WAL LSN already published."""
        return self.tailer.cursor

    def pending(self) -> int:
        """WAL records past the cursor not yet published."""
        return self.tailer.pending()

    def skip_to(self, lsn: int) -> None:
        """Advance the cursor without publishing — used after a bootstrap
        backfill copied the rows those WAL records describe."""
        self.tailer.advance(lsn)
        self._prune()

    def publish(self) -> int:
        """Publish every WAL record past the cursor; returns messages produced.

        Records of unregistered tables (or non-row operations such as DDL)
        advance the cursor without producing anything.  Rows are decoded back
        to live values through the table schema, so what the warehouse lands
        is exactly what a batch copy would have read.
        """
        produced = 0
        high = self.tailer.cursor
        for record in self.tailer.tail():
            high = record.sequence
            if record.operation not in _CAPTURED_OPS:
                continue
            mapping = self._mappings.get(record.table)
            if mapping is None:
                continue
            table = self.database.table(record.table)
            payload = record.payload.get("row")
            if payload is None:  # legacy delete record without the doomed row
                payload = {mapping.primary_key: record.payload.get("primary_key")}
            row = _row_from_payload(table, payload)
            op = "d" if record.operation == "delete_pk" else "u"
            self.broker.produce(
                self.topic_for(mapping),
                key=str(canonical_key(row.get(mapping.primary_key))),
                value={
                    "op": op,
                    "table": mapping.warehouse_table,
                    "lsn": record.sequence,
                    "ts": record.ts,
                    "row": row,
                },
            )
            produced += 1
        self.tailer.advance(high)
        self._prune()
        self.published += produced
        return produced

    def _prune(self) -> None:
        # In-memory WALs exist only to be tailed — drop what was consumed.
        wal = self.database.wal
        if wal is not None:
            wal.prune(self.tailer.cursor)


@dataclass
class CdcApplyReport:
    """One :meth:`DeltaApplier.apply` pass."""

    rows: int = 0
    #: Rows applied per warehouse table (post exactly-once dedup).
    tables: dict[str, int] = field(default_factory=dict)
    #: Max value of the mapping's timestamp column among delivered upserts,
    #: per RDBMS table — feeds ``MigrationJob.note_synced`` for WAL pruning.
    synced: dict[str, Any] = field(default_factory=dict)
    #: Worst write→visible latency (seconds) observed in this pass.
    max_latency_s: float = 0.0


class DeltaApplier:
    """Consumer group that lands CDC row deltas as warehouse delta blocks."""

    def __init__(
        self,
        warehouse: "Warehouse",
        broker: "MessageBroker",
        mappings: list[TableMapping],
        topic_prefix: str = "cdc.",
        group: str = "delta-applier",
        checkpoints: "CheckpointStore | None" = None,
        batch_rows: int = 500,
    ) -> None:
        from ..streaming.consumer import Consumer  # deferred: streaming is optional here

        self.warehouse = warehouse
        self.batch_rows = max(1, batch_rows)
        self._by_topic = {
            f"{topic_prefix}{m.rdbms_table}": m for m in mappings
        }
        for topic in self._by_topic:
            broker.create_topic(topic)
        self.consumer = Consumer(
            broker, group=group, topics=sorted(self._by_topic), checkpoints=checkpoints
        )
        self.applied_rows = 0
        self.max_latency_s = 0.0
        self.last_latency_s = 0.0

    def lag(self) -> int:
        """Messages published but not yet landed."""
        return self.consumer.lag()

    def apply(self) -> CdcApplyReport:
        """Drain the topics, landing deltas in ``batch_rows``-sized batches."""
        report = CdcApplyReport()
        while True:
            messages = self.consumer.poll(max_messages=self.batch_rows)
            if not messages:
                break
            batches: dict[str, list[tuple[int, str, dict[str, Any]]]] = {}
            keys: dict[str, str] = {}
            for message in messages:
                value = message.value
                mapping = self._by_topic[message.topic]
                batches.setdefault(value["table"], []).append(
                    (value["lsn"], value["op"], value["row"])
                )
                keys[value["table"]] = mapping.primary_key or ""
                if value["op"] == "u":
                    stamp = value["row"].get(mapping.timestamp_column)
                    if stamp is not None:
                        known = report.synced.get(mapping.rdbms_table)
                        if known is None or stamp > known:
                            report.synced[mapping.rdbms_table] = stamp
            for table_name, entries in batches.items():
                applied = self.warehouse.table(table_name).append_deltas(
                    entries, primary_key=keys[table_name] or None
                )
                report.rows += applied
                if applied:
                    report.tables[table_name] = (
                        report.tables.get(table_name, 0) + applied
                    )
            # The batch is durably landed (idempotently so) — commit offsets.
            self.consumer.commit(messages)
            now = time.time()
            for message in messages:
                stamp = message.value.get("ts") or 0.0
                if stamp:
                    report.max_latency_s = max(report.max_latency_s, now - stamp)
        self.applied_rows += report.rows
        if report.max_latency_s:
            self.last_latency_s = report.max_latency_s
            self.max_latency_s = max(self.max_latency_s, report.max_latency_s)
        return report
