"""Continuous change-data capture: WAL → broker → warehouse delta blocks.

The CDC pipeline replaces the old scheduled batch copy as the freshness path
between the operational store and the analytical warehouse:

* :class:`CdcPublisher` tails the database's write-ahead log past a durable
  cursor (:class:`~repro.storage.rdbms.wal.WalTailer`), maps each committed
  insert/update/delete of a registered table through its
  :class:`TableMapping`, and produces one row-delta message per mutation onto
  a per-table broker topic.  Messages are keyed by the row's canonical
  primary-key form (:func:`~repro.compute.shuffle.canonical_key`), so all
  versions of one row land on — and are consumed in order from — the same
  broker partition.
* :class:`DeltaApplier` consumes those topics as a consumer group and lands
  batched deltas via :meth:`WarehouseTable.append_deltas`, which writes small
  sorted *delta blocks* and keeps a last-writer-wins index by primary
  key/LSN.  Application is idempotent (stale LSNs are dropped), so a
  redelivered batch after a consumer-checkpoint restore lands exactly once.

Reads merge base and delta blocks on the fly — bit-identical to a fresh
batch copy — and the scheduled compaction folds deltas into the base.
:class:`~repro.storage.migration.MigrationJob` remains only as the
bootstrap/backfill and compaction scheduler.

**Fault tolerance.**  Both ends carry explicit ``recover()`` paths for
process restarts: the publisher reconciles its durable cursor with the WAL
it tails (rewinding when the WAL's LSN counter restarted behind the cursor),
and the applier reconciles broker offsets against the warehouse's recovered
per-table LSN high-water marks — redelivery past the high-water mark is
dropped by the exactly-once delta index, so a crash at any point lands zero
duplicate rows.  Transient broker faults are absorbed by an attached
:class:`~repro.storage.faults.RetryPolicy`; a
:class:`~repro.storage.faults.CircuitBreaker` stops the applier from
hot-looping on a batch that keeps failing (optionally quarantining it and
moving on), and a :class:`~repro.storage.faults.SubsystemHealth` record
surfaces every degradation with counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..compute.shuffle import canonical_key
from ..errors import (
    CircuitOpenError,
    RetryExhaustedError,
    StorageError,
    TransientFaultError,
)
from .faults import CircuitBreaker, RetryPolicy, SubsystemHealth
from .rdbms.database import Database, _row_from_payload
from .rdbms.wal import WalTailer

if TYPE_CHECKING:  # imported for type hints only — avoids hard coupling
    from ..streaming.broker import MessageBroker
    from ..streaming.checkpoint import CheckpointStore
    from ..streaming.message import Message
    from .warehouse.warehouse import Warehouse

#: WAL operations that CDC turns into row-delta messages.
_CAPTURED_OPS = {"insert", "upsert", "delete_pk"}


@dataclass(frozen=True)
class TableMapping:
    """How one RDBMS table lands in the warehouse (shared by bootstrap + CDC)."""

    rdbms_table: str
    warehouse_table: str
    timestamp_column: str
    partition_column: str
    primary_key: str | None = None


class CdcPublisher:
    """Tails the WAL and publishes row-delta messages per registered table."""

    def __init__(
        self,
        database: Database,
        broker: "MessageBroker",
        topic_prefix: str = "cdc.",
        cursor_path: Path | str | None = None,
        retry_policy: RetryPolicy | None = None,
        health: SubsystemHealth | None = None,
    ) -> None:
        if database.wal is None:
            raise StorageError("CDC needs a database with its WAL enabled")
        self.database = database
        self.broker = broker
        self.topic_prefix = topic_prefix
        self.tailer = WalTailer(database.wal, cursor_path=cursor_path)
        self._mappings: dict[str, TableMapping] = {}
        self.published = 0
        #: Optional fault-tolerance wiring: transient ``broker.publish``
        #: faults are retried under ``retry_policy``; with ``health``
        #: attached, an exhausted publish degrades the subsystem and the
        #: pass stops cleanly (cursor at the last published record — the
        #: next pass resumes there, nothing lost) instead of raising.
        self.retry_policy = retry_policy
        self.health = health

    def topic_for(self, mapping: TableMapping) -> str:
        return f"{self.topic_prefix}{mapping.rdbms_table}"

    def add_mapping(self, mapping: TableMapping) -> str:
        """Register a table for capture; creates (and returns) its topic."""
        if mapping.primary_key is None:
            raise StorageError(
                f"CDC needs a primary key on table {mapping.rdbms_table!r} "
                "(last-writer-wins has no row identity without one)"
            )
        self._mappings[mapping.rdbms_table] = mapping
        topic = self.topic_for(mapping)
        self.broker.create_topic(topic)
        return topic

    def mappings(self) -> list[TableMapping]:
        return list(self._mappings.values())

    def topics(self) -> list[str]:
        return [self.topic_for(m) for m in self._mappings.values()]

    @property
    def cursor(self) -> int:
        """The highest WAL LSN already published."""
        return self.tailer.cursor

    def pending(self) -> int:
        """WAL records past the cursor not yet published."""
        return self.tailer.pending()

    def skip_to(self, lsn: int) -> None:
        """Advance the cursor without publishing — used after a bootstrap
        backfill copied the rows those WAL records describe."""
        self.tailer.advance(lsn)
        self._prune()

    def recover(self) -> dict[str, Any]:
        """Reconcile the durable cursor with the WAL after a restart.

        The cursor file is loaded tolerantly (a torn cursor restarts from 0
        with a logged warning — see :class:`WalTailer`); what remains to be
        reconciled is a cursor *ahead* of the log it tails, which happens
        when the WAL's LSN counter restarted (an in-memory WAL in a new
        process).  Left alone, every new record would sit below the cursor
        and never publish — so the cursor rewinds to the WAL head.  Any
        over-publication this causes is dropped by the warehouse's
        exactly-once index.
        """
        wal_lsn = self.database.wal_lsn()
        cursor = self.tailer.cursor
        rewound = cursor > wal_lsn
        if rewound:
            self.tailer.reset(wal_lsn)
        return {
            "cursor": self.tailer.cursor,
            "wal_lsn": wal_lsn,
            "rewound": rewound,
            "pending": self.pending(),
        }

    def _produce(self, topic: str, key: str, value: dict[str, Any]) -> None:
        """One message hand-off, retried under the attached policy."""
        if self.retry_policy is None:
            self.broker.produce(topic, key=key, value=value)
            return

        def note(_attempt: int, exc: BaseException) -> None:
            if self.health is not None:
                self.health.note_retry(exc)

        self.retry_policy.call(
            lambda: self.broker.produce(topic, key=key, value=value),
            description=f"cdc publish to {topic}",
            on_retry=note,
        )

    def publish(self) -> int:
        """Publish every WAL record past the cursor; returns messages produced.

        Records of unregistered tables (or non-row operations such as DDL)
        advance the cursor without producing anything.  Rows are decoded back
        to live values through the table schema, so what the warehouse lands
        is exactly what a batch copy would have read.

        The cursor only moves past a record once its message is handed to
        the broker, so a publish failure mid-pass loses nothing: the next
        pass resumes at the failed record.  With a health record attached
        the failure degrades the subsystem and the pass returns what it
        managed; without one it raises after securing the cursor.
        """
        produced = 0
        high = self.tailer.cursor
        failure: BaseException | None = None
        for record in self.tailer.tail():
            if record.operation in _CAPTURED_OPS:
                mapping = self._mappings.get(record.table)
                if mapping is not None:
                    table = self.database.table(record.table)
                    payload = record.payload.get("row")
                    if payload is None:  # legacy delete record without the doomed row
                        payload = {mapping.primary_key: record.payload.get("primary_key")}
                    row = _row_from_payload(table, payload)
                    op = "d" if record.operation == "delete_pk" else "u"
                    try:
                        self._produce(
                            self.topic_for(mapping),
                            key=str(canonical_key(row.get(mapping.primary_key))),
                            value={
                                "op": op,
                                "table": mapping.warehouse_table,
                                "lsn": record.sequence,
                                "ts": record.ts,
                                "row": row,
                            },
                        )
                    except (TransientFaultError, RetryExhaustedError) as exc:
                        failure = exc
                        break  # cursor stays before this record — no loss
                    produced += 1
            high = record.sequence
        self.tailer.advance(high)
        self._prune()
        self.published += produced
        if failure is not None:
            if self.health is None:
                raise failure
            self.health.degrade(failure)
        elif self.health is not None and self.health.state != "ok":
            self.health.recover()
        return produced

    def _prune(self) -> None:
        # In-memory WALs exist only to be tailed — drop what was consumed.
        wal = self.database.wal
        if wal is not None:
            wal.prune(self.tailer.cursor)


@dataclass
class CdcApplyReport:
    """One :meth:`DeltaApplier.apply` pass."""

    rows: int = 0
    #: Rows applied per warehouse table (post exactly-once dedup).
    tables: dict[str, int] = field(default_factory=dict)
    #: Max value of the mapping's timestamp column among delivered upserts,
    #: per RDBMS table — feeds ``MigrationJob.note_synced`` for WAL pruning.
    synced: dict[str, Any] = field(default_factory=dict)
    #: Worst write→visible latency (seconds) observed in this pass.
    max_latency_s: float = 0.0


class DeltaApplier:
    """Consumer group that lands CDC row deltas as warehouse delta blocks."""

    def __init__(
        self,
        warehouse: "Warehouse",
        broker: "MessageBroker",
        mappings: list[TableMapping],
        topic_prefix: str = "cdc.",
        group: str = "delta-applier",
        checkpoints: "CheckpointStore | None" = None,
        batch_rows: int = 500,
        retry_policy: RetryPolicy | None = None,
        health: SubsystemHealth | None = None,
        breaker: CircuitBreaker | None = None,
        skip_poisoned: bool = False,
    ) -> None:
        from ..streaming.consumer import Consumer  # deferred: streaming is optional here

        self.warehouse = warehouse
        self.broker = broker
        self.batch_rows = max(1, batch_rows)
        self._by_topic = {
            f"{topic_prefix}{m.rdbms_table}": m for m in mappings
        }
        for topic in self._by_topic:
            broker.create_topic(topic)
        self.consumer = Consumer(
            broker, group=group, topics=sorted(self._by_topic), checkpoints=checkpoints
        )
        self.applied_rows = 0
        self.max_latency_s = 0.0
        self.last_latency_s = 0.0
        #: Fault-tolerance wiring.  ``retry_policy`` absorbs transient
        #: ``broker.poll`` faults; ``breaker`` opens after repeated landing
        #: failures so a poisoned batch cannot hot-loop the applier; with
        #: ``skip_poisoned`` a batch the warehouse rejects is quarantined
        #: (offsets committed, batch kept for inspection) instead of
        #: blocking the topic.
        self.retry_policy = retry_policy
        self.health = health
        self.breaker = breaker
        self.skip_poisoned = skip_poisoned
        #: Batches set aside by ``skip_poisoned``: ``{"messages", "error"}``.
        self.quarantined: list[dict[str, Any]] = []

    def lag(self) -> int:
        """Messages published but not yet landed."""
        return self.consumer.lag()

    def recover(self, redeliver: bool = False) -> dict[str, Any]:
        """Reconcile broker offsets with the warehouse after a restart.

        Reports, per warehouse table, the recovered delta-index high-water
        LSN next to the consumer group's committed offsets.  When the broker
        outlived the warehouse process the committed offsets already point
        past everything landed and nothing needs to move.  When the *offsets*
        were lost (no checkpoint store, or the broker restarted with its
        commit map empty) pass ``redeliver=True``: the group seeks every CDC
        topic back to offset 0 and the next :meth:`apply` replays the full
        log — the warehouse's exactly-once index drops every LSN at or below
        its high-water mark, so the replay lands zero duplicate rows.
        """
        tables: dict[str, dict[str, Any]] = {}
        for topic, mapping in sorted(self._by_topic.items()):
            if redeliver:
                self.broker.seek_to_beginning(self.consumer.group, topic)
            high_water = 0
            if self.warehouse.has_table(mapping.warehouse_table):
                high_water = self.warehouse.table(
                    mapping.warehouse_table
                ).delta_high_water()
            stats = (
                self.broker.topic_stats(topic)
                if self.broker.has_topic(topic) else None
            )
            committed = {
                partition: self.broker.committed_offset(
                    self.consumer.group, topic, partition
                )
                for partition in range(stats.partitions if stats else 0)
            }
            tables[mapping.warehouse_table] = {
                "topic": topic,
                "delta_high_water": high_water,
                "committed_offsets": committed,
            }
        return {
            "redelivered": redeliver,
            "lag": self.lag(),
            "tables": tables,
        }

    def _poll(self) -> list["Message"]:
        """One consumer poll, retried under the attached policy."""
        if self.retry_policy is None:
            return self.consumer.poll(max_messages=self.batch_rows)

        def note(_attempt: int, exc: BaseException) -> None:
            if self.health is not None:
                self.health.note_retry(exc)

        return self.retry_policy.call(
            lambda: self.consumer.poll(max_messages=self.batch_rows),
            description="cdc poll",
            on_retry=note,
        )

    def apply(self) -> CdcApplyReport:
        """Drain the topics, landing deltas in ``batch_rows``-sized batches.

        With a :class:`~repro.storage.faults.CircuitBreaker` attached, the
        pass refuses to start while the breaker is open
        (:class:`~repro.errors.CircuitOpenError` propagates to the caller)
        and every failed landing counts against the breaker — so a batch
        that keeps failing backs the applier off instead of hot-looping.
        """
        if self.breaker is not None:
            self.breaker.allow("cdc apply")
        report = CdcApplyReport()
        while True:
            messages = self._poll()
            if not messages:
                break
            batches: dict[str, list[tuple[int, str, dict[str, Any]]]] = {}
            keys: dict[str, str] = {}
            for message in messages:
                value = message.value
                mapping = self._by_topic[message.topic]
                batches.setdefault(value["table"], []).append(
                    (value["lsn"], value["op"], value["row"])
                )
                keys[value["table"]] = mapping.primary_key or ""
                if value["op"] == "u":
                    stamp = value["row"].get(mapping.timestamp_column)
                    if stamp is not None:
                        known = report.synced.get(mapping.rdbms_table)
                        if known is None or stamp > known:
                            report.synced[mapping.rdbms_table] = stamp
            try:
                for table_name, entries in batches.items():
                    applied = self.warehouse.table(table_name).append_deltas(
                        entries, primary_key=keys[table_name] or None
                    )
                    report.rows += applied
                    if applied:
                        report.tables[table_name] = (
                            report.tables.get(table_name, 0) + applied
                        )
            except Exception as exc:
                # The batch did not land (append_deltas is transactional per
                # table; a partial landing re-applies idempotently on the
                # redelivery).  Offsets stay put unless the batch is
                # explicitly quarantined.
                if self.breaker is not None:
                    self.breaker.record_failure()
                if self.health is not None:
                    self.health.degrade(exc)
                if self.skip_poisoned:
                    self.quarantined.append({"messages": messages, "error": exc})
                    self.consumer.commit(messages)
                    continue
                raise
            if self.breaker is not None:
                self.breaker.record_success()
            # The batch is durably landed (idempotently so) — commit offsets.
            self.consumer.commit(messages)
            now = time.time()
            for message in messages:
                stamp = message.value.get("ts") or 0.0
                if stamp:
                    report.max_latency_s = max(report.max_latency_s, now - stamp)
        self.applied_rows += report.rows
        if report.max_latency_s:
            self.last_latency_s = report.max_latency_s
            self.max_latency_s = max(self.max_latency_s, report.max_latency_s)
        if self.health is not None and self.health.state != "ok":
            self.health.recover()
        return report
