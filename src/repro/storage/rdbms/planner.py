"""Cost-based access planning for the relational engine.

The planner turns a predicate (via the constraint extractor of
:mod:`.expressions`) plus the table's secondary indexes *and statistics*
(:mod:`.stats`) into an :class:`AccessPlan`.  Each index-answerable conjunct
becomes a candidate step with an estimated row count (histogram / NDV / MCV
selectivity, defaults when the column has no statistics); the planner then
enumerates candidate plans — the full scan plus every prefix of the steps
ordered most-selective-first — costs each one, and probes only the steps of
the cheapest.  ``Query.explain()`` reports the chosen plan together with the
considered-but-rejected alternatives.

When statistics are missing or stale and the table's
:class:`~.stats.StatsPolicy` does not auto-analyze, the planner degrades to
the historical heuristic — intersect *every* usable index — which is always
correct, just not cost-ranked (``AccessPlan.stats_mode`` tells which mode
produced the plan).

Access paths
------------
* ``full-scan``      — no usable index, or every index plan costed above the
  scan; every row is examined.
* ``index-eq``       — hash/sorted index equality lookup.
* ``index-range``    — sorted index range scan (``<``, ``<=``, ``>``, ``>=``,
  BETWEEN-style AND pairs, and ``LIKE 'abc%'`` prefixes — the step label
  ``like-prefix(col)`` marks the latter).
* ``index-union``    — union of per-branch probes for an OR conjunct whose
  branches are equalities, IN lists, ranges or LIKE prefixes.
* ``fts_index_scan`` — full-text MATCH answered from the table's FTS index
  (posting-list intersection; prefix terms expand over the vocabulary).
* ``index-intersect``— several of the above intersected.

Ordering strategies
-------------------
* ``sort``           — materialise matches and sort them.
* ``top-k``          — bounded heap for ORDER BY + LIMIT (avoids a full sort).
* ``index-ordered``  — stream rows straight from a sorted index, stopping as
  soon as OFFSET + LIMIT matches are found.

The executor always re-evaluates the predicate on candidate rows, so every
plan — whatever the estimates said — produces exactly the rows a full scan
would.  Estimation errors cost time, never correctness, and are tracked as
quantiles in :class:`PlannerMetrics` (``status()["planner"]``).

Known limits
------------
* Single-column indexes only (conjuncts intersect separate indexes).
* Conjunct selectivities combine under the independence assumption — no
  correlation statistics, no join reordering.
* ``index-ordered`` needs a single ORDER BY key whose sorted index covers
  every row (the index skips NULLs), and no joins or aggregation.
* MATCH pushdown needs an FTS index covering every matched column, and uses
  a fixed selectivity prior (no term-frequency statistics at plan time).
* LIKE-prefix pushdown needs a sorted index on a TEXT column and a pattern
  with a literal prefix (``'abc%'`` yes, ``'%abc'`` no).

See ``docs/query-planner.md`` for the full vocabulary with examples, and
``examples/explain_demo.py`` for a runnable tour of every plan shape.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from .expressions import (
    BranchAtom,
    Expression,
    PredicateConstraints,
    RangeConstraint,
    extract_constraints,
)
from .index import SortedIndex
from .stats import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_MATCH_SELECTIVITY,
    DEFAULT_PREFIX_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    TableStats,
    prefix_upper_bound,
)
from .types import ColumnType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .table import Table

FULL_SCAN = "full-scan"
INDEX_EQ = "index-eq"
INDEX_RANGE = "index-range"
INDEX_UNION = "index-union"
FTS_INDEX_SCAN = "fts_index_scan"
INDEX_INTERSECT = "index-intersect"
#: Step label of a LIKE-prefix probe (an ``index-range`` under the hood).
LIKE_PREFIX = "like-prefix"

ORDER_SORT = "sort"
ORDER_TOP_K = "top-k"
ORDER_INDEX = "index-ordered"

#: How the plan was produced: no indexable constraints at all, the heuristic
#: intersect-everything fallback (statistics missing/stale, auto-analyze
#: off), or the statistics-driven cost model.
STATS_NONE = "none"
STATS_HEURISTIC = "heuristic"
STATS_COST = "cost"

# Cost model units: examining one stored row during the residual predicate
# re-check costs 1.  Index work is cheaper per row but pays a fixed probe
# fee, and intersecting a second step's matches costs per matched id.  The
# full scan additionally pays a small setup overhead (iterating the whole
# row store rather than a prepared candidate set).
COST_ROW = 1.0
COST_PROBE = 0.5
COST_INDEX_ROW = 0.2
COST_INTERSECT_ROW = 0.05
COST_SCAN_OVERHEAD = 1.0


@dataclass(frozen=True)
class StepEstimate:
    """Plan-time estimate of one access step of the chosen plan."""

    label: str
    estimated_rows: float
    cost: float


@dataclass(frozen=True)
class PlanAlternative:
    """One candidate plan the cost model considered (chosen or rejected)."""

    path: str
    steps: tuple[str, ...]
    estimated_rows: float
    cost: float
    chosen: bool = False

    def describe(self) -> str:
        marker = "*" if self.chosen else " "
        steps = " ∩ ".join(self.steps) if self.steps else "-"
        return (
            f"{marker} {self.path} via {steps} "
            f"est={self.estimated_rows:.0f} cost={self.cost:.1f}"
        )


@dataclass
class AccessPlan:
    """How the planner narrows the rows a predicate must examine."""

    path: str = FULL_SCAN
    #: Human-readable per-index steps, e.g. ``("index-range(published_at)",)``.
    steps: tuple[str, ...] = ()
    #: Candidate row ids (unordered); ``None`` means every row is a candidate.
    row_ids: set[int] | None = None
    #: Cost-model outputs (``None``/empty outside ``stats_mode == "cost"``).
    estimated_rows: float | None = None
    cost: float | None = None
    stats_mode: str = STATS_NONE
    step_estimates: tuple[StepEstimate, ...] = ()
    alternatives: tuple[PlanAlternative, ...] = ()

    @property
    def is_index_backed(self) -> bool:
        return self.row_ids is not None

    def candidate_count(self) -> int | None:
        return len(self.row_ids) if self.row_ids is not None else None


class PlannerMetrics:
    """Per-table planner counters surfaced through ``status()["planner"]``.

    Tracks plans by access path and stats mode, ANALYZE runs, and the
    estimation error of index-backed plans as a bounded sample of symmetric
    ratios ``max((est+1)/(actual+1), (actual+1)/(est+1))`` — 1.0 is a perfect
    estimate, 10.0 is an order of magnitude off in either direction.
    """

    def __init__(self, error_samples: int = 512) -> None:
        self.plans_by_path: Counter[str] = Counter()
        self.plans_by_mode: Counter[str] = Counter()
        self.analyze_runs = 0
        self._error_ratios: deque[float] = deque(maxlen=error_samples)

    def record_plan(self, plan: AccessPlan) -> None:
        self.plans_by_path[plan.path] += 1
        self.plans_by_mode[plan.stats_mode] += 1
        if plan.row_ids is not None and plan.estimated_rows is not None:
            actual = len(plan.row_ids)
            estimated = plan.estimated_rows
            self._error_ratios.append(
                max((estimated + 1) / (actual + 1), (actual + 1) / (estimated + 1))
            )

    def record_analyze(self) -> None:
        self.analyze_runs += 1

    @property
    def error_ratios(self) -> list[float]:
        return list(self._error_ratios)

    def snapshot(self) -> dict[str, Any]:
        return {
            "plans_by_path": dict(self.plans_by_path),
            "plans_by_mode": dict(self.plans_by_mode),
            "analyze_runs": self.analyze_runs,
            "estimation_error": estimation_error_summary(self.error_ratios),
        }


def estimation_error_summary(ratios: list[float]) -> dict[str, float | int]:
    """Quantile summary of estimation-error ratios (empty-safe)."""
    if not ratios:
        return {"samples": 0}
    ordered = sorted(ratios)

    def quantile(fraction: float) -> float:
        return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]

    return {
        "samples": len(ordered),
        "p50": round(quantile(0.50), 3),
        "p90": round(quantile(0.90), 3),
        "max": round(ordered[-1], 3),
    }


@dataclass
class _Step:
    """A candidate index probe: its label, estimate and deferred execution."""

    kind: str
    label: str
    est_rows: float
    probe: Callable[[], set[int]]


def _column_stats(stats: TableStats | None, column: str):
    return stats.column(column) if stats is not None else None


def _est_eq(stats: TableStats | None, column: str, value: Any, total: int) -> float:
    cs = _column_stats(stats, column)
    if cs is None:
        return DEFAULT_EQ_SELECTIVITY * total
    return cs.eq_rows(value)


def _est_in(stats: TableStats | None, column: str, values: tuple, total: int) -> float:
    cs = _column_stats(stats, column)
    if cs is None:
        return min(float(total), DEFAULT_EQ_SELECTIVITY * total * len(values))
    return cs.in_rows(values)


def _est_range(
    stats: TableStats | None, column: str, interval: RangeConstraint, total: int
) -> float:
    cs = _column_stats(stats, column)
    if cs is None:
        return DEFAULT_RANGE_SELECTIVITY * total
    return cs.range_rows(
        low=interval.low,
        high=interval.high,
        include_low=interval.include_low,
        include_high=interval.include_high,
    )


def _est_prefix(stats: TableStats | None, column: str, prefix: str, total: int) -> float:
    cs = _column_stats(stats, column)
    if cs is None:
        return DEFAULT_PREFIX_SELECTIVITY * total
    return cs.prefix_rows(prefix)


def _prefix_indexable(table: "Table", column: str) -> bool:
    """A LIKE prefix probes the index only for TEXT columns with a sorted
    index — non-text values LIKE-match through ``str()``, which does not
    agree with the index's native value order."""
    if not table.has_index(column):
        return False
    if not isinstance(table.index(column), SortedIndex):
        return False
    if not table.schema.has_column(column):
        return False
    return table.schema.column(column).column_type == ColumnType.TEXT


def _prefix_probe(index: SortedIndex, prefix: str) -> set[int]:
    return set(
        index.range(
            low=prefix,
            high=prefix_upper_bound(prefix),
            include_low=True,
            include_high=False,
        )
    )


def _union_step(
    table: "Table",
    atoms: list[BranchAtom],
    stats: TableStats | None,
    total: int,
) -> _Step | None:
    """Build the indexed-union step of one OR conjunct (``None`` when any
    branch cannot be answered from an index — a partial union would miss
    rows)."""
    probes: list[Callable[[], set[int]]] = []
    est = 0.0
    columns: set[str] = set()
    for atom in atoms:
        if atom.kind in ("eq", "in"):
            if not table.has_index(atom.column):
                return None
            index = table.index(atom.column)
            if atom.kind == "eq":
                probes.append(lambda index=index, value=atom.value: index.lookup(value))
                est += _est_eq(stats, atom.column, atom.value, total)
            else:
                probes.append(
                    lambda index=index, values=atom.values: index.lookup_many(values)
                )
                est += _est_in(stats, atom.column, atom.values, total)
        elif atom.kind == "range":
            interval = atom.interval
            if interval is None or not interval.is_bounded():
                return None
            if not table.has_index(atom.column):
                return None
            index = table.index(atom.column)
            if not isinstance(index, SortedIndex):
                return None
            probes.append(
                lambda index=index, rng=interval: set(
                    index.range(
                        low=rng.low,
                        high=rng.high,
                        include_low=rng.include_low,
                        include_high=rng.include_high,
                    )
                )
            )
            est += _est_range(stats, atom.column, interval, total)
        elif atom.kind == "prefix":
            if not _prefix_indexable(table, atom.column):
                return None
            index = table.index(atom.column)
            assert isinstance(index, SortedIndex)
            probes.append(lambda index=index, prefix=atom.value: _prefix_probe(index, prefix))
            est += _est_prefix(stats, atom.column, atom.value, total)
        else:  # pragma: no cover - extractor only emits the kinds above
            return None
        columns.add(atom.column)

    def probe() -> set[int]:
        union: set[int] = set()
        for branch_probe in probes:
            union |= branch_probe()
        return union

    label = f"{INDEX_UNION}({','.join(sorted(columns)) or '-'})"
    return _Step(INDEX_UNION, label, min(float(total), est), probe)


def _discover_steps(
    table: "Table",
    constraints: PredicateConstraints,
    stats: TableStats | None,
    total: int,
) -> list[_Step]:
    """Every index-answerable conjunct as a candidate step with an estimate."""
    steps: list[_Step] = []

    for column, value in constraints.equalities.items():
        if not table.has_index(column):
            continue
        index = table.index(column)
        steps.append(
            _Step(
                INDEX_EQ,
                f"{INDEX_EQ}({column})",
                _est_eq(stats, column, value, total),
                lambda index=index, value=value: index.lookup(value),
            )
        )

    for column, rng in constraints.ranges.items():
        if column in constraints.equalities or not rng.is_bounded():
            continue  # an equality on the same column is already tighter
        if not table.has_index(column):
            continue
        index = table.index(column)
        if not isinstance(index, SortedIndex):
            continue
        steps.append(
            _Step(
                INDEX_RANGE,
                f"{INDEX_RANGE}({column})",
                _est_range(stats, column, rng, total),
                lambda index=index, rng=rng: set(
                    index.range(
                        low=rng.low,
                        high=rng.high,
                        include_low=rng.include_low,
                        include_high=rng.include_high,
                    )
                ),
            )
        )

    for column, prefix in constraints.prefixes.items():
        if column in constraints.equalities or not _prefix_indexable(table, column):
            continue
        index = table.index(column)
        assert isinstance(index, SortedIndex)
        steps.append(
            _Step(
                LIKE_PREFIX,
                f"{LIKE_PREFIX}({column})",
                _est_prefix(stats, column, prefix, total),
                lambda index=index, prefix=prefix: _prefix_probe(index, prefix),
            )
        )

    for match_node in constraints.matches:
        fts = table.fts_index
        if fts is None or not set(match_node.match_columns) <= set(fts.columns):
            continue  # no covering FTS index — executor evaluates MATCH itself
        # The index covers a superset of the matched columns, so its matches
        # are a superset of the predicate's (a term found in one column is
        # found in the concatenated document); the executor re-checks.
        steps.append(
            _Step(
                FTS_INDEX_SCAN,
                f"{FTS_INDEX_SCAN}({','.join(fts.columns)})",
                DEFAULT_MATCH_SELECTIVITY * total,
                lambda fts=fts, query=match_node.query: fts.match_row_ids(query),
            )
        )

    for atoms in constraints.disjunctions:
        step = _union_step(table, atoms, stats, total)
        if step is not None:
            steps.append(step)

    return steps


def _single_or_intersect(kinds: set[str], count: int) -> str:
    return kinds.copy().pop() if len(kinds) == 1 and count == 1 else INDEX_INTERSECT


def _heuristic_plan(steps: list[_Step]) -> AccessPlan:
    """The historical plan: probe and intersect *every* usable step."""
    candidate: set[int] | None = None
    labels: list[str] = []
    kinds: set[str] = set()
    for step in steps:
        matches = step.probe()
        candidate = matches if candidate is None else candidate & matches
        labels.append(step.label)
        kinds.add(step.kind)
    assert candidate is not None
    return AccessPlan(
        path=_single_or_intersect(kinds, len(labels)),
        steps=tuple(labels),
        row_ids=candidate,
        stats_mode=STATS_HEURISTIC,
    )


def _cost_plan(steps: list[_Step], total: int) -> AccessPlan:
    """Enumerate candidate plans, cost them, probe only the cheapest one.

    Steps are ordered most-selective-first; the candidates are the full scan
    plus every prefix of that ordering (the classic greedy enumeration —
    adding a step is only worth its probe/intersect fee if it shrinks the
    residual re-check enough).  Combined selectivities multiply
    (independence assumption).
    """
    ordered = sorted(steps, key=lambda step: step.est_rows)
    scan_cost = total * COST_ROW + COST_SCAN_OVERHEAD
    alternatives: list[PlanAlternative] = [
        PlanAlternative(path=FULL_SCAN, steps=(), estimated_rows=float(total), cost=scan_cost)
    ]
    estimates: list[tuple[PlanAlternative, list[_Step], list[StepEstimate]]] = [
        (alternatives[0], [], [])
    ]
    for k in range(1, len(ordered) + 1):
        chosen = ordered[:k]
        combined = float(total)
        step_estimates: list[StepEstimate] = []
        cost = 0.0
        for position, step in enumerate(chosen):
            selectivity = (step.est_rows / total) if total else 0.0
            combined *= min(1.0, selectivity)
            step_cost = COST_PROBE + step.est_rows * COST_INDEX_ROW
            if position > 0:
                step_cost += step.est_rows * COST_INTERSECT_ROW
            step_estimates.append(StepEstimate(step.label, step.est_rows, round(step_cost, 3)))
            cost += step_cost
        cost += combined * COST_ROW  # residual predicate re-check
        kinds = {step.kind for step in chosen}
        alternative = PlanAlternative(
            path=_single_or_intersect(kinds, len(chosen)),
            steps=tuple(step.label for step in chosen),
            estimated_rows=combined,
            cost=cost,
        )
        alternatives.append(alternative)
        estimates.append((alternative, chosen, step_estimates))

    best_index = min(range(len(alternatives)), key=lambda i: alternatives[i].cost)
    best, best_steps, best_estimates = estimates[best_index]
    reported = tuple(
        PlanAlternative(
            path=alt.path,
            steps=alt.steps,
            estimated_rows=round(alt.estimated_rows, 1),
            cost=round(alt.cost, 1),
            chosen=(i == best_index),
        )
        for i, alt in enumerate(alternatives)
    )

    if not best_steps:  # every index plan costed above the scan
        return AccessPlan(
            path=FULL_SCAN,
            estimated_rows=float(total),
            cost=round(best.cost, 3),
            stats_mode=STATS_COST,
            alternatives=reported,
        )

    candidate: set[int] | None = None
    for step in best_steps:
        matches = step.probe()
        candidate = matches if candidate is None else candidate & matches
        if not candidate:
            break  # already empty: further intersection cannot add rows
    assert candidate is not None
    return AccessPlan(
        path=best.path,
        steps=best.steps,
        row_ids=candidate,
        estimated_rows=round(best.estimated_rows, 3),
        cost=round(best.cost, 3),
        stats_mode=STATS_COST,
        step_estimates=tuple(best_estimates),
        alternatives=reported,
    )


def plan_access(table: "Table", predicate: Any) -> AccessPlan:
    """Choose an access path for ``predicate`` against ``table``.

    With fresh statistics (see :meth:`Table.planning_stats`) the cost model
    picks the cheapest subset of index-answerable conjuncts; without them it
    degrades to intersecting every usable index.  Either way the candidate
    set is a superset of the true matches and the executor re-checks.
    """
    if not isinstance(predicate, Expression):
        return AccessPlan()
    constraints = extract_constraints(predicate)
    if constraints.is_empty():
        return AccessPlan()

    stats = table.planning_stats()
    total = table.row_count()
    steps = _discover_steps(table, constraints, stats, total)
    if not steps:
        return AccessPlan()
    if stats is None:
        return _heuristic_plan(steps)
    return _cost_plan(steps, total)


@dataclass
class QueryPlan:
    """The full plan of one query, as reported by ``Query.explain()``."""

    table: str
    access_path: str
    access_steps: tuple[str, ...] = ()
    candidate_rows: int | None = None
    table_rows: int = 0
    order_strategy: str | None = None
    order_column: str | None = None
    projection_pushdown: tuple[str, ...] | None = None
    uses_aggregation: bool = False
    joined_tables: tuple[str, ...] = ()
    limit: int | None = None
    offset: int = 0
    #: Cost-model outputs (``None``/empty when the plan was not cost-based).
    estimated_rows: float | None = None
    access_cost: float | None = None
    stats_mode: str = STATS_NONE
    step_estimates: tuple[StepEstimate, ...] = ()
    alternatives: tuple[PlanAlternative, ...] = ()
    _access: AccessPlan | None = field(default=None, repr=False, compare=False)

    def describe(self) -> str:
        """One-line, EXPLAIN-style summary of the plan."""
        parts = [f"{self.table}: {self.access_path}"]
        if self.access_steps:
            parts.append("via " + " ∩ ".join(self.access_steps))
        if self.candidate_rows is not None:
            parts.append(f"~{self.candidate_rows}/{self.table_rows} rows")
        if self.estimated_rows is not None:
            parts.append(f"est={self.estimated_rows:.0f}")
        if self.access_cost is not None:
            parts.append(f"cost={self.access_cost:.1f}")
        rejected = sum(1 for alt in self.alternatives if not alt.chosen)
        if rejected:
            parts.append(f"rejected={rejected}")
        if self.order_strategy:
            order = self.order_strategy
            if self.order_column:
                order += f"({self.order_column})"
            parts.append(f"order={order}")
        if self.projection_pushdown is not None:
            parts.append("project=" + ",".join(self.projection_pushdown))
        if self.uses_aggregation:
            parts.append("aggregate")
        for joined in self.joined_tables:
            parts.append(f"join({joined})")
        if self.limit is not None:
            parts.append(f"limit={self.limit}")
        if self.offset:
            parts.append(f"offset={self.offset}")
        return " ".join(parts)

    def describe_verbose(self) -> str:
        """Multi-line summary: the plan, its step estimates, and every
        alternative the cost model considered (``*`` marks the chosen one)."""
        lines = [self.describe()]
        for estimate in self.step_estimates:
            lines.append(
                f"  step {estimate.label} est={estimate.estimated_rows:.0f}"
                f" cost={estimate.cost:.1f}"
            )
        for alternative in self.alternatives:
            lines.append(f"  {alternative.describe()}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.describe()
