"""Index-aware access planning for the relational engine.

The planner turns a predicate (via the constraint extractor of
:mod:`.expressions`) plus the table's secondary indexes into an
:class:`AccessPlan` — a candidate row-id set and a label describing how it was
derived.  :class:`QueryPlan` extends that with the ordering strategy chosen by
:meth:`~repro.storage.rdbms.query.Query.execute` and is what
``Query.explain()`` returns.

Access paths
------------
* ``full-scan``      — no usable index; every row is examined.
* ``index-eq``       — hash/sorted index equality lookup.
* ``index-range``    — sorted index range scan (``<``, ``<=``, ``>``, ``>=``,
  BETWEEN-style AND pairs).
* ``index-union``    — union of equality lookups for an OR-of-equality or
  IN-list conjunct.
* ``fts_index_scan`` — full-text MATCH answered from the table's FTS index
  (posting-list intersection; prefix terms expand over the vocabulary).
* ``index-intersect``— several of the above intersected.

Ordering strategies
-------------------
* ``sort``           — materialise matches and sort them.
* ``top-k``          — bounded heap for ORDER BY + LIMIT (avoids a full sort).
* ``index-ordered``  — stream rows straight from a sorted index, stopping as
  soon as OFFSET + LIMIT matches are found.

The executor always re-evaluates the predicate on candidate rows, so every
plan produces exactly the rows a full scan would.

Known limits
------------
* No cost model: every usable index is intersected, never chosen between.
* Single-column indexes only (conjuncts intersect separate indexes).
* ``index-ordered`` needs a single ORDER BY key whose sorted index covers
  every row (the index skips NULLs), and no joins or aggregation.
* OR pushdown needs *every* branch to be an indexed equality/IN.
* MATCH pushdown needs an FTS index covering every matched column; other
  MATCH conjuncts fall back to predicate re-evaluation (full scan unless
  another conjunct is indexed).
* No LIKE-prefix pushdown and no planner statistics (histograms, join
  reordering).

See ``docs/query-planner.md`` for the full vocabulary with examples, and
``examples/explain_demo.py`` for a runnable tour of every plan shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from .expressions import Expression, extract_constraints
from .index import SortedIndex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .table import Table

FULL_SCAN = "full-scan"
INDEX_EQ = "index-eq"
INDEX_RANGE = "index-range"
INDEX_UNION = "index-union"
FTS_INDEX_SCAN = "fts_index_scan"
INDEX_INTERSECT = "index-intersect"

ORDER_SORT = "sort"
ORDER_TOP_K = "top-k"
ORDER_INDEX = "index-ordered"


@dataclass
class AccessPlan:
    """How the planner narrows the rows a predicate must examine."""

    path: str = FULL_SCAN
    #: Human-readable per-index steps, e.g. ``("index-range(published_at)",)``.
    steps: tuple[str, ...] = ()
    #: Candidate row ids (unordered); ``None`` means every row is a candidate.
    row_ids: set[int] | None = None

    @property
    def is_index_backed(self) -> bool:
        return self.row_ids is not None

    def candidate_count(self) -> int | None:
        return len(self.row_ids) if self.row_ids is not None else None


def plan_access(table: "Table", predicate: Any) -> AccessPlan:
    """Choose an access path for ``predicate`` against ``table``.

    Intersects the candidate sets of every index-answerable conjunct:
    equalities through any index, ranges through sorted indexes, and
    OR-of-equality disjunctions through an index union (only when *every*
    branch column is indexed — otherwise the union would miss rows).
    """
    if not isinstance(predicate, Expression):
        return AccessPlan()
    constraints = extract_constraints(predicate)
    if constraints.is_empty():
        return AccessPlan()

    candidate: set[int] | None = None
    steps: list[str] = []
    kinds: set[str] = set()

    def intersect(matches: set[int]) -> None:
        nonlocal candidate
        candidate = matches if candidate is None else candidate & matches

    for column, value in constraints.equalities.items():
        if not table.has_index(column):
            continue
        intersect(table.index(column).lookup(value))
        steps.append(f"{INDEX_EQ}({column})")
        kinds.add(INDEX_EQ)

    for column, rng in constraints.ranges.items():
        if column in constraints.equalities or not rng.is_bounded():
            continue  # equality already gave a tighter set
        if not table.has_index(column):
            continue
        index = table.index(column)
        if not isinstance(index, SortedIndex):
            continue
        matches = set(
            index.range(
                low=rng.low,
                high=rng.high,
                include_low=rng.include_low,
                include_high=rng.include_high,
            )
        )
        intersect(matches)
        steps.append(f"{INDEX_RANGE}({column})")
        kinds.add(INDEX_RANGE)

    for match_node in constraints.matches:
        fts = table.fts_index
        if fts is None or not set(match_node.match_columns) <= set(fts.columns):
            continue  # no covering FTS index — executor evaluates MATCH itself
        # The index covers a superset of the matched columns, so its matches
        # are a superset of the predicate's (a term found in one column is
        # found in the concatenated document); the executor re-checks.
        intersect(fts.match_row_ids(match_node.query))
        steps.append(f"{FTS_INDEX_SCAN}({','.join(fts.columns)})")
        kinds.add(FTS_INDEX_SCAN)

    for branches in constraints.disjunctions:
        by_column: dict[str, list[Any]] = {}
        for column, value in branches:
            by_column.setdefault(column, []).append(value)
        if not all(table.has_index(column) for column in by_column):
            continue
        union: set[int] = set()
        for column, values in by_column.items():
            union |= table.index(column).lookup_many(values)
        intersect(union)
        steps.append(f"{INDEX_UNION}({','.join(sorted(by_column))})")
        kinds.add(INDEX_UNION)

    if candidate is None:
        return AccessPlan()
    path = kinds.pop() if len(kinds) == 1 and len(steps) == 1 else INDEX_INTERSECT
    return AccessPlan(path=path, steps=tuple(steps), row_ids=candidate)


@dataclass
class QueryPlan:
    """The full plan of one query, as reported by ``Query.explain()``."""

    table: str
    access_path: str
    access_steps: tuple[str, ...] = ()
    candidate_rows: int | None = None
    table_rows: int = 0
    order_strategy: str | None = None
    order_column: str | None = None
    projection_pushdown: tuple[str, ...] | None = None
    uses_aggregation: bool = False
    joined_tables: tuple[str, ...] = ()
    limit: int | None = None
    offset: int = 0
    _access: AccessPlan = field(default=None, repr=False, compare=False)  # type: ignore[assignment]

    def describe(self) -> str:
        """One-line, EXPLAIN-style summary of the plan."""
        parts = [f"{self.table}: {self.access_path}"]
        if self.access_steps:
            parts.append("via " + " ∩ ".join(self.access_steps))
        if self.candidate_rows is not None:
            parts.append(f"~{self.candidate_rows}/{self.table_rows} rows")
        if self.order_strategy:
            order = self.order_strategy
            if self.order_column:
                order += f"({self.order_column})"
            parts.append(f"order={order}")
        if self.projection_pushdown is not None:
            parts.append("project=" + ",".join(self.projection_pushdown))
        if self.uses_aggregation:
            parts.append("aggregate")
        for joined in self.joined_tables:
            parts.append(f"join({joined})")
        if self.limit is not None:
            parts.append(f"limit={self.limit}")
        if self.offset:
            parts.append(f"offset={self.offset}")
        return " ".join(parts)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.describe()
