"""Secondary indexes: hash indexes for equality and sorted indexes for ranges.

Hash indexes answer equality (and OR-of-equality / IN-list) lookups; sorted
indexes additionally answer range scans and can stream row ids in column
order, which the query planner uses for index-ordered ORDER BY execution.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Any, Iterable, Iterator


class HashIndex:
    """Equality index mapping a column value to the set of row ids holding it."""

    kind = "hash"

    def __init__(self, column: str) -> None:
        self.column = column
        self._buckets: dict[Any, set[int]] = defaultdict(set)

    def add(self, row_id: int, value: Any) -> None:
        if value is not None:
            self._buckets[value].add(row_id)

    def remove(self, row_id: int, value: Any) -> None:
        if value is None:
            return
        bucket = self._buckets.get(value)
        if bucket is not None:
            bucket.discard(row_id)
            if not bucket:
                del self._buckets[value]

    def lookup(self, value: Any) -> set[int]:
        """Row ids whose indexed column equals ``value``."""
        return set(self._buckets.get(value, set()))

    def lookup_many(self, values: Iterable[Any]) -> set[int]:
        """Union of row ids matching any of ``values`` (IN-list / OR lookup)."""
        out: set[int] = set()
        for value in values:
            bucket = self._buckets.get(value)
            if bucket:
                out |= bucket
        return out

    def values(self) -> list[Any]:
        """Distinct indexed values (unsorted)."""
        return list(self._buckets)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class SortedIndex:
    """Ordered index supporting equality and range lookups.

    Keeps ``(value, row_id)`` pairs in a sorted list; adequate for the
    read-mostly operational tables of the platform.
    """

    kind = "sorted"

    def __init__(self, column: str) -> None:
        self.column = column
        self._entries: list[tuple[Any, int]] = []

    def add(self, row_id: int, value: Any) -> None:
        if value is None:
            return
        bisect.insort(self._entries, (value, row_id))

    def remove(self, row_id: int, value: Any) -> None:
        if value is None:
            return
        index = bisect.bisect_left(self._entries, (value, row_id))
        if index < len(self._entries) and self._entries[index] == (value, row_id):
            del self._entries[index]

    def lookup(self, value: Any) -> set[int]:
        """Row ids whose indexed column equals ``value``."""
        return set(self.range(low=value, high=value, include_low=True, include_high=True))

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[int]:
        """Row ids whose value falls in the requested range (sorted by value)."""
        if low is None:
            start = 0
        else:
            key = (low,) if include_low else (low, float("inf"))
            start = bisect.bisect_left(self._entries, key)
            if not include_low:
                while start < len(self._entries) and self._entries[start][0] == low:
                    start += 1
        if high is None:
            stop = len(self._entries)
        else:
            stop = bisect.bisect_right(self._entries, (high, float("inf")))
            if not include_high:
                while stop > 0 and self._entries[stop - 1][0] == high:
                    stop -= 1
        return [row_id for _value, row_id in self._entries[start:stop]]

    def lookup_many(self, values: Iterable[Any]) -> set[int]:
        """Union of row ids matching any of ``values`` (IN-list / OR lookup)."""
        out: set[int] = set()
        for value in values:
            out |= self.lookup(value)
        return out

    def iter_ids_ordered(self, descending: bool = False) -> Iterator[int]:
        """Yield row ids in indexed-column order.

        Ties (equal column values) are always yielded in ascending row-id
        order — in both directions — so the stream matches what a *stable*
        sort of the rows (which are stored in row-id order) would produce.
        """
        entries = self._entries
        if not descending:
            for _value, row_id in entries:
                yield row_id
            return
        i = len(entries) - 1
        while i >= 0:
            j = i
            value = entries[i][0]
            while j >= 0 and entries[j][0] == value:
                j -= 1
            for k in range(j + 1, i + 1):
                yield entries[k][1]
            i = j

    def min_value(self) -> Any:
        return self._entries[0][0] if self._entries else None

    def max_value(self) -> Any:
        return self._entries[-1][0] if self._entries else None

    def __len__(self) -> int:
        return len(self._entries)


def build_index(kind: str, column: str) -> HashIndex | SortedIndex:
    """Factory used by :class:`~repro.storage.rdbms.table.Table.create_index`."""
    if kind == "hash":
        return HashIndex(column)
    if kind == "sorted":
        return SortedIndex(column)
    raise ValueError(f"unknown index kind: {kind!r}")


def bulk_load(index: HashIndex | SortedIndex, rows: Iterable[tuple[int, Any]]) -> None:
    """Populate ``index`` from ``(row_id, value)`` pairs."""
    for row_id, value in rows:
        index.add(row_id, value)
