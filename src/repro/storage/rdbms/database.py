"""The embedded relational database.

``Database`` ties together tables, the query builder, the SQL front-end,
transactions and the write-ahead log.  When constructed with a data directory
every mutation is logged and replayed on the next open, giving the platform's
operational store restart durability.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping, Sequence

from ...errors import StorageError, TableNotFound
from .planner import estimation_error_summary
from .query import Query, QueryResult
from .schema import TableSchema
from .stats import StatsPolicy, TableStats
from .sql import (
    CreateTableStatement,
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
    parse_sql,
)
from .table import Table
from .transactions import Transaction
from .wal import WriteAheadLog


class Database:
    """A collection of tables with SQL and query-builder front-ends."""

    def __init__(
        self,
        data_dir: Path | str | None = None,
        wal_enabled: bool = True,
        stats_policy: StatsPolicy | None = None,
    ) -> None:
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.stats_policy = stats_policy or StatsPolicy()
        self._tables: dict[str, Table] = {}
        self._active_transaction: Transaction | None = None
        self._wal: WriteAheadLog | None = None
        self._replaying = False
        if wal_enabled:
            if self.data_dir is not None:
                self._wal = WriteAheadLog(self.data_dir / "wal.jsonl")
                self._replay_wal()
            else:
                # In-memory WAL: no durability, but every committed mutation
                # still carries an LSN so CDC can tail the database.
                self._wal = WriteAheadLog()

    # ----------------------------------------------------------------- tables

    def create_table(self, schema: TableSchema, if_not_exists: bool = False) -> Table:
        """Create a table from ``schema`` (optionally tolerating re-creation)."""
        if schema.name in self._tables:
            if if_not_exists:
                return self._tables[schema.name]
            raise StorageError(f"table {schema.name!r} already exists")
        table = Table(schema, stats_policy=self.stats_policy)
        self._tables[schema.name] = table
        self._log("create_table", schema.name, {"schema": _schema_to_payload(schema)})
        return table

    def drop_table(self, name: str) -> None:
        """Drop a table (raises when it does not exist)."""
        if name not in self._tables:
            raise TableNotFound(f"no table named {name!r}")
        del self._tables[name]
        self._log("drop_table", name, {})

    def create_index(self, table_name: str, column: str, kind: str = "hash") -> None:
        """Create a secondary index on ``table_name.column``.

        ``kind`` is ``"hash"`` (equality only) or ``"sorted"`` (equality,
        range scans and index-ordered ORDER BY).  Unlike
        :meth:`Table.create_index`, indexes created here are WAL-logged and
        therefore rebuilt automatically when the database reopens.
        """
        self.table(table_name).create_index(column, kind=kind)
        self._log("create_index", table_name, {"column": column, "kind": kind})

    def create_fts_index(self, table_name: str, columns: Sequence[str]) -> None:
        """Create a full-text index on ``table_name`` over ``columns``.

        The index backs the planner's ``fts_index_scan`` access path for
        MATCH predicates and is maintained synchronously by every write.
        WAL-logged, so it is rebuilt automatically when the database reopens.
        """
        self.table(table_name).create_fts_index(tuple(columns))
        self._log("create_fts_index", table_name, {"columns": list(columns)})

    def table(self, name: str) -> Table:
        """Return the table named ``name`` or raise :class:`TableNotFound`."""
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFound(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # ----------------------------------------------------------------- writes

    def insert(self, table_name: str, row: Mapping[str, Any]) -> int:
        """Insert one row into ``table_name``."""
        table = self.table(table_name)
        self._capture(table_name)
        row_id = table.insert(row)
        self._log("insert", table_name, {"row": _row_to_payload(table, row)})
        return row_id

    def insert_many(self, table_name: str, rows: list[Mapping[str, Any]]) -> list[int]:
        """Insert several rows into ``table_name``."""
        return [self.insert(table_name, row) for row in rows]

    def upsert(self, table_name: str, row: Mapping[str, Any]) -> int:
        """Insert or update by primary key."""
        table = self.table(table_name)
        self._capture(table_name)
        row_id = table.upsert(row)
        self._log("upsert", table_name, {"row": _row_to_payload(table, row)})
        return row_id

    def update(self, table_name: str, predicate, changes: Mapping[str, Any]) -> int:
        """Update rows of ``table_name`` matching ``predicate``."""
        table = self.table(table_name)
        self._capture(table_name)
        pk = table.schema.primary_key
        affected_keys: list[Any] = []
        if pk is not None and self._wal is not None:
            affected_keys = [row[pk] for row in table.select(predicate)]
        updated = table.update_rows(predicate, changes)
        # Durability: log the post-update state of the affected rows as upserts
        # (requires a primary key; tables without one rely on checkpoints).
        for key in affected_keys:
            row = table.get(key)
            if row is not None:
                self._log("upsert", table_name, {"row": _row_to_payload(table, row)})
        return updated

    def delete(self, table_name: str, predicate) -> int:
        """Delete rows of ``table_name`` matching ``predicate``."""
        table = self.table(table_name)
        self._capture(table_name)
        pk = table.schema.primary_key
        doomed: list[tuple[Any, dict[str, Any]]] = []
        if pk is not None and self._wal is not None:
            doomed = [
                (row[pk], _row_to_payload(table, row)) for row in table.select(predicate)
            ]
        deleted = table.delete_rows(predicate)
        # The deleted row travels with the record so CDC consumers can route
        # the tombstone to the right warehouse partition.
        for key, payload in doomed:
            self._log("delete_pk", table_name, {"primary_key": key, "row": payload})
        return deleted

    # ------------------------------------------------------------- statistics

    def analyze(self, table_name: str | None = None) -> dict[str, TableStats]:
        """Collect planner statistics (ANALYZE) for one table or all of them.

        Returns the fresh :class:`~.stats.TableStats` snapshots by table
        name.  Explicit analysis is only needed when the database was built
        with ``StatsPolicy(auto_analyze=False)`` — by default the planner
        re-analyzes stale tables transparently at plan time.
        """
        names = [table_name] if table_name is not None else self.table_names()
        return {name: self.table(name).analyze() for name in names}

    def planner_status(self) -> dict[str, Any]:
        """Aggregated planner counters across every table.

        ``plans_by_path`` / ``plans_by_mode`` count every planned access,
        ``analyze_runs`` counts statistics rebuilds, ``estimation_error``
        summarises the estimated-vs-actual row ratios of index-backed plans
        (1.0 = perfect), and ``tables`` reports each table's statistics
        freshness.
        """
        plans_by_path: dict[str, int] = {}
        plans_by_mode: dict[str, int] = {}
        analyze_runs = 0
        ratios: list[float] = []
        tables: dict[str, dict[str, Any]] = {}
        for name in self.table_names():
            table = self.table(name)
            metrics = table.planner_metrics
            for path, count in metrics.plans_by_path.items():
                plans_by_path[path] = plans_by_path.get(path, 0) + count
            for mode, count in metrics.plans_by_mode.items():
                plans_by_mode[mode] = plans_by_mode.get(mode, 0) + count
            analyze_runs += metrics.analyze_runs
            ratios.extend(metrics.error_ratios)
            stats = table.statistics()
            tables[name] = {
                "stats_state": table.stats_state(),
                "analyzed_rows": stats.row_count if stats is not None else None,
                "analyzed_columns": sorted(stats.columns) if stats is not None else [],
            }
        return {
            "plans_by_path": plans_by_path,
            "plans_by_mode": plans_by_mode,
            "analyze_runs": analyze_runs,
            "estimation_error": estimation_error_summary(ratios),
            "tables": tables,
        }

    # ------------------------------------------------------------------ reads

    def query(self, table_name: str) -> Query:
        """Start a fluent query against ``table_name``."""
        return Query(self.table(table_name))

    def get(self, table_name: str, primary_key_value: Any) -> dict[str, Any] | None:
        """Point lookup by primary key."""
        return self.table(table_name).get(primary_key_value)

    # ------------------------------------------------------------------- SQL

    def execute(self, sql: str) -> QueryResult:
        """Parse and execute one SQL statement.

        Always returns a :class:`QueryResult`; for DML statements the result
        holds a single row reporting the number of affected rows.
        """
        statement = parse_sql(sql)
        return self._execute_statement(statement)

    def _execute_statement(self, statement: Statement) -> QueryResult:
        if isinstance(statement, CreateTableStatement):
            self.create_table(statement.schema)
            return QueryResult(rows=[{"created": statement.schema.name}], columns=["created"])
        if isinstance(statement, InsertStatement):
            for row in statement.rows:
                self.insert(statement.table, row)
            return QueryResult(rows=[{"inserted": len(statement.rows)}], columns=["inserted"])
        if isinstance(statement, UpdateStatement):
            updated = self.update(statement.table, statement.where, statement.changes)
            return QueryResult(rows=[{"updated": updated}], columns=["updated"])
        if isinstance(statement, DeleteStatement):
            deleted = self.delete(statement.table, statement.where)
            return QueryResult(rows=[{"deleted": deleted}], columns=["deleted"])
        if isinstance(statement, SelectStatement):
            return self._execute_select(statement)
        raise StorageError(f"unsupported statement type: {type(statement).__name__}")

    def _execute_select(self, statement: SelectStatement) -> QueryResult:
        query = self.query(statement.table)
        if statement.where is not None:
            query = query.where(statement.where)
        if statement.aggregates:
            query = query.aggregate(**statement.aggregates)
        if statement.group_by:
            query = query.group_by(*statement.group_by)
        if statement.columns and not statement.aggregates:
            query = query.select(*statement.columns)
        for column, descending in statement.order_by:
            query = query.order_by(column, descending=descending)
        if statement.limit is not None:
            query = query.limit(statement.limit)
        if statement.offset:
            query = query.offset(statement.offset)
        return query.execute()

    # ----------------------------------------------------------- transactions

    def transaction(self) -> Transaction:
        """Open a transaction (usable as a context manager)."""
        if self._active_transaction is not None and self._active_transaction.active:
            raise StorageError("a transaction is already active")
        self._active_transaction = Transaction(self)
        return self._active_transaction

    def _capture(self, table_name: str) -> None:
        if self._active_transaction is not None and self._active_transaction.active:
            self._active_transaction.capture(table_name)

    def _end_transaction(self, transaction: Transaction) -> None:
        if self._active_transaction is transaction:
            self._active_transaction = None

    # -------------------------------------------------------------------- WAL

    @property
    def wal(self) -> WriteAheadLog | None:
        """The write-ahead log (``None`` only when WAL is disabled)."""
        return self._wal

    def wal_lsn(self) -> int:
        """The LSN of the most recent committed mutation (0 without a WAL)."""
        return self._wal.last_lsn if self._wal is not None else 0

    def _log(self, operation: str, table: str, payload: dict[str, Any]) -> None:
        if self._wal is not None and not self._replaying:
            self._wal.append(operation, table, payload)

    def _replay_wal(self) -> None:
        assert self._wal is not None
        self._replaying = True
        try:
            for record in self._wal.replay():
                if record.operation == "create_table":
                    schema = _schema_from_payload(record.payload["schema"])
                    if schema.name not in self._tables:
                        self._tables[schema.name] = Table(
                            schema, stats_policy=self.stats_policy
                        )
                elif record.operation == "drop_table":
                    self._tables.pop(record.table, None)
                elif record.operation == "create_index":
                    table = self._tables.get(record.table)
                    if table is not None:
                        table.create_index(
                            record.payload["column"], kind=record.payload.get("kind", "hash")
                        )
                elif record.operation == "create_fts_index":
                    table = self._tables.get(record.table)
                    if table is not None:
                        table.create_fts_index(tuple(record.payload.get("columns", ())))
                elif record.operation in ("insert", "upsert"):
                    table = self._tables.get(record.table)
                    if table is None:
                        continue
                    row = _row_from_payload(table, record.payload["row"])
                    if record.operation == "insert":
                        table.insert(row)
                    else:
                        table.upsert(row)
                elif record.operation == "delete_pk":
                    table = self._tables.get(record.table)
                    pk = table.schema.primary_key if table is not None else None
                    if table is not None and pk is not None:
                        key = record.payload["primary_key"]
                        from .expressions import col as _col

                        table.delete_rows(_col(pk) == key)
        finally:
            self._replaying = False

    def checkpoint(self) -> None:
        """Truncate the WAL after the state has been migrated/persisted elsewhere."""
        if self._wal is not None:
            self._wal.truncate()


# ------------------------------------------------------------- WAL payloads

def _schema_to_payload(schema: TableSchema) -> dict[str, Any]:
    return {
        "name": schema.name,
        "primary_key": schema.primary_key,
        "columns": [
            {
                "name": column.name,
                "type": column.column_type.value,
                "nullable": column.nullable,
                "unique": column.unique,
                "default": column.default,
            }
            for column in schema.columns
        ],
    }


def _schema_from_payload(payload: dict[str, Any]) -> TableSchema:
    from .schema import Column
    from .types import ColumnType

    columns = tuple(
        Column(
            name=column["name"],
            column_type=ColumnType(column["type"]),
            nullable=column["nullable"],
            unique=column["unique"],
            default=column["default"],
        )
        for column in payload["columns"]
    )
    return TableSchema(name=payload["name"], columns=columns, primary_key=payload["primary_key"])


def _row_to_payload(table: Table, row: Mapping[str, Any]) -> dict[str, Any]:
    normalized = table.schema.normalize_row(row)
    return {
        name: table.schema.column(name).column_type.to_storage(value)
        for name, value in normalized.items()
    }


def _row_from_payload(table: Table, payload: Mapping[str, Any]) -> dict[str, Any]:
    return {
        name: table.schema.column(name).column_type.from_storage(value)
        for name, value in payload.items()
        if table.schema.has_column(name)
    }
