"""In-memory table with constraint checking and secondary indexes.

Reads go through the access planner (:mod:`.planner`): equality, range and
OR-of-equality conjuncts of an :class:`~.expressions.Expression` predicate are
answered from the table's indexes before the predicate is re-evaluated on the
surviving candidate rows, and sorted indexes can stream rows in column order
for index-ordered ORDER BY execution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping, Sequence

from ...errors import ColumnNotFound, ConstraintViolation, StorageError
from .expressions import Expression
from .index import HashIndex, SortedIndex, build_index
from .planner import AccessPlan, PlannerMetrics, plan_access
from .schema import TableSchema
from .stats import StatsPolicy, TableStats, build_table_stats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..fts.index import TableFtsIndex


class Table:
    """One table of the relational engine.

    Rows are stored as dictionaries keyed by an internal integer row id.  The
    primary key (when declared) and every UNIQUE column are backed by a hash
    index; additional indexes can be created explicitly.

    The table also owns its planner statistics (:mod:`.stats`): every write
    bumps a staleness counter, :meth:`analyze` snapshots per-column
    histograms/NDV over the indexed columns, and :meth:`planning_stats`
    hands the planner a fresh snapshot (re-analyzing on demand when the
    :class:`~.stats.StatsPolicy` allows it).
    """

    def __init__(self, schema: TableSchema, stats_policy: StatsPolicy | None = None) -> None:
        self.schema = schema
        self._rows: dict[int, dict[str, Any]] = {}
        self._next_row_id = 1
        self._indexes: dict[str, HashIndex | SortedIndex] = {}
        self._fts: "TableFtsIndex | None" = None
        self.stats_policy = stats_policy or StatsPolicy()
        self.planner_metrics = PlannerMetrics()
        self._stats: TableStats | None = None
        self._writes_since_analyze = 0
        for column in schema.unique_columns():
            self._indexes[column] = HashIndex(column)

    # ------------------------------------------------------------ properties

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def row_count(self) -> int:
        return len(self._rows)

    # --------------------------------------------------------------- indexes

    def create_index(self, column: str, kind: str = "hash") -> None:
        """Create a secondary index on ``column`` (replacing any existing one)."""
        self.schema.column(column)
        index = build_index(kind, column)
        for row_id, row in self._rows.items():
            index.add(row_id, row.get(column))
        self._indexes[column] = index
        # Statistics cover the indexed columns; a new index needs a re-analyze
        # before the cost model can estimate through it.
        self.invalidate_stats()

    def has_index(self, column: str) -> bool:
        return column in self._indexes

    def index(self, column: str) -> HashIndex | SortedIndex:
        if column not in self._indexes:
            raise StorageError(f"table {self.name!r} has no index on {column!r}")
        return self._indexes[column]

    def create_fts_index(self, columns: Sequence[str]) -> None:
        """Create (or rebuild) the table's full-text index over ``columns``.

        The index is maintained synchronously by every write path, so its
        matches are always a valid candidate superset for the planner's
        ``fts_index_scan`` access path.
        """
        from ..fts.index import TableFtsIndex  # deferred: fts builds on storage

        for column in columns:
            self.schema.column(column)  # validates the column exists
        fts = TableFtsIndex(columns)
        for row_id, row in self._rows.items():
            fts.add_row(row_id, row)
        self._fts = fts

    def has_fts_index(self) -> bool:
        return self._fts is not None

    @property
    def fts_index(self) -> "TableFtsIndex | None":
        return self._fts

    def _fts_add(self, row_id: int, row: Mapping[str, Any]) -> None:
        if self._fts is not None:
            self._fts.add_row(row_id, row)

    def _fts_update(self, row_id: int, old_row: Mapping[str, Any], new_row: Mapping[str, Any]) -> None:
        if self._fts is not None and any(
            old_row.get(column) != new_row.get(column) for column in self._fts.columns
        ):
            self._fts.add_row(row_id, new_row)

    def _fts_remove(self, row_id: int) -> None:
        if self._fts is not None:
            self._fts.remove_row(row_id)

    # ---------------------------------------------------------------- writes

    def _check_unique(self, row: Mapping[str, Any], ignore_row_id: int | None = None) -> None:
        for column in self.schema.unique_columns():
            value = row.get(column)
            if value is None:
                continue
            matches = self._indexes[column].lookup(value)
            matches.discard(ignore_row_id)
            if matches:
                raise ConstraintViolation(
                    f"duplicate value {value!r} for unique column "
                    f"{column!r} of table {self.name!r}"
                )

    def insert(self, row: Mapping[str, Any]) -> int:
        """Insert a row, returning its internal row id."""
        normalized = self.schema.normalize_row(row)
        self._check_unique(normalized)
        row_id = self._next_row_id
        self._next_row_id += 1
        self._rows[row_id] = normalized
        for column, index in self._indexes.items():
            index.add(row_id, normalized.get(column))
        self._fts_add(row_id, normalized)
        self._note_writes(1)
        return row_id

    def insert_many(self, rows: list[Mapping[str, Any]]) -> list[int]:
        """Insert several rows (not atomic — use a transaction for atomicity)."""
        return [self.insert(row) for row in rows]

    def update_rows(
        self, predicate: Expression | Callable[[dict], bool] | None, changes: Mapping[str, Any]
    ) -> int:
        """Update every row matching ``predicate``; returns the number updated."""
        normalized_changes = self.schema.normalize_update(changes)
        updated = 0
        for row_id in list(self._iter_matching_ids(predicate)):
            old_row = self._rows[row_id]
            new_row = dict(old_row)
            new_row.update(normalized_changes)
            self._check_unique(new_row, ignore_row_id=row_id)
            for column, index in self._indexes.items():
                if old_row.get(column) != new_row.get(column):
                    index.remove(row_id, old_row.get(column))
                    index.add(row_id, new_row.get(column))
            self._rows[row_id] = new_row
            self._fts_update(row_id, old_row, new_row)
            updated += 1
        self._note_writes(updated)
        return updated

    def delete_rows(self, predicate: Expression | Callable[[dict], bool] | None) -> int:
        """Delete every row matching ``predicate``; returns the number deleted."""
        deleted = 0
        for row_id in list(self._iter_matching_ids(predicate)):
            row = self._rows.pop(row_id)
            for column, index in self._indexes.items():
                index.remove(row_id, row.get(column))
            self._fts_remove(row_id)
            deleted += 1
        self._note_writes(deleted)
        return deleted

    def upsert(self, row: Mapping[str, Any]) -> int:
        """Insert, or update the existing row with the same primary key."""
        pk = self.schema.primary_key
        if pk is None:
            raise StorageError(f"table {self.name!r} has no primary key for upsert")
        normalized = self.schema.normalize_row(row)
        existing = self._indexes[pk].lookup(normalized[pk])
        if existing:
            (row_id,) = existing
            old_row = self._rows[row_id]
            for column, index in self._indexes.items():
                if old_row.get(column) != normalized.get(column):
                    index.remove(row_id, old_row.get(column))
                    index.add(row_id, normalized.get(column))
            self._rows[row_id] = normalized
            self._fts_update(row_id, old_row, normalized)
            self._note_writes(1)
            return row_id
        return self.insert(normalized)

    def truncate(self) -> None:
        """Delete all rows (indexes are rebuilt empty)."""
        self._rows.clear()
        for column in list(self._indexes):
            self._indexes[column] = build_index(self._indexes[column].kind, column)
        if self._fts is not None:
            self.create_fts_index(self._fts.columns)
        self.invalidate_stats()

    # ----------------------------------------------------------------- reads

    def get(self, primary_key_value: Any) -> dict[str, Any] | None:
        """Point lookup by primary-key value (``None`` when absent)."""
        pk = self.schema.primary_key
        if pk is None:
            raise StorageError(f"table {self.name!r} has no primary key")
        matches = self._indexes[pk].lookup(primary_key_value)
        if not matches:
            return None
        (row_id,) = matches
        return dict(self._rows[row_id])

    def row_by_id(self, row_id: int) -> dict[str, Any] | None:
        """Point lookup by internal row id (``None`` when absent).

        Row ids are what indexes — including the full-text index — hand back,
        so callers ranking by index score use this to materialise the rows.
        """
        row = self._rows.get(row_id)
        return dict(row) if row is not None else None

    def scan(self) -> Iterator[dict[str, Any]]:
        """Yield a copy of every row (insertion order)."""
        for row_id in sorted(self._rows):
            yield dict(self._rows[row_id])

    def rows(self) -> list[dict[str, Any]]:
        """All rows as a list of copies."""
        return list(self.scan())

    def select(
        self,
        predicate: Expression | Callable[[dict], bool] | None = None,
        columns: Sequence[str] | None = None,
        candidate_ids: Iterable[int] | None = None,
    ) -> list[dict[str, Any]]:
        """Rows matching ``predicate`` (all rows when ``None``).

        When ``columns`` is given only those columns are copied out of the
        store (projection pushdown) — the predicate still sees the full row.
        ``candidate_ids`` lets a caller that already planned the access path
        (see :meth:`plan_access`) reuse its candidate set instead of planning
        again; the predicate is still re-evaluated on every candidate.
        """
        matching = self._iter_matching_ids(predicate, candidate_ids)
        if columns is None:
            return [dict(self._rows[row_id]) for row_id in matching]
        return [_project_row(self._rows[row_id], columns) for row_id in matching]

    def scan_index_ordered(
        self,
        column: str,
        descending: bool = False,
        predicate: Expression | Callable[[dict], bool] | None = None,
        limit: int | None = None,
        columns: Sequence[str] | None = None,
    ) -> list[dict[str, Any]]:
        """Rows matching ``predicate`` streamed in ``column`` order.

        Requires a sorted index on ``column``; stops as soon as ``limit``
        matches are collected, which makes ORDER BY + LIMIT queries run
        without sorting (or even visiting) the rest of the table.
        """
        index = self.index(column)
        if not isinstance(index, SortedIndex):
            raise StorageError(
                f"index on {column!r} of table {self.name!r} is not a sorted index"
            )
        if limit is not None and limit <= 0:
            return []
        matcher: Callable[[dict], bool] | None
        if isinstance(predicate, Expression):
            matcher = lambda row: bool(predicate.evaluate(row))
        else:
            matcher = predicate
        out: list[dict[str, Any]] = []
        for row_id in index.iter_ids_ordered(descending):
            row = self._rows.get(row_id)
            if row is None or (matcher is not None and not matcher(row)):
                continue
            out.append(dict(row) if columns is None else _project_row(row, columns))
            if limit is not None and len(out) >= limit:
                break
        return out

    def count(self, predicate: Expression | Callable[[dict], bool] | None = None) -> int:
        """Number of rows matching ``predicate``."""
        if predicate is None:
            return len(self._rows)
        return sum(1 for _ in self._iter_matching_ids(predicate))

    # ------------------------------------------------------------ statistics

    def _note_writes(self, count: int) -> None:
        if count > 0:
            self._writes_since_analyze += count

    def invalidate_stats(self) -> None:
        """Drop the statistics snapshot (schema-level change or bulk rewrite)."""
        self._stats = None
        self._writes_since_analyze = 0

    def analyze(self) -> TableStats:
        """Collect planner statistics over the indexed columns (ANALYZE)."""
        stats = build_table_stats(
            self._rows.values(), sorted(self._indexes), self.stats_policy
        )
        self._stats = stats
        self._writes_since_analyze = 0
        self.planner_metrics.record_analyze()
        return stats

    def statistics(self) -> TableStats | None:
        """The current statistics snapshot (possibly stale; ``None`` before
        the first :meth:`analyze`)."""
        return self._stats

    def stats_state(self) -> str:
        """``"missing"``, ``"fresh"`` or ``"stale"`` (per the staleness
        threshold of the table's :class:`~.stats.StatsPolicy`)."""
        if self._stats is None:
            return "missing"
        threshold = self.stats_policy.stale_threshold(self._stats.row_count)
        return "stale" if self._writes_since_analyze > threshold else "fresh"

    def planning_stats(self) -> TableStats | None:
        """Statistics the planner may rely on right now.

        Fresh snapshots are returned as-is; missing/stale ones trigger a
        transparent re-analyze when the policy auto-analyzes, and otherwise
        return ``None`` — degrading the planner to the heuristic plan.
        """
        state = self.stats_state()
        if state == "fresh":
            return self._stats
        if self.stats_policy.auto_analyze:
            return self.analyze()
        return None

    # ------------------------------------------------------------- internals

    def plan_access(self, predicate: Expression | Callable[[dict], bool] | None) -> AccessPlan:
        """The access plan the planner chooses for ``predicate`` on this table."""
        plan = plan_access(self, predicate)
        self.planner_metrics.record_plan(plan)
        return plan

    def _candidate_ids(self, predicate: Expression | None) -> list[int] | None:
        """Use indexes to narrow the rows a predicate must examine (or ``None``)."""
        plan = self.plan_access(predicate)
        return sorted(plan.row_ids) if plan.row_ids is not None else None

    def _iter_matching_ids(
        self,
        predicate: Expression | Callable[[dict], bool] | None,
        candidate_ids: Iterable[int] | None = None,
    ) -> Iterator[int]:
        if predicate is None:
            yield from sorted(self._rows)
            return

        if candidate_ids is not None:
            row_ids: list[int] = sorted(candidate_ids)
        else:
            candidates = self._candidate_ids(
                predicate if isinstance(predicate, Expression) else None
            )
            row_ids = candidates if candidates is not None else sorted(self._rows)

        if isinstance(predicate, Expression):
            matcher: Callable[[dict], bool] = lambda row: bool(predicate.evaluate(row))
        else:
            matcher = predicate

        for row_id in row_ids:
            row = self._rows.get(row_id)
            if row is not None and matcher(row):
                yield row_id

    # ------------------------------------------------------------- snapshots

    def snapshot(self) -> dict[int, dict[str, Any]]:
        """Deep-ish copy of the row storage (used by transactions)."""
        return {row_id: dict(row) for row_id, row in self._rows.items()}

    def restore(self, snapshot: dict[int, dict[str, Any]], next_row_id: int | None = None) -> None:
        """Restore the table to a previously captured snapshot."""
        self._rows = {row_id: dict(row) for row_id, row in snapshot.items()}
        if next_row_id is not None:
            self._next_row_id = next_row_id
        else:
            self._next_row_id = max(self._rows, default=0) + 1
        for column in list(self._indexes):
            index = build_index(self._indexes[column].kind, column)
            for row_id, row in self._rows.items():
                index.add(row_id, row.get(column))
            self._indexes[column] = index
        if self._fts is not None:
            self.create_fts_index(self._fts.columns)
        self.invalidate_stats()


def _project_row(row: Mapping[str, Any], columns: Sequence[str]) -> dict[str, Any]:
    missing = [column for column in columns if column not in row]
    if missing:
        raise ColumnNotFound(f"row has no column(s) {missing!r}")
    return {column: row[column] for column in columns}
