"""A small SQL dialect.

The Indicators API and the examples interact with the operational store
through the query builder, but ad-hoc inspection (and the paper's "ad-hoc
querying" claim) wants SQL.  The dialect supports::

    CREATE TABLE t (id TEXT PRIMARY KEY, n INTEGER NOT NULL, score FLOAT, ok BOOLEAN)
    INSERT INTO t (id, n) VALUES ('a', 1), ('b', 2)
    SELECT id, n FROM t WHERE n >= 1 AND ok = TRUE ORDER BY n DESC LIMIT 10 OFFSET 5
    SELECT outlet, COUNT(*) AS articles, AVG(score) AS mean_score FROM t GROUP BY outlet
    UPDATE t SET score = 0.5 WHERE id = 'a'
    DELETE FROM t WHERE n < 0

Only the features the platform needs are implemented; anything else raises
:class:`~repro.errors.SQLSyntaxError`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from ...errors import SQLSyntaxError
from .expressions import ColumnRef, Expression, Match, col, lit
from .schema import Column, TableSchema
from .types import ColumnType

# --------------------------------------------------------------------- lexer

_TOKEN_RE = re.compile(
    r"""
    \s*(
        '(?:[^']|'')*'            # string literal (with '' escaping)
      | \d+\.\d+                  # float
      | \d+                       # integer
      | [A-Za-z_][A-Za-z_0-9]*    # identifier / keyword
      | <> | != | <= | >= | = | < | >
      | \( | \) | , | \* | \.
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "group", "by", "order", "limit", "offset",
    "insert", "into", "values", "update", "set", "delete", "create", "table",
    "and", "or", "not", "in", "like", "match", "is", "null", "true", "false",
    "asc", "desc", "as", "primary", "key", "unique", "count", "sum", "avg",
    "min", "max", "integer", "int", "float", "real", "text", "varchar",
    "boolean", "bool", "timestamp", "datetime", "json",
}

_TYPE_MAP = {
    "integer": ColumnType.INTEGER,
    "int": ColumnType.INTEGER,
    "float": ColumnType.FLOAT,
    "real": ColumnType.FLOAT,
    "text": ColumnType.TEXT,
    "varchar": ColumnType.TEXT,
    "boolean": ColumnType.BOOLEAN,
    "bool": ColumnType.BOOLEAN,
    "timestamp": ColumnType.TIMESTAMP,
    "datetime": ColumnType.TIMESTAMP,
    "json": ColumnType.JSON,
}

_AGGREGATES = ("count", "sum", "avg", "min", "max")


def _tokenize(sql: str) -> list[str]:
    tokens: list[str] = []
    position = 0
    sql = sql.strip().rstrip(";")
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if not match or match.end() == position:
            raise SQLSyntaxError(f"cannot tokenize SQL near: {sql[position:position + 20]!r}")
        tokens.append(match.group(1))
        position = match.end()
    return tokens


# ---------------------------------------------------------------- statements

@dataclass(frozen=True)
class CreateTableStatement:
    schema: TableSchema


@dataclass(frozen=True)
class InsertStatement:
    table: str
    rows: list[dict[str, Any]]


@dataclass(frozen=True)
class SelectStatement:
    table: str
    columns: list[str] = field(default_factory=list)      # empty = *
    aggregates: dict[str, tuple[str, str]] = field(default_factory=dict)
    where: Expression | None = None
    group_by: list[str] = field(default_factory=list)
    order_by: list[tuple[str, bool]] = field(default_factory=list)
    limit: int | None = None
    offset: int = 0


@dataclass(frozen=True)
class UpdateStatement:
    table: str
    changes: dict[str, Any]
    where: Expression | None = None


@dataclass(frozen=True)
class DeleteStatement:
    table: str
    where: Expression | None = None


Statement = (
    CreateTableStatement | InsertStatement | SelectStatement | UpdateStatement | DeleteStatement
)


# --------------------------------------------------------------------- parser

class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.position = 0

    # ------------------------------------------------------------- utilities

    def peek(self) -> str | None:
        return self.tokens[self.position] if self.position < len(self.tokens) else None

    def peek_lower(self) -> str | None:
        token = self.peek()
        return token.lower() if token is not None else None

    def advance(self) -> str:
        token = self.peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of statement")
        self.position += 1
        return token

    def expect(self, keyword: str) -> str:
        token = self.advance()
        if token.lower() != keyword.lower():
            raise SQLSyntaxError(f"expected {keyword!r}, got {token!r}")
        return token

    def accept(self, keyword: str) -> bool:
        if self.peek_lower() == keyword.lower():
            self.advance()
            return True
        return False

    def identifier(self) -> str:
        token = self.advance()
        if not re.match(r"^[A-Za-z_][A-Za-z_0-9]*$", token) or token.lower() in (
            "select", "from", "where", "insert", "update", "delete", "create",
        ):
            raise SQLSyntaxError(f"expected identifier, got {token!r}")
        return token

    def done(self) -> bool:
        return self.position >= len(self.tokens)

    # -------------------------------------------------------------- literals

    def literal_value(self) -> Any:
        token = self.advance()
        lowered = token.lower()
        if token.startswith("'"):
            return token[1:-1].replace("''", "'")
        if lowered == "true":
            return True
        if lowered == "false":
            return False
        if lowered == "null":
            return None
        if re.match(r"^\d+\.\d+$", token):
            return float(token)
        if re.match(r"^\d+$", token):
            return int(token)
        raise SQLSyntaxError(f"expected literal, got {token!r}")

    # ----------------------------------------------------------- expressions

    def expression(self) -> Expression:
        return self._or_expression()

    def _or_expression(self) -> Expression:
        node = self._and_expression()
        while self.accept("or"):
            node = node | self._and_expression()
        return node

    def _and_expression(self) -> Expression:
        node = self._not_expression()
        while self.accept("and"):
            node = node & self._not_expression()
        return node

    def _not_expression(self) -> Expression:
        if self.accept("not"):
            return ~self._not_expression()
        return self._primary()

    def _primary(self) -> Expression:
        if self.accept("("):
            node = self._or_expression()
            self.expect(")")
            return node
        return self._comparison()

    def _operand(self) -> Expression:
        token = self.peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of expression")
        if re.match(r"^[A-Za-z_][A-Za-z_0-9]*$", token) and token.lower() not in (
            "true", "false", "null",
        ):
            return col(self.advance())
        return lit(self.literal_value())

    def _comparison(self) -> Expression:
        left = self._operand()
        operator_token = self.peek_lower()
        if operator_token in ("=", "!=", "<>", "<", "<=", ">", ">="):
            self.advance()
            right = self._operand()
            return {
                "=": left == right,
                "!=": left != right,
                "<>": left != right,
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
            }[operator_token]
        if operator_token == "in":
            self.advance()
            self.expect("(")
            values = [self.literal_value()]
            while self.accept(","):
                values.append(self.literal_value())
            self.expect(")")
            return left.is_in(values)
        if operator_token == "like":
            self.advance()
            pattern = self.literal_value()
            return left.like(str(pattern))
        if operator_token == "match":
            self.advance()
            query = self.literal_value()
            if not isinstance(query, str):
                raise SQLSyntaxError("MATCH expects a string query literal")
            if not isinstance(left, ColumnRef):
                raise SQLSyntaxError("MATCH expects a column on its left side")
            return Match((left.name,), query)
        if operator_token == "is":
            self.advance()
            negate = self.accept("not")
            self.expect("null")
            return left.is_not_null() if negate else left.is_null()
        raise SQLSyntaxError(f"expected comparison operator, got {operator_token!r}")

    # ------------------------------------------------------------ statements

    def parse(self) -> Statement:
        keyword = self.peek_lower()
        if keyword == "select":
            statement = self._select()
        elif keyword == "insert":
            statement = self._insert()
        elif keyword == "update":
            statement = self._update()
        elif keyword == "delete":
            statement = self._delete()
        elif keyword == "create":
            statement = self._create_table()
        else:
            raise SQLSyntaxError(f"unsupported statement: {keyword!r}")
        if not self.done():
            raise SQLSyntaxError(f"unexpected trailing tokens: {self.tokens[self.position:]!r}")
        return statement

    def _create_table(self) -> CreateTableStatement:
        self.expect("create")
        self.expect("table")
        name = self.identifier()
        self.expect("(")
        columns: list[Column] = []
        primary_key: str | None = None
        while True:
            column_name = self.identifier()
            type_token = self.advance().lower()
            if type_token not in _TYPE_MAP:
                raise SQLSyntaxError(f"unknown column type {type_token!r}")
            column_type = _TYPE_MAP[type_token]
            nullable = True
            unique = False
            while self.peek_lower() in ("primary", "not", "unique"):
                if self.accept("primary"):
                    self.expect("key")
                    primary_key = column_name
                    nullable = False
                elif self.accept("not"):
                    self.expect("null")
                    nullable = False
                elif self.accept("unique"):
                    unique = True
            columns.append(
                Column(name=column_name, column_type=column_type, nullable=nullable, unique=unique)
            )
            if self.accept(","):
                continue
            self.expect(")")
            break
        schema = TableSchema(name=name, columns=tuple(columns), primary_key=primary_key)
        return CreateTableStatement(schema=schema)

    def _insert(self) -> InsertStatement:
        self.expect("insert")
        self.expect("into")
        table = self.identifier()
        self.expect("(")
        columns = [self.identifier()]
        while self.accept(","):
            columns.append(self.identifier())
        self.expect(")")
        self.expect("values")
        rows: list[dict[str, Any]] = []
        while True:
            self.expect("(")
            values = [self.literal_value()]
            while self.accept(","):
                values.append(self.literal_value())
            self.expect(")")
            if len(values) != len(columns):
                raise SQLSyntaxError(
                    f"INSERT has {len(columns)} columns but {len(values)} values"
                )
            rows.append(dict(zip(columns, values)))
            if not self.accept(","):
                break
        return InsertStatement(table=table, rows=rows)

    def _select_item(self) -> tuple[str | None, str | None, tuple[str, str] | None]:
        """Return (column, alias, aggregate) for one select-list item."""
        token = self.peek_lower()
        if token in _AGGREGATES:
            function = self.advance().lower()
            self.expect("(")
            if self.accept("*"):
                column = "*"
            else:
                column = self.identifier()
            self.expect(")")
            alias = f"{function}_{column if column != '*' else 'all'}"
            if self.accept("as"):
                alias = self.identifier()
            return None, alias, (function, column)
        column = self.identifier()
        alias = None
        if self.accept("as"):
            alias = self.identifier()
        return column, alias, None

    def _select(self) -> SelectStatement:
        self.expect("select")
        columns: list[str] = []
        aggregates: dict[str, tuple[str, str]] = {}
        if self.accept("*"):
            pass
        else:
            while True:
                column, alias, aggregate = self._select_item()
                if aggregate is not None:
                    aggregates[alias or "aggregate"] = aggregate
                elif column is not None:
                    columns.append(column)
                if not self.accept(","):
                    break
        self.expect("from")
        table = self.identifier()

        where: Expression | None = None
        group_by: list[str] = []
        order_by: list[tuple[str, bool]] = []
        limit: int | None = None
        offset = 0

        if self.accept("where"):
            where = self.expression()
        if self.accept("group"):
            self.expect("by")
            group_by.append(self.identifier())
            while self.accept(","):
                group_by.append(self.identifier())
        if self.accept("order"):
            self.expect("by")
            while True:
                column = self.identifier()
                descending = False
                if self.accept("desc"):
                    descending = True
                elif self.accept("asc"):
                    descending = False
                order_by.append((column, descending))
                if not self.accept(","):
                    break
        if self.accept("limit"):
            limit = int(self.literal_value())
        if self.accept("offset"):
            offset = int(self.literal_value())

        return SelectStatement(
            table=table,
            columns=columns,
            aggregates=aggregates,
            where=where,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            offset=offset,
        )

    def _update(self) -> UpdateStatement:
        self.expect("update")
        table = self.identifier()
        self.expect("set")
        changes: dict[str, Any] = {}
        while True:
            column = self.identifier()
            self.expect("=")
            changes[column] = self.literal_value()
            if not self.accept(","):
                break
        where = self.expression() if self.accept("where") else None
        return UpdateStatement(table=table, changes=changes, where=where)

    def _delete(self) -> DeleteStatement:
        self.expect("delete")
        self.expect("from")
        table = self.identifier()
        where = self.expression() if self.accept("where") else None
        return DeleteStatement(table=table, where=where)


def parse_sql(sql: str) -> Statement:
    """Parse one SQL statement into its statement object."""
    tokens = _tokenize(sql)
    if not tokens:
        raise SQLSyntaxError("empty statement")
    return _Parser(tokens).parse()
