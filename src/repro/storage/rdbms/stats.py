"""Table statistics for the cost-based query planner.

``ANALYZE``-style statistics over a table's indexed columns: per-column
equi-depth histograms, exact number-of-distinct-values (NDV) counts, a short
most-common-values (MCV) list, null fractions and row counts.  The planner
(:mod:`.planner`) turns these into selectivity estimates — *how many rows
will this conjunct match?* — which is what lets it choose the cheapest subset
of indexes instead of blindly intersecting every usable one.

Statistics are a snapshot: :meth:`~repro.storage.rdbms.table.Table.analyze`
builds a :class:`TableStats`, and the table counts subsequent writes.  Once
the write counter passes the staleness threshold of the table's
:class:`StatsPolicy` the snapshot is considered stale; with ``auto_analyze``
enabled the next plan re-analyzes transparently, otherwise the planner
degrades to the historical heuristic plan (intersect every usable index).
Estimates are *advisory only* — the executor re-evaluates the predicate on
every candidate row, so a wildly wrong histogram can cost time, never
correctness.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

#: Selectivity assumed for a conjunct whose column has no statistics
#: (e.g. an index created after the last ANALYZE).
DEFAULT_EQ_SELECTIVITY = 0.05
DEFAULT_RANGE_SELECTIVITY = 0.3
DEFAULT_PREFIX_SELECTIVITY = 0.1
#: Selectivity assumed for a full-text MATCH conjunct (term frequencies are
#: the FTS index's business; the planner only needs a rough prior).
DEFAULT_MATCH_SELECTIVITY = 0.1


@dataclass(frozen=True)
class StatsPolicy:
    """How a table builds and refreshes its planner statistics."""

    #: Re-analyze transparently at plan time when statistics are missing or
    #: stale.  Disabled, stale/missing statistics degrade the planner to the
    #: heuristic intersect-every-index plan (same results, no cost choice).
    auto_analyze: bool = True
    #: Statistics count as stale once writes since the last analyze exceed
    #: this fraction of the analyzed row count (see also ``min_stale_writes``).
    stale_fraction: float = 0.2
    #: Absolute write floor below which statistics are never considered stale
    #: — keeps tiny hot tables from re-analyzing on every handful of writes.
    min_stale_writes: int = 64
    #: Equi-depth histogram buckets per column.
    histogram_buckets: int = 32
    #: Most-common-value entries kept per column (exact equality estimates
    #: for the heavy hitters of a skewed distribution).
    mcv_entries: int = 8

    def stale_threshold(self, analyzed_rows: int) -> int:
        """Writes after which a snapshot of ``analyzed_rows`` rows is stale."""
        return max(self.min_stale_writes, int(self.stale_fraction * analyzed_rows))


def prefix_upper_bound(prefix: str) -> str | None:
    """The smallest string greater than every string starting with ``prefix``.

    Increments the last incrementable code point; ``None`` means unbounded
    above (a prefix of only ``U+10FFFF`` characters).
    """
    for i in reversed(range(len(prefix))):
        point = ord(prefix[i])
        if point < 0x10FFFF:
            return prefix[:i] + chr(point + 1)
    return None


def _as_number(value: Any) -> float | None:
    """Map a value onto the real line for histogram interpolation."""
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    try:  # datetimes (and dates) interpolate by timestamp
        return value.timestamp()  # type: ignore[union-attr]
    except (AttributeError, TypeError, ValueError, OSError, OverflowError):
        return None


def _interpolate(value: Any, low: Any, high: Any) -> float:
    """Fraction of the interval ``[low, high]`` below ``value`` (0.5 fallback)."""
    v, lo, hi = _as_number(value), _as_number(low), _as_number(high)
    if v is None or lo is None or hi is None or hi <= lo:
        return 0.5
    return min(1.0, max(0.0, (v - lo) / (hi - lo)))


@dataclass(frozen=True)
class ColumnStats:
    """Statistics of one column: NDV, nulls, MCVs and an equi-depth histogram."""

    column: str
    row_count: int
    null_count: int
    distinct_count: int
    min_value: Any = None
    max_value: Any = None
    #: Equi-depth bucket boundaries (``buckets + 1`` sorted values; each
    #: bucket holds ~``non_null / buckets`` rows).  Empty when the column has
    #: too few values or values that do not sort.
    histogram: tuple[Any, ...] = ()
    #: ``(value, count)`` pairs for the most common values, descending count.
    most_common: tuple[tuple[Any, int], ...] = ()

    @property
    def non_null(self) -> int:
        return self.row_count - self.null_count

    @property
    def null_fraction(self) -> float:
        return self.null_count / self.row_count if self.row_count else 0.0

    # ------------------------------------------------------- row estimates

    def eq_rows(self, value: Any) -> float:
        """Estimated rows whose column equals ``value``."""
        if value is None or self.non_null == 0:
            return 0.0
        mcv_total = 0
        for common, count in self.most_common:
            if common == value:
                return float(count)
            mcv_total += count
        rest_rows = max(0, self.non_null - mcv_total)
        rest_ndv = max(1, self.distinct_count - len(self.most_common))
        return max(1.0, rest_rows / rest_ndv) if rest_rows else 1.0

    def in_rows(self, values: Sequence[Any]) -> float:
        """Estimated rows matching any of ``values`` (capped at non-null)."""
        return min(float(self.non_null), sum(self.eq_rows(v) for v in values))

    def range_rows(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> float:
        """Estimated rows in the (possibly half-open) interval."""
        if self.non_null == 0:
            return 0.0
        try:
            fraction = self._range_fraction(low, high)
        except TypeError:
            # Bounds that do not compare with the histogram values: fall back
            # to the generic range prior rather than crashing the planner.
            fraction = DEFAULT_RANGE_SELECTIVITY
        _ = (include_low, include_high)  # bucket granularity absorbs open ends
        return max(0.0, min(1.0, fraction)) * self.non_null

    def prefix_rows(self, prefix: str) -> float:
        """Estimated rows whose value starts with ``prefix``."""
        if not prefix:
            return float(self.non_null)
        return self.range_rows(low=prefix, high=prefix_upper_bound(prefix))

    def _range_fraction(self, low: Any, high: Any) -> float:
        bounds = self.histogram
        if len(bounds) < 2:
            # No histogram: interpolate against min/max when possible.
            if self.min_value is None or self.max_value is None:
                return DEFAULT_RANGE_SELECTIVITY
            lo_f = _interpolate(low, self.min_value, self.max_value) if low is not None else 0.0
            hi_f = _interpolate(high, self.min_value, self.max_value) if high is not None else 1.0
            return max(0.0, hi_f - lo_f)
        buckets = len(bounds) - 1
        covered = 0.0
        for i in range(buckets):
            b_low, b_high = bounds[i], bounds[i + 1]
            if high is not None and not (b_low <= high):  # bucket entirely above
                break
            if low is not None and not (low <= b_high):  # bucket entirely below
                continue
            lo_f = _interpolate(low, b_low, b_high) if low is not None and low > b_low else 0.0
            hi_f = _interpolate(high, b_low, b_high) if high is not None and high < b_high else 1.0
            covered += max(0.0, hi_f - lo_f)
        return covered / buckets


@dataclass(frozen=True)
class TableStats:
    """Snapshot of one table's planner statistics."""

    row_count: int
    columns: Mapping[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name)


def _build_column_stats(
    column: str, values: list[Any], row_count: int, policy: StatsPolicy
) -> ColumnStats:
    non_null = [v for v in values if v is not None]
    null_count = row_count - len(non_null)
    if not non_null:
        return ColumnStats(column=column, row_count=row_count, null_count=null_count,
                           distinct_count=0)
    try:
        counts = Counter(non_null)
    except TypeError:  # unhashable values (JSON columns): degraded stats
        return ColumnStats(
            column=column, row_count=row_count, null_count=null_count,
            distinct_count=max(1, len(non_null) // 2),
        )
    most_common = tuple(
        (value, count)
        for value, count in counts.most_common(policy.mcv_entries)
        if count > 1
    )
    try:
        ordered = sorted(non_null)
    except TypeError:  # heterogeneous values do not sort: no histogram
        return ColumnStats(
            column=column, row_count=row_count, null_count=null_count,
            distinct_count=len(counts), most_common=most_common,
        )
    buckets = min(policy.histogram_buckets, len(ordered))
    histogram: tuple[Any, ...] = ()
    if buckets >= 1 and len(ordered) >= 2:
        # Equi-depth boundaries: the values at the bucket quantiles.
        boundaries = [ordered[(i * (len(ordered) - 1)) // buckets] for i in range(buckets)]
        boundaries.append(ordered[-1])
        histogram = tuple(boundaries)
    return ColumnStats(
        column=column,
        row_count=row_count,
        null_count=null_count,
        distinct_count=len(counts),
        min_value=ordered[0],
        max_value=ordered[-1],
        histogram=histogram,
        most_common=most_common,
    )


def build_table_stats(
    rows: Iterable[Mapping[str, Any]],
    columns: Sequence[str],
    policy: StatsPolicy | None = None,
) -> TableStats:
    """Build a :class:`TableStats` snapshot over ``columns`` of ``rows``.

    One pass over the rows collects every column's values; per-column stats
    are derived from those (exact NDV, exact MCV counts, equi-depth
    histogram boundaries from the sorted values).
    """
    policy = policy or StatsPolicy()
    collected: dict[str, list[Any]] = {column: [] for column in columns}
    row_count = 0
    for row in rows:
        row_count += 1
        for column in columns:
            collected[column].append(row.get(column))
    return TableStats(
        row_count=row_count,
        columns={
            column: _build_column_stats(column, values, row_count, policy)
            for column, values in collected.items()
        },
    )
