"""Query builder and executor.

Provides the fluent query interface the platform's services use for real-time
operations (``db.query("articles").where(...).order_by(...).limit(...)``),
including projections, aggregation with GROUP BY, and hash joins.

Execution is planner-driven (see :mod:`.planner`): predicates are narrowed
through the table's indexes, ORDER BY + LIMIT runs as an index-ordered scan or
a bounded top-k heap instead of a full sort, and projections are pushed down
so full row dicts are not copied through the pipeline.  ``Query.explain()``
reports the chosen plan without executing the query; the access-path and
ordering vocabulary it uses — and the planner's known limits — are documented
in ``docs/query-planner.md`` (runnable tour: ``examples/explain_demo.py``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from ...errors import ColumnNotFound, StorageError
from .expressions import Expression
from .index import SortedIndex
from .planner import (
    ORDER_INDEX,
    ORDER_SORT,
    ORDER_TOP_K,
    QueryPlan,
)
from .table import Table

AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class QueryResult:
    """Materialised result of a query."""

    rows: list[dict[str, Any]]
    columns: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __getitem__(self, index: int) -> dict[str, Any]:
        return self.rows[index]

    def first(self) -> dict[str, Any] | None:
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """Single value of a single-row, single-column result."""
        if len(self.rows) != 1:
            raise StorageError(f"scalar() expects exactly one row, got {len(self.rows)}")
        row = self.rows[0]
        if len(row) != 1:
            raise StorageError(f"scalar() expects exactly one column, got {len(row)}")
        return next(iter(row.values()))

    def column(self, name: str) -> list[Any]:
        """Values of one column across all rows."""
        if self.rows and name not in self.rows[0]:
            raise ColumnNotFound(f"result has no column {name!r}")
        return [row[name] for row in self.rows]


def _aggregate(values: list[Any], function: str) -> Any:
    present = [v for v in values if v is not None]
    if function == "count":
        return len(present)
    if not present:
        return None
    if function == "sum":
        return sum(present)
    if function == "avg":
        return sum(present) / len(present)
    if function == "min":
        return min(present)
    if function == "max":
        return max(present)
    raise StorageError(f"unknown aggregate function {function!r}")


class Query:
    """A lazily-built query against one table (optionally joined to another)."""

    def __init__(self, table: Table) -> None:
        self._table = table
        self._predicate: Expression | Callable[[dict], bool] | None = None
        self._projection: list[str] | None = None
        self._order_by: list[tuple[str, bool]] = []
        self._limit: int | None = None
        self._offset: int = 0
        self._group_by: list[str] = []
        self._aggregates: dict[str, tuple[str, str]] = {}
        self._joins: list[tuple[Table, str, str, str]] = []

    # ---------------------------------------------------------------- builder

    def where(self, predicate: Expression | Callable[[dict], bool]) -> "Query":
        """Filter rows by an expression or a Python predicate."""
        if self._predicate is None:
            self._predicate = predicate
        else:
            previous = self._predicate
            if isinstance(previous, Expression) and isinstance(predicate, Expression):
                self._predicate = previous & predicate
            else:
                prev_fn = _as_callable(previous)
                new_fn = _as_callable(predicate)
                self._predicate = lambda row: prev_fn(row) and new_fn(row)
        return self

    def select(self, *columns: str) -> "Query":
        """Project only the named columns."""
        self._projection = list(columns)
        return self

    def order_by(self, column: str, descending: bool = False) -> "Query":
        """Sort by ``column`` (may be chained for multi-key sorts)."""
        self._order_by.append((column, descending))
        return self

    def limit(self, n: int) -> "Query":
        """Keep only the first ``n`` rows (after ordering)."""
        if n < 0:
            raise StorageError("limit must be non-negative")
        self._limit = n
        return self

    def offset(self, n: int) -> "Query":
        """Skip the first ``n`` rows (after ordering)."""
        if n < 0:
            raise StorageError("offset must be non-negative")
        self._offset = n
        return self

    def group_by(self, *columns: str) -> "Query":
        """Group rows by the named columns (use with :meth:`aggregate`)."""
        self._group_by = list(columns)
        return self

    def aggregate(self, **aggregates: tuple[str, str]) -> "Query":
        """Declare aggregates as ``alias=(function, column)``.

        ``function`` is one of ``count``, ``sum``, ``avg``, ``min``, ``max``;
        for ``count`` the column may be ``"*"``.
        """
        for alias, (function, column) in aggregates.items():
            if function not in AGGREGATE_FUNCTIONS:
                raise StorageError(f"unknown aggregate function {function!r}")
            self._aggregates[alias] = (function, column)
        return self

    def join(self, other: Table, left_column: str, right_column: str, prefix: str | None = None) -> "Query":
        """Inner hash-join with ``other`` on ``left_column = right_column``.

        Columns of the joined table are exposed as ``<prefix>.<column>``
        (prefix defaults to the joined table's name).
        """
        self._joins.append((other, left_column, right_column, prefix or other.name))
        return self

    # --------------------------------------------------------------- planning

    def _plan(self) -> QueryPlan:
        """Choose access path, ordering strategy and projection pushdown."""
        table = self._table
        access = table.plan_access(self._predicate)
        aggregated = bool(self._aggregates or self._group_by)

        access_path = access.path
        access_steps = access.steps
        order_strategy: str | None = None
        order_column: str | None = None
        if self._order_by:
            order_strategy = ORDER_SORT
            if not aggregated and not self._joins:
                if len(self._order_by) == 1 and not access.is_index_backed:
                    column, _descending = self._order_by[0]
                    if table.has_index(column):
                        index = table.index(column)
                        # The index only covers non-NULL values, so an ordered
                        # scan is exact only when it covers every row.
                        if isinstance(index, SortedIndex) and len(index) == table.row_count():
                            order_strategy = ORDER_INDEX
                            order_column = column
                            access_path = ORDER_INDEX
                            access_steps = (f"{ORDER_INDEX}({column})",)
                if order_strategy == ORDER_SORT and self._limit is not None:
                    order_strategy = ORDER_TOP_K

        pushdown: tuple[str, ...] | None = None
        if not self._joins:
            if aggregated:
                needed = list(self._group_by)
                for _alias, (_function, column) in self._aggregates.items():
                    if column != "*" and column not in needed:
                        needed.append(column)
                pushdown = tuple(c for c in needed if table.schema.has_column(c))
            elif self._projection is not None:
                needed = list(self._projection)
                for column, _descending in self._order_by:
                    if column not in needed and table.schema.has_column(column):
                        needed.append(column)
                pushdown = tuple(needed)

        return QueryPlan(
            table=table.name,
            access_path=access_path,
            access_steps=access_steps,
            candidate_rows=access.candidate_count(),
            table_rows=table.row_count(),
            order_strategy=order_strategy,
            order_column=order_column,
            projection_pushdown=pushdown,
            uses_aggregation=aggregated,
            joined_tables=tuple(prefix for _t, _l, _r, prefix in self._joins),
            limit=self._limit,
            offset=self._offset,
            estimated_rows=access.estimated_rows,
            access_cost=access.cost,
            stats_mode=access.stats_mode,
            step_estimates=access.step_estimates,
            alternatives=access.alternatives,
            _access=access,
        )

    def explain(self) -> QueryPlan:
        """The plan :meth:`execute` would follow, without running the query.

        The returned :class:`~repro.storage.rdbms.planner.QueryPlan` names the
        access path (``full-scan`` / ``index-eq`` / ``index-range`` /
        ``index-union`` / ``index-intersect`` / ``index-ordered``) and the
        ordering strategy (``sort`` / ``top-k`` / ``index-ordered``).  When
        the cost model planned the query (``stats_mode == "cost"``) it also
        carries the estimated rows, the chosen plan's cost, per-step
        estimates, and every considered-but-rejected alternative
        (``QueryPlan.describe_verbose()`` renders all of it).
        """
        return self._plan()

    # -------------------------------------------------------------- execution

    def _base_rows(
        self,
        columns: Sequence[str] | None = None,
        candidate_ids: Iterable[int] | None = None,
    ) -> list[dict[str, Any]]:
        rows = self._table.select(self._predicate, columns=columns, candidate_ids=candidate_ids)
        for other, left_column, right_column, prefix in self._joins:
            rows = _hash_join(rows, other.rows(), left_column, right_column, prefix)
        return rows

    def execute(self) -> QueryResult:
        """Run the query and materialise its result."""
        plan = self._plan()
        aggregated = plan.uses_aggregation

        if plan.order_strategy == ORDER_INDEX:
            column, descending = self._order_by[0]
            needed = None if self._limit is None else self._offset + self._limit
            rows = self._table.scan_index_ordered(
                column,
                descending=descending,
                predicate=self._predicate,
                limit=needed,
                columns=plan.projection_pushdown,
            )
            if self._offset:
                rows = rows[self._offset:]
        else:
            candidate_ids = plan._access.row_ids if plan._access is not None else None
            rows = self._base_rows(plan.projection_pushdown, candidate_ids)
            if aggregated:
                rows = self._run_aggregation(rows)
            if plan.order_strategy == ORDER_TOP_K:
                rows = _top_k(rows, self._order_by, self._offset + self._limit)
                rows = rows[self._offset:]
            else:
                # Ordering happens before projection so ORDER BY may reference
                # columns that are not part of the SELECT list (SQL semantics).
                for column, descending in reversed(self._order_by):
                    rows.sort(key=lambda row: _sort_key(row.get(column)), reverse=descending)
                if self._offset:
                    rows = rows[self._offset:]
                if self._limit is not None:
                    rows = rows[: self._limit]

        if self._projection is not None:
            # Aggregated rows are projected here (the SELECT list refers to
            # group columns and aggregate aliases); otherwise only trim when
            # the pushdown carried extra ORDER BY columns or did not happen.
            if aggregated or plan.projection_pushdown != tuple(self._projection):
                rows = [_project(row, self._projection) for row in rows]

        columns = list(rows[0].keys()) if rows else list(self._projection or [])
        return QueryResult(rows=rows, columns=columns)

    def count(self) -> int:
        """Number of rows the query (ignoring projection/aggregation) matches."""
        if not self._joins:
            return self._table.count(self._predicate)
        return len(self._base_rows())

    def _run_aggregation(self, rows: list[dict[str, Any]]) -> list[dict[str, Any]]:
        if not self._aggregates:
            raise StorageError("GROUP BY requires at least one aggregate")

        def group_key(row: dict[str, Any]) -> tuple:
            return tuple(row.get(column) for column in self._group_by)

        groups: dict[tuple, list[dict[str, Any]]] = {}
        for row in rows:
            groups.setdefault(group_key(row), []).append(row)
        if not self._group_by:
            groups = {(): rows}

        out: list[dict[str, Any]] = []
        for key in sorted(groups, key=lambda k: tuple(_sort_key(v) for v in k)):
            members = groups[key]
            result_row: dict[str, Any] = dict(zip(self._group_by, key))
            for alias, (function, column) in self._aggregates.items():
                if column == "*":
                    values: list[Any] = [1] * len(members)
                else:
                    values = [member.get(column) for member in members]
                result_row[alias] = _aggregate(values, function)
            out.append(result_row)
        return out


def _as_callable(predicate: Expression | Callable[[dict], bool]) -> Callable[[dict], bool]:
    if isinstance(predicate, Expression):
        return lambda row: bool(predicate.evaluate(row))
    return predicate


def _project(row: dict[str, Any], columns: Sequence[str]) -> dict[str, Any]:
    missing = [c for c in columns if c not in row]
    if missing:
        raise ColumnNotFound(f"row has no column(s) {missing!r}")
    return {column: row[column] for column in columns}


def _sort_key(value: Any) -> tuple:
    """Total order over heterogeneous, possibly-NULL values (NULLs sort first)."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    return (3, str(value))


class _Desc:
    """Inverts the ordering of a wrapped sort key (for DESC columns in top-k)."""

    __slots__ = ("key",)

    def __init__(self, key: tuple) -> None:
        self.key = key

    def __lt__(self, other: "_Desc") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Desc) and self.key == other.key


def _top_k(
    rows: list[dict[str, Any]], order_by: list[tuple[str, bool]], keep: int
) -> list[dict[str, Any]]:
    """First ``keep`` rows under ``order_by`` via a bounded heap.

    ``heapq.nsmallest`` is stable (equivalent to ``sorted(...)[:keep]``), so
    the result matches the repeated-stable-sort path exactly, including tie
    order, while only ever holding ``keep`` rows.
    """
    if keep <= 0:
        return []

    def composite_key(row: dict[str, Any]) -> tuple:
        return tuple(
            _Desc(_sort_key(row.get(column))) if descending else _sort_key(row.get(column))
            for column, descending in order_by
        )

    return heapq.nsmallest(keep, rows, key=composite_key)


def _hash_join(
    left_rows: Iterable[dict[str, Any]],
    right_rows: Iterable[dict[str, Any]],
    left_column: str,
    right_column: str,
    prefix: str,
) -> list[dict[str, Any]]:
    buckets: dict[Any, list[dict[str, Any]]] = {}
    for row in right_rows:
        key = row.get(right_column)
        if key is not None:
            buckets.setdefault(key, []).append(row)

    joined: list[dict[str, Any]] = []
    for left in left_rows:
        key = left.get(left_column)
        if key is None:
            continue
        for right in buckets.get(key, []):
            merged = dict(left)
            for column, value in right.items():
                merged[f"{prefix}.{column}"] = value
            joined.append(merged)
    return joined
