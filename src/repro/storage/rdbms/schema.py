"""Table schemas: column definitions, constraints and row validation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ...errors import ColumnNotFound, SchemaError
from .types import ColumnType


@dataclass(frozen=True)
class Column:
    """Definition of one table column."""

    name: str
    column_type: ColumnType
    nullable: bool = True
    default: Any = None
    unique: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name: {self.name!r}")
        if self.default is not None and not self.column_type.is_valid(self.default):
            raise SchemaError(
                f"default for column {self.name!r} is not a valid {self.column_type.value}"
            )


@dataclass(frozen=True)
class TableSchema:
    """Schema of a table: named columns, a primary key and unique constraints."""

    name: str
    columns: tuple[Column, ...]
    primary_key: str | None = None
    _by_name: dict[str, Column] = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid table name: {self.name!r}")
        if not self.columns:
            raise SchemaError(f"table {self.name!r} must declare at least one column")
        names = [column.name for column in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate column names in table {self.name!r}")
        if self.primary_key is not None and self.primary_key not in names:
            raise SchemaError(
                f"primary key {self.primary_key!r} is not a column of {self.name!r}"
            )
        object.__setattr__(
            self, "_by_name", {column.name: column for column in self.columns}
        )

    # ------------------------------------------------------------- accessors

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        """Return the column named ``name`` or raise :class:`ColumnNotFound`."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ColumnNotFound(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def unique_columns(self) -> list[str]:
        """Columns carrying a UNIQUE constraint (including the primary key)."""
        uniques = [c.name for c in self.columns if c.unique]
        if self.primary_key and self.primary_key not in uniques:
            uniques.insert(0, self.primary_key)
        return uniques

    # ------------------------------------------------------------ validation

    def normalize_row(self, row: Mapping[str, Any]) -> dict[str, Any]:
        """Validate and coerce an incoming row.

        Unknown keys raise, missing columns take their default (or ``None``),
        type coercion is applied per column, and NOT NULL / primary-key
        presence is enforced.
        """
        unknown = set(row) - set(self._by_name)
        if unknown:
            raise ColumnNotFound(
                f"table {self.name!r} has no column(s) {sorted(unknown)!r}"
            )

        normalized: dict[str, Any] = {}
        for column in self.columns:
            if column.name in row:
                value = column.column_type.coerce(row[column.name])
            else:
                value = column.default
            if value is None and not column.nullable:
                raise SchemaError(
                    f"column {column.name!r} of table {self.name!r} is NOT NULL"
                )
            if value is None and column.name == self.primary_key:
                raise SchemaError(
                    f"primary key {column.name!r} of table {self.name!r} must be set"
                )
            normalized[column.name] = value
        return normalized

    def normalize_update(self, changes: Mapping[str, Any]) -> dict[str, Any]:
        """Validate and coerce a partial update (only the supplied columns)."""
        normalized: dict[str, Any] = {}
        for name, value in changes.items():
            column = self.column(name)
            coerced = column.column_type.coerce(value)
            if coerced is None and not column.nullable:
                raise SchemaError(
                    f"column {name!r} of table {self.name!r} is NOT NULL"
                )
            normalized[name] = coerced
        return normalized
