"""Column types of the relational engine.

Each type knows how to validate and coerce Python values; timestamps are
stored as naive UTC ``datetime`` objects and JSON columns accept any
JSON-serialisable structure.
"""

from __future__ import annotations

import json
from datetime import date, datetime
from enum import Enum

from ...errors import SchemaError


class ColumnType(str, Enum):
    """Supported column types."""

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"
    TIMESTAMP = "timestamp"
    JSON = "json"

    def coerce(self, value):
        """Coerce ``value`` into this type, raising :class:`SchemaError` if impossible."""
        if value is None:
            return None
        try:
            return _COERCERS[self](value)
        except (TypeError, ValueError) as exc:
            raise SchemaError(
                f"cannot coerce {value!r} to {self.value}: {exc}"
            ) from exc

    def is_valid(self, value) -> bool:
        """Return ``True`` when ``value`` can be stored in this type."""
        if value is None:
            return True
        try:
            self.coerce(value)
            return True
        except SchemaError:
            return False

    def to_storage(self, value):
        """Serialise a coerced value into a JSON-friendly representation."""
        if value is None:
            return None
        if self is ColumnType.TIMESTAMP:
            return value.isoformat()
        if self is ColumnType.JSON:
            return json.dumps(value, sort_keys=True)
        return value

    def from_storage(self, value):
        """Inverse of :meth:`to_storage`."""
        if value is None:
            return None
        if self is ColumnType.TIMESTAMP:
            return datetime.fromisoformat(value)
        if self is ColumnType.JSON:
            return json.loads(value)
        return self.coerce(value)


def _coerce_integer(value) -> int:
    if isinstance(value, bool):
        raise TypeError("booleans are not integers")
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, str):
        return int(value.strip())
    raise TypeError(f"not an integer: {type(value).__name__}")


def _coerce_float(value) -> float:
    if isinstance(value, bool):
        raise TypeError("booleans are not floats")
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        return float(value.strip())
    raise TypeError(f"not a float: {type(value).__name__}")


def _coerce_text(value) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, (int, float, bool)):
        return str(value)
    raise TypeError(f"not text: {type(value).__name__}")


def _coerce_boolean(value) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "t", "1", "yes"):
            return True
        if lowered in ("false", "f", "0", "no"):
            return False
    raise TypeError(f"not a boolean: {value!r}")


def _coerce_timestamp(value) -> datetime:
    if isinstance(value, datetime):
        return value
    if isinstance(value, date):
        return datetime(value.year, value.month, value.day)
    if isinstance(value, str):
        return datetime.fromisoformat(value)
    if isinstance(value, (int, float)):
        return datetime.utcfromtimestamp(float(value))
    raise TypeError(f"not a timestamp: {type(value).__name__}")


def _coerce_json(value):
    # Any JSON-serialisable structure is accepted as-is.
    json.dumps(value)
    return value


_COERCERS = {
    ColumnType.INTEGER: _coerce_integer,
    ColumnType.FLOAT: _coerce_float,
    ColumnType.TEXT: _coerce_text,
    ColumnType.BOOLEAN: _coerce_boolean,
    ColumnType.TIMESTAMP: _coerce_timestamp,
    ColumnType.JSON: _coerce_json,
}
