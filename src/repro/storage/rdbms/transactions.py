"""Transactions: all-or-nothing groups of mutations.

The engine uses coarse-grained snapshot transactions: entering a transaction
captures a snapshot of every table it touches lazily; rollback restores those
snapshots.  This is sufficient for the single-writer operational workload of
the platform and keeps the semantics easy to reason about.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ...errors import TransactionError

if TYPE_CHECKING:  # pragma: no cover
    from .database import Database


class Transaction:
    """A single open transaction (created via :meth:`Database.transaction`)."""

    def __init__(self, database: "Database") -> None:
        self._database = database
        self._snapshots: dict[str, dict[int, dict[str, Any]]] = {}
        self._active = True
        self._committed = False

    @property
    def active(self) -> bool:
        return self._active

    def capture(self, table_name: str) -> None:
        """Snapshot ``table_name`` before its first mutation inside the transaction."""
        if not self._active:
            raise TransactionError("transaction is no longer active")
        if table_name not in self._snapshots:
            table = self._database.table(table_name)
            self._snapshots[table_name] = table.snapshot()

    def commit(self) -> None:
        """Make every mutation performed during the transaction permanent."""
        if not self._active:
            raise TransactionError("transaction is no longer active")
        self._active = False
        self._committed = True
        self._snapshots.clear()
        self._database._end_transaction(self)

    def rollback(self) -> None:
        """Undo every mutation performed during the transaction."""
        if not self._active:
            raise TransactionError("transaction is no longer active")
        for table_name, snapshot in self._snapshots.items():
            self._database.table(table_name).restore(snapshot)
        self._active = False
        self._snapshots.clear()
        self._database._end_transaction(self)

    # ------------------------------------------------------- context manager

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        if self._active:
            if exc_type is None:
                self.commit()
            else:
                self.rollback()
        return False
