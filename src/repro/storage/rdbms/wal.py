"""Write-ahead log.

Every mutation of a :class:`~repro.storage.rdbms.database.Database` is
appended to the log before being applied.  File-backed logs (databases opened
with a data directory) are replayed on open so the operational store survives
restarts; in-memory logs back the change-data-capture pipeline, which tails
the log and ships committed mutations to the analytical warehouse.

Record sequence numbers are the platform's log sequence numbers (LSNs): they
increase monotonically for the lifetime of the log — ``truncate()`` discards
records but never rewinds the counter, so downstream consumers can rely on
LSN order for last-writer-wins conflict resolution.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from ...errors import StorageError
from ...logging_utils import get_logger

logger = get_logger("storage.wal")


@dataclass(frozen=True)
class WalRecord:
    """One logged mutation."""

    sequence: int
    operation: str
    table: str
    payload: dict[str, Any]
    ts: float = 0.0


class WriteAheadLog:
    """Append-only JSON-lines log of database mutations.

    With ``path=None`` the log lives purely in memory: no durability, but the
    same LSN and tailing semantics.  This is what a :class:`Database` without
    a data directory uses so CDC can still tail its mutations.
    """

    def __init__(self, path: Path | str | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._records: list[WalRecord] = []
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._sequence = self._last_sequence()
        else:
            self._sequence = 0

    def _last_sequence(self) -> int:
        assert self.path is not None
        if not self.path.exists():
            return 0
        last = 0
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    last = int(json.loads(line)["sequence"])
                except (json.JSONDecodeError, KeyError, ValueError):
                    continue
        return last

    @property
    def last_lsn(self) -> int:
        """The sequence number of the most recently appended record."""
        return self._sequence

    def append(self, operation: str, table: str, payload: dict[str, Any]) -> WalRecord:
        """Append one mutation record and return it."""
        self._sequence += 1
        record = WalRecord(
            sequence=self._sequence, operation=operation, table=table,
            payload=payload, ts=time.time(),
        )
        if self.path is None:
            self._records.append(record)
            return record
        line = json.dumps(
            {
                "sequence": record.sequence,
                "operation": record.operation,
                "table": record.table,
                "payload": record.payload,
                "ts": record.ts,
            },
            sort_keys=True,
            default=str,
        )
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        return record

    def replay(self) -> Iterator[WalRecord]:
        """Yield every valid record in the log, oldest first.

        A file whose *final* line does not parse as JSON is treated as a crash
        mid-append: replay stops before it and the partial tail is truncated
        from the file.  Undecodable lines elsewhere, and records that decode
        but are structurally invalid, still raise :class:`StorageError`.
        """
        if self.path is None:
            yield from list(self._records)
            return
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            raw_lines = handle.readlines()
        keep_bytes = 0
        for line_number, raw in enumerate(raw_lines, start=1):
            line = raw.strip()
            if not line:
                keep_bytes += len(raw.encode("utf-8"))
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                if line_number == len(raw_lines):
                    self._truncate_tail(keep_bytes)
                    return
                raise StorageError(
                    f"corrupt WAL record at {self.path}:{line_number}: {exc}"
                ) from exc
            try:
                yield WalRecord(
                    sequence=int(data["sequence"]),
                    operation=str(data["operation"]),
                    table=str(data["table"]),
                    payload=dict(data["payload"]),
                    ts=float(data.get("ts", 0.0)),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise StorageError(
                    f"corrupt WAL record at {self.path}:{line_number}: {exc}"
                ) from exc
            keep_bytes += len(raw.encode("utf-8"))

    def _truncate_tail(self, keep_bytes: int) -> None:
        assert self.path is not None
        with self.path.open("r+b") as handle:
            handle.truncate(keep_bytes)

    def records_after(self, lsn: int) -> Iterator[WalRecord]:
        """Yield records with a sequence number strictly greater than ``lsn``."""
        for record in self.replay():
            if record.sequence > lsn:
                yield record

    def truncate(self) -> None:
        """Discard the log contents (used after a checkpoint).

        The sequence counter is *not* rewound: LSNs stay monotonic across
        checkpoints so CDC cursors never see a sequence number twice.
        """
        if self.path is not None:
            if self.path.exists():
                self.path.unlink()
        self._records.clear()

    def prune(self, upto_lsn: int) -> int:
        """Drop in-memory records with ``sequence <= upto_lsn``.

        File-backed logs are left untouched — their records are the replay
        source on restart, so consumed-by-CDC does not mean disposable.
        Returns the number of records dropped.
        """
        if self.path is not None:
            return 0
        before = len(self._records)
        self._records = [r for r in self._records if r.sequence > upto_lsn]
        return before - len(self._records)

    def __len__(self) -> int:
        return sum(1 for _ in self.replay())


class WalTailer:
    """Yields WAL records past a durable cursor.

    The cursor records the highest LSN already handed to the consumer.  With
    a ``cursor_path`` it survives restarts (stored as a tiny JSON document);
    without one it lives only as long as the tailer.
    """

    def __init__(self, wal: WriteAheadLog, cursor_path: Path | str | None = None) -> None:
        self.wal = wal
        self.cursor_path = Path(cursor_path) if cursor_path is not None else None
        self._cursor = self._load_cursor()

    def _load_cursor(self) -> int:
        if self.cursor_path is None or not self.cursor_path.exists():
            return 0
        try:
            return int(json.loads(self.cursor_path.read_text(encoding="utf-8"))["lsn"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            # A torn/garbage cursor file (crash mid-write) must not take the
            # CDC sync job down: restart from the last durable position (LSN
            # 0 — everything still in the WAL re-publishes, and the
            # warehouse's exactly-once index absorbs the redelivery).
            logger.warning(
                "corrupt WAL cursor at %s (%s); restarting tail from LSN 0",
                self.cursor_path,
                exc,
            )
            return 0

    @property
    def cursor(self) -> int:
        return self._cursor

    def pending(self) -> int:
        """Number of records past the cursor still to be tailed."""
        return sum(1 for _ in self.wal.records_after(self._cursor))

    def tail(self) -> Iterator[WalRecord]:
        """Yield records past the cursor.  Does not advance it — call
        :meth:`advance` once the batch has been handed off durably."""
        yield from self.wal.records_after(self._cursor)

    def advance(self, lsn: int) -> None:
        """Move the cursor forward to ``lsn`` (never backwards)."""
        if lsn <= self._cursor:
            return
        self._cursor = lsn
        self._persist_cursor()

    def reset(self, lsn: int) -> None:
        """Force the cursor to ``lsn`` — recovery only, rewinds allowed.

        Used when the cursor got ahead of the WAL it tails (the WAL's LSN
        counter restarted, e.g. an in-memory log in a new process): leaving
        the cursor up high would silently skip every new record.
        """
        if lsn < 0:
            raise StorageError("WAL cursor cannot be negative")
        self._cursor = lsn
        self._persist_cursor()

    def _persist_cursor(self) -> None:
        if self.cursor_path is not None:
            self.cursor_path.parent.mkdir(parents=True, exist_ok=True)
            self.cursor_path.write_text(
                json.dumps({"lsn": self._cursor}), encoding="utf-8"
            )
