"""Write-ahead log.

Every mutation of a :class:`~repro.storage.rdbms.database.Database` opened
with a data directory is appended to a JSON-lines log before being applied,
and the log is replayed on open so the operational store survives restarts —
the durability property the platform's "robust fashion" claim rests on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from ...errors import StorageError


@dataclass(frozen=True)
class WalRecord:
    """One logged mutation."""

    sequence: int
    operation: str
    table: str
    payload: dict[str, Any]


class WriteAheadLog:
    """Append-only JSON-lines log of database mutations."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._sequence = self._last_sequence()

    def _last_sequence(self) -> int:
        if not self.path.exists():
            return 0
        last = 0
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    last = int(json.loads(line)["sequence"])
                except (json.JSONDecodeError, KeyError, ValueError):
                    continue
        return last

    def append(self, operation: str, table: str, payload: dict[str, Any]) -> WalRecord:
        """Append one mutation record and return it."""
        self._sequence += 1
        record = WalRecord(
            sequence=self._sequence, operation=operation, table=table, payload=payload
        )
        line = json.dumps(
            {
                "sequence": record.sequence,
                "operation": record.operation,
                "table": record.table,
                "payload": record.payload,
            },
            sort_keys=True,
            default=str,
        )
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        return record

    def replay(self) -> Iterator[WalRecord]:
        """Yield every valid record in the log, oldest first."""
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                    yield WalRecord(
                        sequence=int(data["sequence"]),
                        operation=str(data["operation"]),
                        table=str(data["table"]),
                        payload=dict(data["payload"]),
                    )
                except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                    raise StorageError(
                        f"corrupt WAL record at {self.path}:{line_number}: {exc}"
                    ) from exc

    def truncate(self) -> None:
        """Discard the log (used after a checkpoint/migration)."""
        if self.path.exists():
            self.path.unlink()
        self._sequence = 0

    def __len__(self) -> int:
        return sum(1 for _ in self.replay())
