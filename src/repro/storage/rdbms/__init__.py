"""Embedded relational engine (the "RDBMS" of the hybrid data layer)."""

from .types import ColumnType
from .schema import Column, TableSchema
from .expressions import Expression, Match, col, extract_constraints, lit, match
from .table import Table
from .index import HashIndex, SortedIndex
from .planner import AccessPlan, QueryPlan, plan_access
from .query import Query, QueryResult
from .database import Database
from .sql import parse_sql
from .wal import WriteAheadLog

__all__ = [
    "ColumnType",
    "Column",
    "TableSchema",
    "Expression",
    "Match",
    "col",
    "lit",
    "match",
    "extract_constraints",
    "Table",
    "HashIndex",
    "SortedIndex",
    "AccessPlan",
    "QueryPlan",
    "plan_access",
    "Query",
    "QueryResult",
    "Database",
    "parse_sql",
    "WriteAheadLog",
]
