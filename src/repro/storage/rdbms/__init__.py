"""Embedded relational engine (the "RDBMS" of the hybrid data layer)."""

from .types import ColumnType
from .schema import Column, TableSchema
from .expressions import Expression, col, lit
from .table import Table
from .index import HashIndex, SortedIndex
from .query import Query, QueryResult
from .database import Database
from .sql import parse_sql
from .wal import WriteAheadLog

__all__ = [
    "ColumnType",
    "Column",
    "TableSchema",
    "Expression",
    "col",
    "lit",
    "Table",
    "HashIndex",
    "SortedIndex",
    "Query",
    "QueryResult",
    "Database",
    "parse_sql",
    "WriteAheadLog",
]
