"""Embedded relational engine (the "RDBMS" of the hybrid data layer)."""

from .types import ColumnType
from .schema import Column, TableSchema
from .expressions import (
    BranchAtom,
    Expression,
    Match,
    col,
    extract_constraints,
    like_prefix,
    lit,
    match,
)
from .stats import ColumnStats, StatsPolicy, TableStats, build_table_stats
from .table import Table
from .index import HashIndex, SortedIndex
from .planner import (
    AccessPlan,
    PlanAlternative,
    PlannerMetrics,
    QueryPlan,
    StepEstimate,
    plan_access,
)
from .query import Query, QueryResult
from .database import Database
from .sql import parse_sql
from .wal import WriteAheadLog

__all__ = [
    "ColumnType",
    "Column",
    "TableSchema",
    "BranchAtom",
    "Expression",
    "Match",
    "col",
    "lit",
    "match",
    "extract_constraints",
    "like_prefix",
    "ColumnStats",
    "StatsPolicy",
    "TableStats",
    "build_table_stats",
    "Table",
    "HashIndex",
    "SortedIndex",
    "AccessPlan",
    "PlanAlternative",
    "PlannerMetrics",
    "StepEstimate",
    "QueryPlan",
    "plan_access",
    "Query",
    "QueryResult",
    "Database",
    "parse_sql",
    "WriteAheadLog",
]
