"""Expression AST used by the query layer and the SQL parser.

Expressions are built either programmatically (``col("rating") == "high"``,
``(col("reactions") > 10) & col("is_covid")``) or by the SQL parser, and are
evaluated against plain row dictionaries.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ...errors import ColumnNotFound


class Expression:
    """Base class of every expression node."""

    def evaluate(self, row: Mapping[str, Any]) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Names of the columns referenced by this expression."""
        return set()

    # -- comparison operators -------------------------------------------------

    def __eq__(self, other: object) -> "Comparison":  # type: ignore[override]
        return Comparison(self, _wrap(other), operator.eq, "=")

    def __ne__(self, other: object) -> "Comparison":  # type: ignore[override]
        return Comparison(self, _wrap(other), operator.ne, "!=")

    def __lt__(self, other: object) -> "Comparison":
        return Comparison(self, _wrap(other), operator.lt, "<")

    def __le__(self, other: object) -> "Comparison":
        return Comparison(self, _wrap(other), operator.le, "<=")

    def __gt__(self, other: object) -> "Comparison":
        return Comparison(self, _wrap(other), operator.gt, ">")

    def __ge__(self, other: object) -> "Comparison":
        return Comparison(self, _wrap(other), operator.ge, ">=")

    # -- boolean combinators ---------------------------------------------------

    def __and__(self, other: "Expression") -> "BooleanOp":
        return BooleanOp("and", [self, _wrap(other)])

    def __or__(self, other: "Expression") -> "BooleanOp":
        return BooleanOp("or", [self, _wrap(other)])

    def __invert__(self) -> "Not":
        return Not(self)

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other: object) -> "Arithmetic":
        return Arithmetic(self, _wrap(other), operator.add, "+")

    def __sub__(self, other: object) -> "Arithmetic":
        return Arithmetic(self, _wrap(other), operator.sub, "-")

    def __mul__(self, other: object) -> "Arithmetic":
        return Arithmetic(self, _wrap(other), operator.mul, "*")

    def __truediv__(self, other: object) -> "Arithmetic":
        return Arithmetic(self, _wrap(other), operator.truediv, "/")

    # -- predicates -------------------------------------------------------------

    def is_in(self, values) -> "InList":
        return InList(self, list(values))

    def is_null(self) -> "IsNull":
        return IsNull(self, negate=False)

    def is_not_null(self) -> "IsNull":
        return IsNull(self, negate=True)

    def like(self, pattern: str) -> "Like":
        return Like(self, pattern)

    def match(self, query: str) -> "Match":
        """Full-text MATCH over the referenced column(s)."""
        return Match(tuple(sorted(self.columns())), query)

    # dataclass-like equality is intentionally repurposed for the DSL, so the
    # objects are identity-hashed.
    __hash__ = object.__hash__


def _wrap(value: object) -> Expression:
    return value if isinstance(value, Expression) else Literal(value)


class ColumnRef(Expression):
    """Reference to a column of the current row."""

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        if self.name not in row:
            raise ColumnNotFound(f"row has no column {self.name!r}")
        return row[self.name]

    def columns(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Literal(Expression):
    """A constant value."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        return self.value

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


class Comparison(Expression):
    """Binary comparison; NULL on either side yields False (SQL-ish semantics)."""

    def __init__(self, left: Expression, right: Expression,
                 op: Callable[[Any, Any], bool], symbol: str) -> None:
        self.left = left
        self.right = right
        self.op = op
        self.symbol = symbol

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            # SQL three-valued logic collapsed to False for filtering purposes,
            # except IS-style equality with None handled by IsNull.
            if self.symbol == "=":
                return left is None and right is None
            if self.symbol == "!=":
                return (left is None) != (right is None)
            return False
        return bool(self.op(left, right))

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class Arithmetic(Expression):
    """Binary arithmetic over row values (NULL propagates)."""

    def __init__(self, left: Expression, right: Expression,
                 op: Callable[[Any, Any], Any], symbol: str) -> None:
        self.left = left
        self.right = right
        self.op = op
        self.symbol = symbol

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return None
        return self.op(left, right)

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class BooleanOp(Expression):
    """AND / OR over any number of operands."""

    def __init__(self, kind: str, operands: list[Expression]) -> None:
        if kind not in ("and", "or"):
            raise ValueError(f"unknown boolean operator: {kind}")
        self.kind = kind
        self.operands = operands

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        values = (bool(op.evaluate(row)) for op in self.operands)
        return all(values) if self.kind == "and" else any(values)

    def columns(self) -> set[str]:
        out: set[str] = set()
        for op in self.operands:
            out |= op.columns()
        return out

    def __repr__(self) -> str:
        joiner = f" {self.kind.upper()} "
        return "(" + joiner.join(repr(op) for op in self.operands) + ")"


class Not(Expression):
    """Logical negation."""

    def __init__(self, operand: Expression) -> None:
        self.operand = operand

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return not bool(self.operand.evaluate(row))

    def columns(self) -> set[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"NOT {self.operand!r}"


class InList(Expression):
    """Membership test against a fixed list of values."""

    def __init__(self, operand: Expression, values: list[Any]) -> None:
        self.operand = operand
        self.values = values

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        value = self.operand.evaluate(row)
        if value is None:
            return False
        return value in self.values

    def columns(self) -> set[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"{self.operand!r} IN {self.values!r}"


class IsNull(Expression):
    """IS NULL / IS NOT NULL test."""

    def __init__(self, operand: Expression, negate: bool) -> None:
        self.operand = operand
        self.negate = negate

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        is_null = self.operand.evaluate(row) is None
        return not is_null if self.negate else is_null

    def columns(self) -> set[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"{self.operand!r} IS {'NOT ' if self.negate else ''}NULL"


class Like(Expression):
    """SQL LIKE with ``%`` (any run) and ``_`` (single char) wildcards.

    Matching is case-sensitive (standard SQL LIKE semantics), which is what
    lets the planner answer ``col LIKE 'abc%'`` from a sorted index as the
    range ``['abc', 'abd')`` — a case-folding match would not be a subset of
    that range.
    """

    def __init__(self, operand: Expression, pattern: str) -> None:
        import re

        self.operand = operand
        self.pattern = pattern
        # Protect the wildcards, escape everything else, then expand them.
        protected = pattern.replace("%", "\x00").replace("_", "\x01")
        escaped = re.escape(protected).replace("\x00", ".*").replace("\x01", ".")
        self._regex = re.compile(f"^{escaped}$")

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        value = self.operand.evaluate(row)
        if value is None:
            return False
        return bool(self._regex.match(str(value)))

    def columns(self) -> set[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"{self.operand!r} LIKE {self.pattern!r}"


class Match(Expression):
    """Full-text MATCH predicate over one or more text columns.

    The analyzed query terms are ANDed; a term with a trailing ``*`` matches
    any token extending it.  Row-level evaluation re-analyzes the row's text
    with the *same* analyzer the FTS engine indexes with
    (:mod:`repro.storage.fts.analysis`), so the executor can verify any
    index-provided candidate — and a table without an FTS index still answers
    MATCH correctly via a full scan.
    """

    def __init__(self, columns, query: str) -> None:
        self.match_columns = tuple(columns)
        self.query = query

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        from ..fts.analysis import analyze, document_text, parse_query

        terms = parse_query(self.query)
        if not terms:
            return False  # an empty/punctuation-only query matches nothing
        tokens = analyze(document_text(row, self.match_columns))
        return all(
            any(term.matches_token(token) for token in tokens) for term in terms
        )

    def columns(self) -> set[str]:
        return set(self.match_columns)

    def __repr__(self) -> str:
        cols = ",".join(self.match_columns)
        return f"MATCH({cols}, {self.query!r})"


def match(columns, query: str) -> Match:
    """Build a MATCH predicate over ``columns`` (a name or an iterable)."""
    if isinstance(columns, str):
        columns = (columns,)
    return Match(tuple(columns), query)


def col(name: str) -> ColumnRef:
    """Build a column reference (entry point of the expression DSL)."""
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    """Build a literal expression."""
    return Literal(value)


@dataclass
class RangeConstraint:
    """A (possibly half-open) interval constraint on one column.

    ``low``/``high`` of ``None`` mean unbounded on that side.  Bounds are
    *necessary* conditions implied by the predicate, so a planner may use them
    to narrow candidates while still re-evaluating the full predicate.
    """

    low: Any = None
    high: Any = None
    include_low: bool = True
    include_high: bool = True

    def tighten_low(self, value: Any, inclusive: bool) -> None:
        if self.low is None:
            self.low, self.include_low = value, inclusive
            return
        try:
            if value > self.low:
                self.low, self.include_low = value, inclusive
            elif value == self.low:
                self.include_low = self.include_low and inclusive
        except TypeError:
            # Heterogeneous bounds: keeping the existing (looser-or-equal)
            # bound is always safe for a candidate superset.
            pass

    def tighten_high(self, value: Any, inclusive: bool) -> None:
        if self.high is None:
            self.high, self.include_high = value, inclusive
            return
        try:
            if value < self.high:
                self.high, self.include_high = value, inclusive
            elif value == self.high:
                self.include_high = self.include_high and inclusive
        except TypeError:
            pass

    def is_bounded(self) -> bool:
        return self.low is not None or self.high is not None


def like_prefix(pattern: str) -> str | None:
    """Leading literal run of a LIKE pattern, before the first wildcard.

    Every match of the pattern starts with this prefix (LIKE is
    case-sensitive), so it is a necessary condition the planner can answer
    from a sorted index.  ``None`` when the pattern opens with a wildcard.
    """
    for i, char in enumerate(pattern):
        if char in ("%", "_"):
            return pattern[:i] or None
    return pattern or None


@dataclass(frozen=True)
class BranchAtom:
    """One OR branch normalised to an index-answerable atom.

    ``kind`` is ``"eq"`` (``value`` holds the literal), ``"in"`` (``values``
    holds the non-NULL list members), ``"range"`` (``interval`` holds the
    bounds) or ``"prefix"`` (``value`` holds the LIKE prefix).
    """

    kind: str
    column: str
    value: Any = None
    values: tuple[Any, ...] = ()
    interval: RangeConstraint | None = None


@dataclass
class PredicateConstraints:
    """Index-usable constraints extracted from the top-level AND conjuncts.

    * ``equalities`` — ``column = literal`` conjuncts.
    * ``ranges`` — merged ``<``/``<=``/``>``/``>=`` bounds per column
      (a BETWEEN-style ``(col >= a) & (col <= b)`` collapses to one range).
    * ``prefixes`` — ``column LIKE 'abc%'``-style conjuncts, reduced to the
      longest literal prefix per column (answerable as a sorted-index range).
    * ``disjunctions`` — OR conjuncts whose every branch normalises to a
      :class:`BranchAtom` (equality, IN list, range or LIKE prefix).
    * ``matches`` — full-text :class:`Match` conjuncts, answerable from a
      table's FTS index when one covers the matched columns.

    Every entry is a necessary condition of the predicate, so candidate rows
    derived from any subset remain a superset of the true matches.
    """

    equalities: dict[str, Any] = field(default_factory=dict)
    ranges: dict[str, RangeConstraint] = field(default_factory=dict)
    prefixes: dict[str, str] = field(default_factory=dict)
    disjunctions: list[list[BranchAtom]] = field(default_factory=list)
    matches: list["Match"] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not (
            self.equalities
            or self.ranges
            or self.prefixes
            or self.disjunctions
            or self.matches
        )


_RANGE_SYMBOLS = {"<", "<=", ">", ">="}
_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _column_literal(node: Comparison) -> tuple[str, Any, str] | None:
    """Normalise a comparison to ``(column, literal, symbol)`` (column left)."""
    if isinstance(node.left, ColumnRef) and isinstance(node.right, Literal):
        return node.left.name, node.right.value, node.symbol
    if isinstance(node.right, ColumnRef) and isinstance(node.left, Literal):
        symbol = _FLIPPED.get(node.symbol, node.symbol)
        return node.right.name, node.left.value, symbol
    return None


def _branch_atoms(node: Expression) -> list[BranchAtom] | None:
    """Flatten an OR subtree into index-answerable :class:`BranchAtom`\\ s.

    Returns ``None`` when any branch cannot be normalised (the disjunction
    would miss rows if answered partially from indexes).  An empty-IN branch
    matches nothing and contributes no atom at all.
    """
    if isinstance(node, BooleanOp) and node.kind == "or":
        atoms: list[BranchAtom] = []
        for operand in node.operands:
            sub = _branch_atoms(operand)
            if sub is None:
                return None
            atoms.extend(sub)
        return atoms
    if isinstance(node, Comparison):
        normalized = _column_literal(node)
        if normalized is None:
            return None
        column, value, symbol = normalized
        if value is None:
            # ``col = NULL`` matches rows whose value IS NULL, and NULLs are
            # never indexed — an index union would silently drop those rows.
            return None
        if symbol == "=":
            return [BranchAtom(kind="eq", column=column, value=value)]
        if symbol in _RANGE_SYMBOLS:
            interval = RangeConstraint()
            if symbol in (">", ">="):
                interval.tighten_low(value, symbol == ">=")
            else:
                interval.tighten_high(value, symbol == "<=")
            return [BranchAtom(kind="range", column=column, interval=interval)]
        return None
    if isinstance(node, InList) and isinstance(node.operand, ColumnRef):
        # NULL list members are inert (IN never matches through NULL), so
        # they are simply skipped rather than poisoning the whole branch.
        values = tuple(value for value in node.values if value is not None)
        if not values:
            return []  # IN () matches nothing — the branch adds no rows
        return [BranchAtom(kind="in", column=node.operand.name, values=values)]
    if isinstance(node, Like) and isinstance(node.operand, ColumnRef):
        prefix = like_prefix(node.pattern)
        if prefix is None:
            return None  # leading wildcard: no index-answerable prefix
        return [BranchAtom(kind="prefix", column=node.operand.name, value=prefix)]
    return None


def extract_constraints(expression: Expression | None) -> PredicateConstraints:
    """Extract every index-usable constraint from a predicate.

    Walks the top-level AND tree and collects equalities, range bounds,
    LIKE-prefix bounds and OR disjunctions (equality / IN / range / prefix
    branches); anything else (NOT, arithmetic, column-to-column
    comparisons …) is ignored, which is safe because the executor
    re-evaluates the full predicate on every candidate row.
    """
    constraints = PredicateConstraints()
    if expression is None:
        return constraints

    def visit(node: Expression) -> None:
        if isinstance(node, BooleanOp) and node.kind == "and":
            for operand in node.operands:
                visit(operand)
            return
        if isinstance(node, Match):
            constraints.matches.append(node)
            return
        if isinstance(node, Comparison):
            normalized = _column_literal(node)
            if normalized is None:
                return
            column, value, symbol = normalized
            if value is None:
                return  # NULL comparisons never match through an index
            if symbol == "=":
                constraints.equalities[column] = value
            elif symbol in _RANGE_SYMBOLS:
                rng = constraints.ranges.setdefault(column, RangeConstraint())
                if symbol in (">", ">="):
                    rng.tighten_low(value, symbol == ">=")
                else:
                    rng.tighten_high(value, symbol == "<=")
            return
        if isinstance(node, Like) and isinstance(node.operand, ColumnRef):
            prefix = like_prefix(node.pattern)
            if prefix is not None:
                column = node.operand.name
                # Several LIKEs on one column: the longest prefix is tightest.
                if len(prefix) > len(constraints.prefixes.get(column, "")):
                    constraints.prefixes[column] = prefix
            return
        branches = _branch_atoms(node)
        if branches:
            constraints.disjunctions.append(branches)

    visit(expression)
    return constraints


def equality_lookup(expression: Expression | None) -> dict[str, Any]:
    """Extract ``column = literal`` constraints from a predicate.

    Kept as the historical entry point; the planner now uses the richer
    :func:`extract_constraints`.  Only top-level comparisons and
    AND-combinations contribute.
    """
    return extract_constraints(expression).equalities
