"""Fault injection, retries, circuit breaking and health for the data layer.

The platform's robustness claims are only testable if failure is an *input*:
this module provides the four pieces every storage/streaming layer shares.

* :class:`FaultInjector` — a seeded, deterministic source of injected
  failures.  Tests (and the chaos CI job) arm named sites — ``dfs.write``,
  ``dfs.read``, ``broker.publish``, ``broker.poll``, ``checkpoint.save`` —
  with scripted (*fail the next N calls*) or probabilistic (*fail each call
  with probability p, from a seeded RNG*) faults, transient or persistent.
  Production code paths call :meth:`FaultInjector.check` at each site; with
  no injector armed the check is a no-op.
* :class:`RetryPolicy` — shared retry discipline: exponential backoff with
  jitter, a wall-clock timeout budget, and retryable-vs-fatal error
  classification.  Sleep and RNG are injectable so tests run instantly and
  deterministically.
* :class:`CircuitBreaker` — closed → open → half-open state machine that
  stops a caller from hot-looping on a dependency that keeps failing (e.g.
  the CDC applier on a poisoned batch).
* :class:`HealthMonitor` / :class:`SubsystemHealth` — per-subsystem
  ok/degraded/failed state with the last error and retry/failure counters,
  surfaced through ``SciLensPlatform.status()["health"]``.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..errors import CircuitOpenError, RetryExhaustedError, TransientFaultError

__all__ = [
    "FAULT_SITES",
    "CircuitBreaker",
    "FaultInjector",
    "HealthMonitor",
    "RetryPolicy",
    "SubsystemHealth",
]

#: The named fault-injection sites wired into the storage/streaming layers.
FAULT_SITES = (
    "dfs.write",
    "dfs.read",
    "broker.publish",
    "broker.poll",
    "checkpoint.save",
)


@dataclass
class _FaultPlan:
    """One armed fault at a site (scripted count and/or probabilistic)."""

    site: str
    probability: float | None = None
    remaining: int | None = None
    persistent: bool = False
    error: Callable[[str], Exception] | None = None

    def should_fire(self, rng: random.Random) -> bool:
        if self.remaining is not None and self.remaining <= 0:
            return False
        if self.probability is not None and rng.random() >= self.probability:
            return False
        if self.remaining is not None:
            self.remaining -= 1
        return True

    def make_error(self, site: str, detail: str) -> Exception:
        if self.error is not None:
            return self.error(detail)
        kind = "persistent" if self.persistent else "transient"
        suffix = f" ({detail})" if detail else ""
        return TransientFaultError(f"injected {kind} fault at {site}{suffix}")


class FaultInjector:
    """Seeded, deterministic fault source shared across the pipeline.

    One injector instance is threaded through DFS, broker, checkpoint store
    and CDC; each layer calls :meth:`check` at its site.  ``seed`` fixes the
    probabilistic draw order, so a chaos run replays identically.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._lock = threading.RLock()
        self._plans: dict[str, list[_FaultPlan]] = {}
        self._triggered: dict[str, int] = {}
        self._checked: dict[str, int] = {}

    def inject(
        self,
        site: str,
        *,
        probability: float | None = None,
        count: int | None = None,
        persistent: bool = False,
        error: Callable[[str], Exception] | None = None,
    ) -> None:
        """Arm a fault at ``site``.

        ``count=N`` scripts the next N checks to fail; ``probability=p``
        makes each check fail with probability *p* (seeded RNG); combined,
        at most N probabilistic failures fire.  ``persistent=True`` marks
        the fault non-transient (still :class:`TransientFaultError` by
        default so retries engage — pass ``error`` for a fatal class).
        With neither ``count`` nor ``probability``, every check fails
        until :meth:`disarm`.
        """
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise ValueError("fault probability must be in [0, 1]")
        if count is not None and count < 1:
            raise ValueError("fault count must be >= 1")
        plan = _FaultPlan(
            site=site,
            probability=probability,
            remaining=count,
            persistent=persistent,
            error=error,
        )
        with self._lock:
            self._plans.setdefault(site, []).append(plan)

    def disarm(self, site: str | None = None) -> None:
        """Remove every armed fault at ``site`` (or everywhere)."""
        with self._lock:
            if site is None:
                self._plans.clear()
            else:
                self._plans.pop(site, None)

    def check(self, site: str, detail: str = "") -> None:
        """Raise the armed fault for ``site``, if any fires (else no-op)."""
        with self._lock:
            self._checked[site] = self._checked.get(site, 0) + 1
            plans = self._plans.get(site)
            if not plans:
                return
            for plan in plans:
                if plan.should_fire(self._rng):
                    self._triggered[site] = self._triggered.get(site, 0) + 1
                    raise plan.make_error(site, detail)
            # Drop exhausted scripted plans so checks stay O(armed faults).
            self._plans[site] = [
                p for p in plans if p.remaining is None or p.remaining > 0
            ]

    def triggered(self, site: str | None = None) -> int:
        """Faults fired at ``site`` (or in total) since construction."""
        with self._lock:
            if site is not None:
                return self._triggered.get(site, 0)
            return sum(self._triggered.values())

    def checked(self, site: str) -> int:
        """Times ``site`` has been checked (fired or not)."""
        with self._lock:
            return self._checked.get(site, 0)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff + jitter with a timeout budget.

    ``call`` retries ``fn`` on the configured retryable error classes,
    sleeping ``min(max_delay, base_delay * 2**attempt) * (1 + jitter*U)``
    between attempts, and raises :class:`RetryExhaustedError` (with the last
    error as ``__cause__``) once ``max_attempts`` or the ``timeout`` budget
    is spent.  Non-retryable errors propagate immediately.
    """

    max_attempts: int = 4
    base_delay: float = 0.01
    max_delay: float = 1.0
    jitter: float = 0.5
    #: Total wall-clock budget in seconds across all attempts (None = unbounded).
    timeout: float | None = None
    retryable: tuple[type[BaseException], ...] = (TransientFaultError,)
    #: Injectable for tests: a no-op sleep makes retries instantaneous.
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)

    def is_retryable(self, error: BaseException) -> bool:
        return isinstance(error, self.retryable)

    def delay_for(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        base = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        draw = (rng or random).random()
        return base * (1.0 + self.jitter * draw)

    def call(
        self,
        fn: Callable[[], object],
        *,
        description: str = "operation",
        on_retry: Callable[[int, BaseException], None] | None = None,
        rng: random.Random | None = None,
    ):
        """Run ``fn`` under this policy and return its result."""
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        started = self.clock()
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except BaseException as exc:  # noqa: BLE001 - classified below
                if not self.is_retryable(exc):
                    raise
                budget_spent = self.clock() - started
                out_of_budget = self.timeout is not None and budget_spent >= self.timeout
                if attempt >= self.max_attempts or out_of_budget:
                    reason = "timeout budget spent" if out_of_budget else "attempts exhausted"
                    raise RetryExhaustedError(
                        f"{description} failed after {attempt} attempt(s) ({reason}): {exc}",
                        attempts=attempt,
                    ) from exc
                if on_retry is not None:
                    on_retry(attempt, exc)
                self.sleep(self.delay_for(attempt, rng))


class CircuitBreaker:
    """Closed → open → half-open breaker guarding a flaky dependency.

    ``failure_threshold`` consecutive failures open the circuit; while open,
    :meth:`allow` raises :class:`CircuitOpenError` without attempting the
    operation.  After ``cooldown`` seconds one probe is let through
    (half-open): success closes the circuit, failure re-opens it.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.RLock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self.open_count = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == "open"
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.cooldown
        ):
            self._state = "half-open"

    def allow(self, description: str = "operation") -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed."""
        with self._lock:
            self._maybe_half_open()
            if self._state == "open":
                remaining = 0.0
                if self._opened_at is not None:
                    remaining = max(
                        0.0, self.cooldown - (self._clock() - self._opened_at)
                    )
                raise CircuitOpenError(
                    f"circuit open for {description}: "
                    f"{self._consecutive_failures} consecutive failure(s), "
                    f"probe in {remaining:.3f}s"
                )

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._consecutive_failures = 0
            self._opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == "half-open" or (
                self._consecutive_failures >= self.failure_threshold
            ):
                if self._state != "open":
                    self.open_count += 1
                self._state = "open"
                self._opened_at = self._clock()


@dataclass
class SubsystemHealth:
    """Health of one subsystem: ok / degraded / failed + counters."""

    name: str
    state: str = "ok"
    last_error: str | None = None
    retries: int = 0
    failures: int = 0
    recoveries: int = 0

    def note_retry(self, error: BaseException | None = None) -> None:
        self.retries += 1
        if error is not None:
            self.last_error = f"{type(error).__name__}: {error}"

    def degrade(self, error: BaseException | str) -> None:
        self.failures += 1
        self.last_error = (
            error if isinstance(error, str) else f"{type(error).__name__}: {error}"
        )
        if self.state != "failed":
            self.state = "degraded"

    def fail(self, error: BaseException | str) -> None:
        self.failures += 1
        self.last_error = (
            error if isinstance(error, str) else f"{type(error).__name__}: {error}"
        )
        self.state = "failed"

    def recover(self) -> None:
        if self.state != "ok":
            self.recoveries += 1
        self.state = "ok"

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "last_error": self.last_error,
            "retries": self.retries,
            "failures": self.failures,
            "recoveries": self.recoveries,
        }


class HealthMonitor:
    """Thread-safe registry of :class:`SubsystemHealth` records."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._subsystems: dict[str, SubsystemHealth] = {}

    def subsystem(self, name: str) -> SubsystemHealth:
        """The (created-on-first-use) health record for ``name``."""
        with self._lock:
            health = self._subsystems.get(name)
            if health is None:
                health = SubsystemHealth(name=name)
                self._subsystems[name] = health
            return health

    def names(self) -> Iterable[str]:
        with self._lock:
            return tuple(self._subsystems)

    def overall(self) -> str:
        """Worst state across subsystems (``ok`` when none registered)."""
        rank = {"ok": 0, "degraded": 1, "failed": 2}
        with self._lock:
            worst = "ok"
            for health in self._subsystems.values():
                if rank[health.state] > rank[worst]:
                    worst = health.state
            return worst

    def report(self) -> dict:
        """``{"overall": ..., "subsystems": {name: snapshot}}`` for status()."""
        with self._lock:
            return {
                "overall": self.overall(),
                "subsystems": {
                    name: health.snapshot()
                    for name, health in sorted(self._subsystems.items())
                },
            }
