"""CDC-fed incremental index maintenance.

:class:`FtsIndexer` is a second consumer group over the existing
``cdc.<table>`` row-delta topics (alongside the warehouse's
:class:`~repro.storage.cdc.DeltaApplier`): it polls batched deltas, applies
them to an :class:`~.index.FtsIndex` with the message's WAL LSN, flushes a
segment, and only then commits offsets.  A crash between flush and commit
redelivers the batch; the index's per-document LSN check drops every
duplicate, so maintenance is exactly-once without coordination — the same
contract the delta applier keeps with the warehouse.

Bootstrap backfill: when the migration bootstraps the warehouse directly from
table scans it advances the CDC cursor past the copied rows, so those rows
never appear on the topics.  :meth:`FtsIndexer.bootstrap` covers that path by
feeding the current rows straight into the index at the bootstrap cursor LSN
— later CDC messages carry higher LSNs and win as usual.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..faults import RetryPolicy, SubsystemHealth
from .analysis import document_text
from .index import FtsIndex


class FtsIndexer:
    """Tails one table's CDC topic into an FTS index, exactly-once."""

    def __init__(
        self,
        index: FtsIndex,
        broker,
        table: str = "articles",
        columns: Iterable[str] = ("title", "text"),
        primary_key: str = "article_id",
        topic_prefix: str = "cdc.",
        group: str = "fts-indexer",
        checkpoints=None,
        batch_docs: int = 256,
        retry_policy: RetryPolicy | None = None,
        health: SubsystemHealth | None = None,
    ) -> None:
        from ...streaming.consumer import Consumer  # deferred: streaming is optional here

        self.index = index
        self.broker = broker
        self.columns = tuple(columns)
        self.primary_key = primary_key
        self.topic = f"{topic_prefix}{table}"
        self.batch_docs = max(1, batch_docs)
        self.retry_policy = retry_policy
        self.health = health
        broker.create_topic(self.topic)
        self.consumer = Consumer(
            broker, group=group, topics=[self.topic], checkpoints=checkpoints
        )
        self.indexed = 0
        self.deleted = 0

    def lag(self) -> int:
        """CDC messages published but not yet reflected in the index."""
        return self.consumer.lag()

    def _poll(self):
        if self.retry_policy is None:
            return self.consumer.poll(max_messages=self.batch_docs)

        def note(_attempt: int, exc: BaseException) -> None:
            if self.health is not None:
                self.health.note_retry(exc)

        return self.retry_policy.call(
            lambda: self.consumer.poll(max_messages=self.batch_docs),
            description="fts poll",
            on_retry=note,
        )

    def run(self) -> dict[str, Any]:
        """Drain the topic in batches: apply → flush → commit.

        Offsets are committed only after the segment flush succeeded, so a
        crash at any point redelivers at-least-once and the index's LSN check
        turns that into exactly-once.
        """
        report = {"messages": 0, "indexed": 0, "deleted": 0, "stale": 0, "segments": 0}
        while True:
            messages = self._poll()
            if not messages:
                break
            for message in messages:
                value = message.value
                row = value.get("row") or {}
                doc_id = row.get(self.primary_key)
                if doc_id is None:
                    continue
                if value.get("op") == "d":
                    applied = self.index.delete(doc_id, lsn=value["lsn"])
                    counter = "deleted"
                else:
                    applied = self.index.add(
                        doc_id,
                        text=document_text(row, self.columns),
                        lsn=value["lsn"],
                    )
                    counter = "indexed"
                if applied:
                    report[counter] += 1
                else:
                    report["stale"] += 1
            if self.index.flush() is not None:
                report["segments"] += 1
            self.consumer.commit(messages)
            report["messages"] += len(messages)
        self.indexed += report["indexed"]
        self.deleted += report["deleted"]
        return report

    def bootstrap(self, rows: Iterable[dict], lsn: int) -> int:
        """Index ``rows`` directly at ``lsn`` (migration-bootstrap backfill)."""
        count = 0
        for row in rows:
            doc_id = row.get(self.primary_key)
            if doc_id is None:
                continue
            if self.index.add(doc_id, text=document_text(row, self.columns), lsn=lsn):
                count += 1
        if count:
            self.index.flush()
        return count

    def recover(self, redeliver: bool = False) -> dict[str, Any]:
        """Reconcile after a restart; with ``redeliver`` replay the topic.

        The index recovers its own state from segments; when consumer offsets
        were lost, seeking to the beginning replays the full topic and the
        LSN check lands zero duplicates.
        """
        if redeliver:
            self.broker.seek_to_beginning(self.consumer.group, self.topic)
        return {"redelivered": redeliver, "lag": self.lag(), "last_lsn": self.index.last_lsn}
