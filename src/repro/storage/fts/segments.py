"""Immutable FTS posting-list segments on the warehouse format-4 wire.

A segment is one flushed batch of documents: a JSON header (document ids,
the sorted term dictionary, per-term segment specs) followed by a binary body
of typed integer segments — exactly the frame the v4 warehouse blocks use
(:func:`~repro.storage.warehouse.blocks.wrap_payload` magic + codec byte,
4-byte header length, narrowest-fit signed-integer arrays).

Layout
------

Header (JSON, keys sorted)::

    {
      "format": 1,
      "kind": "fts",
      "segment_id": <int>,
      "docs": [doc_id, ...],          # sorted; JSON strings or ints
      "lsns": <seg>,                  # per-doc last-writer LSN
      "lens": <seg>,                  # per-doc token count; -1 = tombstone
      "terms": [[term, docs_seg, tfs_seg, pos_seg], ...]   # sorted by term
    }

Body: the referenced ``seg`` specs (``{"t", "off", "n"}``).  Per term,
``docs_seg`` holds ordinals into ``docs`` (ascending), ``tfs_seg`` the term
frequency per posting, and ``pos_seg`` the concatenated token positions of
every posting — a posting's positions are its next ``tf`` values, so no
separate length array is needed.

Tombstones travel *inside* segments (``lens`` entry of ``-1``) rather than
only in the manifest: a full directory rescan after a torn manifest
reconstructs exact liveness, so a crash can never resurrect a deleted
document (no ghost postings).

Query-time decoding is lazy per term, like the warehouse's lazy columns:
only the posting lists of the queried terms are materialised.
"""

from __future__ import annotations

import json
from array import array
from bisect import bisect_left
from typing import Any, Iterable, Iterator, Sequence

from ...errors import FtsError
from ..warehouse.blocks import (
    append_segment,
    int_typecode,
    read_segment,
    split_payload,
    unwrap_payload,
    wrap_payload,
)

SEGMENT_FORMAT = 1
SEGMENT_KIND = "fts"

#: A tombstone's ``lens`` entry: the document was deleted at its LSN.
TOMBSTONE_LEN = -1


def _typecode_for(values: Sequence[int]) -> str:
    """Narrowest signed typecode covering ``values`` (``b`` when empty)."""
    if not values:
        return "b"
    typecode = int_typecode(min(values), max(values))
    if typecode is None:
        raise FtsError(f"posting values out of int64 range: {min(values)}..{max(values)}")
    return typecode


def build_segment_payload(
    segment_id: int,
    doc_meta: Sequence[tuple[Any, int, int]],
    term_postings: dict[str, dict[int, Sequence[int]]],
    compression_level: int = 6,
) -> bytes:
    """Serialise a segment; the single code path for fresh builds *and* merges.

    ``doc_meta`` is ``[(doc_id, lsn, length)]`` already sorted by doc id
    (``length`` is :data:`TOMBSTONE_LEN` for deletions); ``term_postings``
    maps ``term -> {ordinal: positions}`` with ordinals indexing ``doc_meta``.
    Because merges re-enter through this exact function with the remapped
    postings, a merged segment's postings are bit-identical to a fresh build
    of the same logical content.
    """
    body = bytearray()
    lsns = [lsn for _, lsn, _ in doc_meta]
    lens = [length for _, _, length in doc_meta]
    lsns_seg = append_segment(body, _typecode_for(lsns), lsns)
    lens_seg = append_segment(body, _typecode_for(lens), lens)
    terms_spec = []
    for term in sorted(term_postings):
        postings = sorted(term_postings[term].items())
        ordinals = [ordinal for ordinal, _ in postings]
        tfs = [len(positions) for _, positions in postings]
        flat_positions = [pos for _, positions in postings for pos in positions]
        terms_spec.append(
            [
                term,
                append_segment(body, _typecode_for(ordinals), ordinals),
                append_segment(body, _typecode_for(tfs), tfs),
                append_segment(body, _typecode_for(flat_positions), flat_positions),
            ]
        )
    header = {
        "format": SEGMENT_FORMAT,
        "kind": SEGMENT_KIND,
        "segment_id": segment_id,
        "docs": [doc_id for doc_id, _, _ in doc_meta],
        "lsns": lsns_seg,
        "lens": lens_seg,
        "terms": terms_spec,
    }
    encoded = json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")
    payload = len(encoded).to_bytes(4, "big") + encoded + bytes(body)
    return wrap_payload(payload, compression_level)


def build_segment_from_docs(
    segment_id: int,
    docs: Iterable[tuple[Any, int, Sequence[str] | None]],
    compression_level: int = 6,
) -> bytes:
    """Serialise ``(doc_id, lsn, tokens-or-None)`` documents into a segment.

    ``tokens=None`` writes a tombstone.  Documents are sorted by id; postings
    are derived from token positions and routed through
    :func:`build_segment_payload`.
    """
    entries = sorted(docs, key=lambda entry: _doc_sort_key(entry[0]))
    doc_meta = []
    term_postings: dict[str, dict[int, list[int]]] = {}
    for ordinal, (doc_id, lsn, tokens) in enumerate(entries):
        if tokens is None:
            doc_meta.append((doc_id, lsn, TOMBSTONE_LEN))
            continue
        doc_meta.append((doc_id, lsn, len(tokens)))
        for position, token in enumerate(tokens):
            term_postings.setdefault(token, {}).setdefault(ordinal, []).append(position)
    return build_segment_payload(segment_id, doc_meta, term_postings, compression_level)


def _doc_sort_key(doc_id: Any):
    """Stable ordering for document ids (homogeneous int or str per index)."""
    return (isinstance(doc_id, str), doc_id)


class Segment:
    """A decoded, lazily-materialised posting-list segment."""

    def __init__(self, data: bytes) -> None:
        payload = unwrap_payload(data)
        header, base = split_payload(payload)
        if header.get("kind") != SEGMENT_KIND or header.get("format") != SEGMENT_FORMAT:
            raise FtsError(f"not an FTS segment: kind={header.get('kind')!r}")
        self._payload = payload
        self._base = base
        self.segment_id: int = header["segment_id"]
        self.doc_ids: list[Any] = list(header["docs"])
        self.lsns: array = read_segment(header["lsns"], payload, base)
        self.lens: array = read_segment(header["lens"], payload, base)
        if not (len(self.doc_ids) == len(self.lsns) == len(self.lens)):
            raise FtsError("corrupt FTS segment: doc metadata lengths disagree")
        #: Sorted term dictionary and per-term body specs (decoded on demand).
        self._terms: list[str] = [spec[0] for spec in header["terms"]]
        self._specs: dict[str, tuple[dict, dict, dict]] = {
            spec[0]: (spec[1], spec[2], spec[3]) for spec in header["terms"]
        }

    def __len__(self) -> int:
        return len(self.doc_ids)

    @property
    def terms(self) -> list[str]:
        """The segment's sorted vocabulary."""
        return self._terms

    def has_term(self, term: str) -> bool:
        return term in self._specs

    def doc_entries(self) -> Iterator[tuple[Any, int, int]]:
        """Yield ``(doc_id, lsn, length)`` per document (tombstones included)."""
        for ordinal, doc_id in enumerate(self.doc_ids):
            yield doc_id, self.lsns[ordinal], self.lens[ordinal]

    def term_tfs(self, term: str) -> tuple[array, array]:
        """``(ordinals, tfs)`` of a term's postings (empty arrays if absent).

        Decodes only the two arrays scoring needs — positions stay on the
        wire until :meth:`term_positions` asks for them.
        """
        spec = self._specs.get(term)
        if spec is None:
            return array("b"), array("b")
        docs_seg, tfs_seg, _ = spec
        return (
            read_segment(docs_seg, self._payload, self._base),
            read_segment(tfs_seg, self._payload, self._base),
        )

    def term_positions(self, term: str) -> dict[int, tuple[int, ...]]:
        """``{ordinal: positions}`` of a term's postings."""
        spec = self._specs.get(term)
        if spec is None:
            return {}
        docs_seg, tfs_seg, pos_seg = spec
        ordinals = read_segment(docs_seg, self._payload, self._base)
        tfs = read_segment(tfs_seg, self._payload, self._base)
        flat = read_segment(pos_seg, self._payload, self._base)
        out: dict[int, tuple[int, ...]] = {}
        cursor = 0
        for ordinal, tf in zip(ordinals, tfs):
            out[ordinal] = tuple(flat[cursor:cursor + tf])
            cursor += tf
        return out

    def terms_with_prefix(self, prefix: str) -> list[str]:
        """All vocabulary terms starting with ``prefix`` (bisect on the dict)."""
        if not prefix:
            return list(self._terms)
        start = bisect_left(self._terms, prefix)
        out = []
        for index in range(start, len(self._terms)):
            term = self._terms[index]
            if not term.startswith(prefix):
                break
            out.append(term)
        return out
