"""The BM25 full-text index: an in-memory buffer over immutable segments.

Writes go to a memtable-style buffer; :meth:`FtsIndex.flush` seals the buffer
into an immutable posting-list segment (:mod:`.segments`) on the DFS and
records the segment set in a ``_manifest.json``.  Reads merge buffer and
segments under a **last-writer-wins liveness map**: every document carries the
LSN of its latest version, exactly one location (buffer or one segment) is
live per document, and stale or redelivered updates are dropped by LSN — the
same exactly-once idiom the warehouse delta path uses.

Deletes write tombstones *into* segments (negative length), so recovery by
directory rescan reconstructs exact liveness even when the manifest was lost:
no ghost postings, no resurrected documents.  The manifest is adopted only
when its segment list matches the DFS listing, mirroring the warehouse's
adopt-or-rescan recovery contract.

Scoring is BM25 over AND-ed query terms with optional trailing-``*`` prefix
expansion; results are ordered by ``(-score, doc_id)``.  The arithmetic lives
in :func:`~.analysis.bm25_term_score` and is mirrored bit-for-bit by the
differential oracle in ``tests/fts_oracle.py``.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

from ...errors import FtsError, StorageError
from ..faults import SubsystemHealth
from .analysis import analyze, bm25_term_score, document_text, parse_query
from .segments import (
    TOMBSTONE_LEN,
    Segment,
    _doc_sort_key,
    build_segment_payload,
)


class _BufferedDoc:
    """One buffered (not yet flushed) document version."""

    __slots__ = ("lsn", "length", "terms")

    def __init__(self, lsn: int, length: int, terms: dict[str, list[int]] | None) -> None:
        self.lsn = lsn
        self.length = length      # TOMBSTONE_LEN for deletions
        self.terms = terms        # term -> positions; None for deletions


class FtsIndex:
    """A crash-safe incremental BM25 index over ``(doc_id, text)`` documents.

    With ``dfs=None`` the index is purely in-memory (the planner-attached
    per-table variant); with a DFS it persists flushed segments under
    ``prefix`` and recovers from them via :meth:`recover`.
    """

    def __init__(
        self,
        name: str,
        dfs=None,
        prefix: str | None = None,
        flush_docs: int | None = 512,
        compression_level: int = 6,
        health: SubsystemHealth | None = None,
    ) -> None:
        self.name = name
        self.dfs = dfs
        self.prefix = prefix if prefix is not None else f"/fts/{name}"
        self.flush_docs = flush_docs
        self.compression_level = compression_level
        self.health = health
        #: Immutable segments by id (ascending ids = flush order).
        self._segments: dict[int, Segment] = {}
        #: The write buffer and its inverted view (term -> doc -> positions).
        self._buffer: dict[Any, _BufferedDoc] = {}
        self._buffer_terms: dict[str, dict[Any, list[int]]] = {}
        #: Liveness: doc_id -> (lsn, segment_id-or-None-for-buffer, length).
        self._live: dict[Any, tuple[int, int | None, int]] = {}
        self._n_docs = 0
        self._total_len = 0
        self._next_lsn = 1
        self._next_segment_id = 0

    # ------------------------------------------------------------------ paths

    def _segment_path(self, segment_id: int) -> str:
        return f"{self.prefix}/seg-{segment_id:06d}.fts"

    @property
    def manifest_path(self) -> str:
        return f"{self.prefix}/_manifest.json"

    # ----------------------------------------------------------------- writes

    def add(
        self,
        doc_id: Any,
        text: str | None = None,
        tokens: Sequence[str] | None = None,
        lsn: int | None = None,
    ) -> bool:
        """Index (or re-index) a document; returns ``False`` for stale LSNs.

        ``lsn`` defaults to the next internal LSN; CDC-fed callers pass the
        WAL LSN so redelivered messages are dropped idempotently.
        """
        doc_tokens = list(tokens) if tokens is not None else analyze(text)
        return self._put(doc_id, doc_tokens, lsn)

    def delete(self, doc_id: Any, lsn: int | None = None) -> bool:
        """Tombstone a document; unknown documents still record the tombstone
        (so a stale, later-arriving update cannot resurrect the row)."""
        return self._put(doc_id, None, lsn)

    def _put(self, doc_id: Any, doc_tokens: list[str] | None, lsn: int | None) -> bool:
        if lsn is None:
            lsn = self._next_lsn
        current = self._live.get(doc_id)
        if current is not None and lsn <= current[0]:
            return False  # stale or redelivered version
        self._next_lsn = max(self._next_lsn, lsn + 1)
        self._retract(doc_id)
        if doc_tokens is None:
            self._buffer[doc_id] = _BufferedDoc(lsn, TOMBSTONE_LEN, None)
            self._live[doc_id] = (lsn, None, TOMBSTONE_LEN)
        else:
            term_positions: dict[str, list[int]] = {}
            for position, token in enumerate(doc_tokens):
                term_positions.setdefault(token, []).append(position)
            self._buffer[doc_id] = _BufferedDoc(lsn, len(doc_tokens), term_positions)
            for term, positions in term_positions.items():
                self._buffer_terms.setdefault(term, {})[doc_id] = positions
            self._live[doc_id] = (lsn, None, len(doc_tokens))
            self._n_docs += 1
            self._total_len += len(doc_tokens)
        if (
            self.flush_docs is not None
            and self.dfs is not None
            and len(self._buffer) >= self.flush_docs
        ):
            self.flush()
        return True

    def _retract(self, doc_id: Any) -> None:
        """Remove the current version's accounting (and buffer postings)."""
        current = self._live.get(doc_id)
        if current is None:
            return
        _lsn, where, length = current
        if length >= 0:
            self._n_docs -= 1
            self._total_len -= length
        if where is None:
            buffered = self._buffer.pop(doc_id, None)
            if buffered is not None and buffered.terms is not None:
                for term in buffered.terms:
                    bucket = self._buffer_terms.get(term)
                    if bucket is not None:
                        bucket.pop(doc_id, None)
                        if not bucket:
                            del self._buffer_terms[term]

    # ---------------------------------------------------------------- flushes

    def flush(self) -> str | None:
        """Seal the buffer into an immutable segment; returns its path.

        A failed segment write leaves the buffer intact (re-flushable); a
        failed *manifest* write only degrades health — the next
        :meth:`recover` rescans the directory and finds the segment anyway.
        """
        if not self._buffer:
            return None
        segment_id = self._next_segment_id
        entries = sorted(self._buffer.items(), key=lambda kv: _doc_sort_key(kv[0]))
        doc_meta = [(doc_id, doc.lsn, doc.length) for doc_id, doc in entries]
        term_postings: dict[str, dict[int, list[int]]] = {}
        for ordinal, (_doc_id, doc) in enumerate(entries):
            if doc.terms is None:
                continue
            for term, positions in doc.terms.items():
                term_postings.setdefault(term, {})[ordinal] = positions
        data = build_segment_payload(
            segment_id, doc_meta, term_postings, self.compression_level
        )
        path = self._segment_path(segment_id)
        if self.dfs is not None:
            self.dfs.write_file(path, data, overwrite=True)  # propagate failures
        self._segments[segment_id] = Segment(data)
        self._next_segment_id = segment_id + 1
        for doc_id, doc in entries:
            self._live[doc_id] = (doc.lsn, segment_id, doc.length)
        self._buffer.clear()
        self._buffer_terms.clear()
        self._write_manifest()
        return path

    def _write_manifest(self) -> None:
        if self.dfs is None:
            return
        manifest = {
            "segments": [self._segment_path(sid) for sid in sorted(self._segments)],
            "next_segment_id": self._next_segment_id,
            "last_lsn": self._next_lsn - 1,
        }
        try:
            self.dfs.write_file(
                self.manifest_path,
                json.dumps(manifest, sort_keys=True).encode("utf-8"),
                overwrite=True,
            )
        except StorageError as exc:
            if self.health is not None:
                self.health.degrade(exc)

    # ------------------------------------------------------------- compaction

    def compact(self) -> dict[str, Any]:
        """Merge all segments (buffer flushed first) into one.

        The merged segment is rebuilt from the live postings through the same
        serialisation path as a fresh flush, so merging preserves postings
        bit-identically and re-merging is idempotent.  Tombstones are carried
        over: liveness (and LSN idempotence) survives a post-compaction
        rescan.  Crash-safe in the warehouse style: the merged segment is
        written first, old segments deleted next, the manifest last — at
        every intermediate point a rescan reconstructs the same live state.
        """
        self.flush()
        if len(self._segments) <= 1:
            return {"merged": 0, "segments": len(self._segments)}
        merged_from = sorted(self._segments)
        doc_meta, term_postings = self._live_postings()
        segment_id = self._next_segment_id
        data = build_segment_payload(
            segment_id, doc_meta, term_postings, self.compression_level
        )
        if self.dfs is not None:
            self.dfs.write_file(self._segment_path(segment_id), data, overwrite=True)
            for old_id in merged_from:
                self.dfs.delete_file(self._segment_path(old_id))
        self._segments = {segment_id: Segment(data)}
        self._next_segment_id = segment_id + 1
        for doc_id, lsn, length in doc_meta:
            self._live[doc_id] = (lsn, segment_id, length)
        self._write_manifest()
        return {"merged": len(merged_from), "segments": 1, "segment_id": segment_id}

    def _live_postings(self) -> tuple[list[tuple[Any, int, int]], dict[str, dict[int, list[int]]]]:
        """The live state as ``(doc_meta, term_postings)`` (buffer must be empty)."""
        entries = sorted(self._live.items(), key=lambda kv: _doc_sort_key(kv[0]))
        doc_meta = [(doc_id, lsn, length) for doc_id, (lsn, _where, length) in entries]
        ordinal_of = {doc_id: ordinal for ordinal, (doc_id, _) in enumerate(entries)}
        term_postings: dict[str, dict[int, list[int]]] = {}
        for segment in self._ordered_segments():
            for term in segment.terms:
                for ordinal, positions in segment.term_positions(term).items():
                    doc_id = segment.doc_ids[ordinal]
                    entry = self._live.get(doc_id)
                    if entry is not None and entry[1] == segment.segment_id:
                        term_postings.setdefault(term, {})[ordinal_of[doc_id]] = list(positions)
        return doc_meta, term_postings

    # --------------------------------------------------------------- recovery

    def recover(self) -> dict[str, Any]:
        """Rebuild state from the DFS: adopt the manifest or rescan.

        The manifest is trusted only when its segment list matches the DFS
        listing exactly; otherwise (torn flush, lost manifest) every segment
        found is loaded and liveness is reconstructed from the per-document
        LSNs — tombstones included, so deleted documents stay deleted.
        """
        if self.dfs is None:
            raise FtsError("recover() requires a DFS-backed index")
        listing = sorted(
            path for path in self.dfs.list_files(self.prefix) if path.endswith(".fts")
        )
        manifest = None
        if self.dfs.exists(self.manifest_path):
            try:
                manifest = json.loads(self.dfs.read_file(self.manifest_path).decode("utf-8"))
            except (StorageError, ValueError) as exc:
                if self.health is not None:
                    self.health.degrade(exc)
        adopted = manifest is not None and sorted(manifest.get("segments", [])) == listing
        self._segments = {}
        self._buffer.clear()
        self._buffer_terms.clear()
        self._live = {}
        self._n_docs = 0
        self._total_len = 0
        max_lsn = 0
        for path in listing:
            segment = Segment(self.dfs.read_file(path))
            self._segments[segment.segment_id] = segment
        for segment in self._ordered_segments():
            for doc_id, lsn, length in segment.doc_entries():
                max_lsn = max(max_lsn, lsn)
                entry = self._live.get(doc_id)
                if entry is not None and lsn <= entry[0]:
                    continue  # first (oldest) segment wins ties — duplicates are identical
                self._live[doc_id] = (lsn, segment.segment_id, length)
        for _doc_id, (_lsn, _where, length) in self._live.items():
            if length >= 0:
                self._n_docs += 1
                self._total_len += length
        self._next_segment_id = (max(self._segments) + 1) if self._segments else 0
        self._next_lsn = max_lsn + 1
        if adopted:
            self._next_segment_id = max(
                self._next_segment_id, manifest.get("next_segment_id", 0)
            )
            self._next_lsn = max(self._next_lsn, manifest.get("last_lsn", 0) + 1)
        if not adopted:
            self._write_manifest()  # heal the manifest from the rescan
        return {
            "segments": len(self._segments),
            "adopted": adopted,
            "rescanned": not adopted,
            "docs": self._n_docs,
            "last_lsn": self._next_lsn - 1,
        }

    # ------------------------------------------------------------------ reads

    def _ordered_segments(self) -> list[Segment]:
        return [self._segments[sid] for sid in sorted(self._segments)]

    def _postings_live(self, term: str) -> dict[Any, int]:
        """Live ``doc_id -> tf`` for one exact term across segments + buffer."""
        out: dict[Any, int] = {}
        live = self._live
        for segment in self._ordered_segments():
            ordinals, tfs = segment.term_tfs(term)
            if not ordinals:
                continue
            doc_ids = segment.doc_ids
            segment_id = segment.segment_id
            for ordinal, tf in zip(ordinals, tfs):
                doc_id = doc_ids[ordinal]
                entry = live.get(doc_id)
                if entry is not None and entry[1] == segment_id:
                    out[doc_id] = tf
        bucket = self._buffer_terms.get(term)
        if bucket:
            for doc_id, positions in bucket.items():
                out[doc_id] = len(positions)
        return out

    def _expansions(self, prefix: str) -> list[str]:
        """All indexed terms starting with ``prefix`` (buffer + segments)."""
        terms: set[str] = set()
        for segment in self._ordered_segments():
            terms.update(segment.terms_with_prefix(prefix))
        for term in self._buffer_terms:
            if term.startswith(prefix):
                terms.add(term)
        return sorted(terms)

    def _term_tf(self, query_term) -> dict[Any, int]:
        if not query_term.prefix:
            return self._postings_live(query_term.term)
        out: dict[Any, int] = {}
        for expansion in self._expansions(query_term.term):
            for doc_id, tf in self._postings_live(expansion).items():
                out[doc_id] = out.get(doc_id, 0) + tf
        return out

    def match_ids(self, query: str) -> set:
        """Live documents matching every query term (no scoring).

        The planner's candidate source: because the table-attached index is
        maintained synchronously with the table, this is always a superset of
        the rows the MATCH predicate accepts.  An empty/punctuation-only
        query has no terms and matches nothing.
        """
        terms = parse_query(query)
        if not terms or self._n_docs == 0:
            return set()
        matched: set | None = None
        for query_term in terms:
            tf_map = self._term_tf(query_term)
            if not tf_map:
                return set()
            matched = set(tf_map) if matched is None else matched & set(tf_map)
            if not matched:
                return set()
        return matched

    def search(self, query: str, limit: int | None = None) -> list[tuple[Any, float]]:
        """BM25-ranked ``(doc_id, score)`` for AND-ed query terms.

        Scores accumulate over query terms in query order (the oracle mirrors
        the iteration order, so scores are comparable with ``==``); ties
        break by ascending document id.
        """
        terms = parse_query(query)
        if not terms or self._n_docs == 0:
            return []
        tf_maps = []
        for query_term in terms:
            tf_map = self._term_tf(query_term)
            if not tf_map:
                return []
            tf_maps.append(tf_map)
        matched = set(tf_maps[0])
        for tf_map in tf_maps[1:]:
            matched &= set(tf_map)
        n_docs = self._n_docs
        total_len = self._total_len
        results = []
        for doc_id in matched:
            doc_len = self._live[doc_id][2]
            score = 0.0
            for tf_map in tf_maps:
                score += bm25_term_score(
                    tf_map[doc_id], len(tf_map), n_docs, doc_len, total_len
                )
            results.append((doc_id, score))
        results.sort(key=lambda pair: (-pair[1], _doc_sort_key(pair[0])))
        if limit is not None:
            return results[:limit]
        return results

    def term_postings_live(self, term: str) -> dict[Any, tuple[int, ...]]:
        """Live ``doc_id -> positions`` for one exact term (differential tests)."""
        out: dict[Any, tuple[int, ...]] = {}
        live = self._live
        for segment in self._ordered_segments():
            if not segment.has_term(term):
                continue
            for ordinal, positions in segment.term_positions(term).items():
                doc_id = segment.doc_ids[ordinal]
                entry = live.get(doc_id)
                if entry is not None and entry[1] == segment.segment_id:
                    out[doc_id] = positions
        bucket = self._buffer_terms.get(term)
        if bucket:
            for doc_id, positions in bucket.items():
                out[doc_id] = tuple(positions)
        return out

    def vocabulary(self) -> list[str]:
        """Sorted terms with at least one live posting."""
        terms: set[str] = set()
        for segment in self._ordered_segments():
            for term in segment.terms:
                if self._postings_live(term):
                    terms.add(term)
        for term, bucket in self._buffer_terms.items():
            if bucket:
                terms.add(term)
        return sorted(terms)

    def postings_snapshot(self) -> dict[str, Any]:
        """The full live state (docs + per-term postings) for invariant checks."""
        return {
            "docs": {
                doc_id: (lsn, length)
                for doc_id, (lsn, _where, length) in self._live.items()
                if length >= 0
            },
            "terms": {
                term: dict(self.term_postings_live(term)) for term in self.vocabulary()
            },
        }

    # ------------------------------------------------------------------ stats

    @property
    def doc_count(self) -> int:
        return self._n_docs

    @property
    def total_tokens(self) -> int:
        return self._total_len

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    def stats(self) -> dict[str, Any]:
        return {
            "docs": self._n_docs,
            "total_tokens": self._total_len,
            "segments": len(self._segments),
            "buffered_docs": len(self._buffer),
            "last_lsn": self.last_lsn,
        }


class TableFtsIndex:
    """Synchronously-maintained FTS index over a Table's rows.

    Documents are row ids; the indexed text is :func:`document_text` over the
    declared columns.  The table calls back on every mutation, so the index
    is always exactly as fresh as the table — the planner can hand its
    matches out as access-path candidates without a freshness check.
    """

    def __init__(self, columns: Iterable[str]) -> None:
        self.columns = tuple(columns)
        self._index = FtsIndex("table", dfs=None, flush_docs=None)

    def __len__(self) -> int:
        return self._index.doc_count

    def add_row(self, row_id: int, row: dict) -> None:
        self._index.add(row_id, text=document_text(row, self.columns))

    def remove_row(self, row_id: int) -> None:
        self._index.delete(row_id)

    def match_row_ids(self, query: str) -> set[int]:
        return self._index.match_ids(query)

    def search(self, query: str, limit: int | None = None) -> list[tuple[int, float]]:
        return self._index.search(query, limit)
