"""Full-text search: BM25 posting-list segments over the CDC stream.

The subsystem has four layers:

* :mod:`.analysis` — tokenisation (shared with ``nlp/tokenize``), MATCH
  query parsing and the BM25 arithmetic, all specification-grade and
  mirrored by the differential oracle in ``tests/fts_oracle.py``;
* :mod:`.segments` — immutable typed-binary posting-list segments on the
  warehouse format-4 wire (tombstones travel inside segments);
* :mod:`.index` — the buffer-over-segments index with last-writer-wins LSN
  liveness, manifest-or-rescan recovery, and segment compaction;
* :mod:`.indexer` — the CDC consumer group that keeps a DFS-backed index
  fresh from ``cdc.<table>`` topics, exactly-once.

The planner consumes :class:`TableFtsIndex` (synchronously maintained per
table) as the ``fts_index_scan`` access path; the platform serves
:class:`FtsIndex` + :class:`FtsIndexer` for persistent, streamed search.
"""

from .analysis import (
    BM25_B,
    BM25_K1,
    QueryTerm,
    analyze,
    bm25_term_score,
    document_text,
    parse_query,
)
from .index import FtsIndex, TableFtsIndex
from .indexer import FtsIndexer
from .segments import Segment, build_segment_from_docs, build_segment_payload

__all__ = [
    "BM25_B",
    "BM25_K1",
    "QueryTerm",
    "analyze",
    "bm25_term_score",
    "document_text",
    "parse_query",
    "FtsIndex",
    "TableFtsIndex",
    "FtsIndexer",
    "Segment",
    "build_segment_from_docs",
    "build_segment_payload",
]
