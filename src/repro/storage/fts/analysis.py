"""Text analysis shared by the FTS engine, the planner's MATCH predicate and
the table-attached index.

Everything here is deliberately small and *specification-grade*: the
differential oracle in ``tests/fts_oracle.py`` re-implements each function
independently (its own character scanner, its own BM25 arithmetic) and the
property suite asserts bit-identical tokens and scores.  Keep the arithmetic
expressions in :func:`bm25_term_score` textually in sync with the oracle —
floating-point equality is part of the contract.

* **Tokenisation** delegates to :func:`repro.nlp.tokenize.word_tokens`: a
  Unicode ``isalpha`` scanner with ``'``/``’``/``-`` joiners and stable
  case-folding (``casefold().lower()``).  A token's *position* is simply its
  index in the token stream.
* **Queries** are whitespace-split chunks; a trailing ``*`` on a chunk makes
  its final token a prefix term.  Terms are ANDed: a document matches only if
  every term (or some expansion of every prefix term) occurs in it.
* **Scoring** is classic BM25 (k1=1.2, b=0.75) with the
  ``log(1 + (N - df + 0.5)/(df + 0.5))`` idf variant, summed over the query
  terms in query order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from ...nlp.tokenize import word_tokens

#: BM25 parameters (Robertson/Sparck Jones defaults).
BM25_K1 = 1.2
BM25_B = 0.75


def analyze(text: str | None) -> list[str]:
    """Token stream of a document: folded word tokens, positions = indexes."""
    return word_tokens(text or "")


def document_text(row: Mapping, columns: Sequence[str]) -> str:
    """The indexed text of a row over ``columns``.

    ``None``/missing values are skipped; the rest are stringified and joined
    with a single space (the space is a token boundary, so column values never
    merge into one token).  Used identically by the table-attached index, the
    CDC indexer and the MATCH predicate's row-level evaluation, so the three
    always agree on what a row's document is.
    """
    parts = []
    for column in columns:
        value = row.get(column)
        if value is not None:
            parts.append(str(value))
    return " ".join(parts)


@dataclass(frozen=True)
class QueryTerm:
    """One analyzed query term; ``prefix`` terms match any token extending them."""

    term: str
    prefix: bool = False

    def matches_token(self, token: str) -> bool:
        if self.prefix:
            return token.startswith(self.term)
        return token == self.term


def parse_query(query: str | None) -> list[QueryTerm]:
    """Analyze a MATCH query into AND-ed :class:`QueryTerm` terms.

    The query is split on whitespace; a chunk ending in ``*`` marks a prefix
    term.  Each chunk is then analyzed with the document tokenizer, so query
    terms fold exactly like indexed tokens; a chunk that analyzes to several
    tokens (``state-of-the*``) contributes exact terms for all but the last
    token, which carries the chunk's prefix flag.  An empty or
    punctuation-only query has no terms and matches nothing.
    """
    terms: list[QueryTerm] = []
    for chunk in (query or "").split():
        prefix = chunk.endswith("*")
        tokens = analyze(chunk[:-1] if prefix else chunk)
        if not tokens:
            continue
        for token in tokens[:-1]:
            terms.append(QueryTerm(token, False))
        terms.append(QueryTerm(tokens[-1], prefix))
    return terms


def bm25_term_score(
    tf: int,
    df: int,
    n_docs: int,
    doc_len: int,
    total_len: int,
    k1: float = BM25_K1,
    b: float = BM25_B,
) -> float:
    """BM25 contribution of one query term to one document's score.

    The exact expression (operand order included) is mirrored by the
    differential oracle — scores must compare equal, not merely close.
    """
    avgdl = total_len / n_docs
    idf = math.log(1.0 + (n_docs - df + 0.5) / (df + 0.5))
    return idf * (tf * (k1 + 1.0)) / (tf + k1 * (1.0 - b + b * (doc_len / avgdl)))
