"""Incremental materialized roll-ups over warehouse tables.

Every dashboard read used to re-aggregate the warehouse from scratch.  A
:class:`RollupSpec` instead registers a standing grouped aggregation (group-by
columns plus the ``count``/``count_distinct``/``sum``/``min``/``max``/``avg``
set :meth:`WarehouseTable.aggregate` supports) on a warehouse table; the
:class:`MaterializedRollup` then keeps the aggregation **materialised per
partition**:

* each partition's mergeable group states
  (:meth:`WarehouseTable.aggregate_states`) are stored next to the partition's
  *block identity* — the tuple of its blocks' DFS paths
  (:meth:`WarehouseTable.partition_signature`);
* a refresh re-aggregates **only** the partitions whose block identity changed
  since the last refresh (new appends, compaction rewrites) and drops state
  for partitions that disappeared, so the daily migration keeps the view
  incrementally consistent instead of recomputing it;
* a read merges the per-partition states in sorted partition order and
  finalises them — no DFS access at all — reproducing the live
  :meth:`WarehouseTable.aggregate` result exactly, floats included (both
  sides fold blocks within a partition first and partitions second).

Serving is fail-safe: :meth:`MaterializedRollup.result_if_fresh` (and
:meth:`RollupManager.serve`) return ``None`` whenever any partition's block
identity no longer matches the materialised state, and callers — e.g.
:class:`repro.core.analytics.WarehouseAnalytics` — fall back to the live
grouped-pushdown path, so a missed refresh can never serve stale numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from ...errors import WarehouseError
from .warehouse import (
    _AggState,
    finalise_states,
    merge_states,
    validate_aggregate_functions,
)

if TYPE_CHECKING:  # imported lazily at runtime to avoid a module cycle
    from ...compute.executor import LocalExecutor
    from .warehouse import Warehouse, WarehouseTable


@dataclass(frozen=True)
class RollupSpec:
    """Declaration of one standing roll-up: what to group, what to aggregate.

    ``aggregates`` maps output aliases to ``(function, column)`` pairs —
    exactly the contract of :meth:`WarehouseTable.aggregate`.  ``group_by``
    may be empty for a table-wide (ungrouped) roll-up.  ``group_key``
    optionally maps each group value (or tuple of values) before bucketing,
    and ``column_predicates`` restricts the aggregated rows per column —
    both mirror the live ``aggregate()`` arguments so a materialized read
    and its live fallback are interchangeable.
    """

    name: str
    table: str
    aggregates: Mapping[str, tuple[str, str]]
    group_by: tuple[str, ...] = ()
    group_key: Callable[[Any], Any] | None = None
    column_predicates: Mapping[str, Callable[[Any], bool]] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise WarehouseError("a roll-up needs a non-empty name")
        if not self.aggregates:
            raise WarehouseError(f"roll-up {self.name!r} declares no aggregates")
        object.__setattr__(self, "aggregates", dict(self.aggregates))
        object.__setattr__(self, "group_by", tuple(self.group_by))
        validate_aggregate_functions(self.aggregates, context=f"roll-up {self.name!r}: ")

    def referenced_columns(self) -> set[str]:
        """Every table column the roll-up touches (for registration checks)."""
        columns = set(self.group_by)
        columns.update(self.column_predicates or ())
        columns.update(c for _f, c in self.aggregates.values() if c != "*")
        return columns


@dataclass(frozen=True)
class RollupRefreshReport:
    """Outcome of one :meth:`MaterializedRollup.refresh` pass."""

    rollup: str
    refreshed_partitions: tuple[str, ...]
    dropped_partitions: tuple[str, ...]
    total_partitions: int

    @property
    def changed(self) -> bool:
        return bool(self.refreshed_partitions or self.dropped_partitions)


@dataclass
class _PartitionState:
    """Materialised group states of one partition + the block identity they
    were computed from."""

    signature: tuple[str, ...]
    states: dict[Any, dict[str, _AggState]]


class MaterializedRollup:
    """The materialised per-partition state of one :class:`RollupSpec`."""

    def __init__(self, spec: RollupSpec, warehouse: "Warehouse") -> None:
        self.spec = spec
        self._warehouse = warehouse
        self._partitions: dict[str, _PartitionState] = {}
        self._result_cache: dict | None = None
        #: Lifetime counters for observability / incrementality tests.
        self.refresh_count = 0
        self.partitions_refreshed = 0
        self._validate()

    def _validate(self) -> None:
        table = self._table()
        missing = sorted(
            c for c in self.spec.referenced_columns() if c not in table.columns
        )
        if missing:
            raise WarehouseError(
                f"roll-up {self.spec.name!r}: table {self.spec.table!r} has no "
                f"column(s) {missing!r}"
            )

    def _table(self) -> "WarehouseTable":
        return self._warehouse.table(self.spec.table)

    # ------------------------------------------------------------- freshness

    def is_fresh(self) -> bool:
        """Whether the materialised state matches the table's current blocks.

        Pure name-node metadata comparison (partition keys + block paths);
        no DFS read happens, so polling this before every serve is cheap.
        """
        if not self._warehouse.has_table(self.spec.table):
            return False
        table = self._table()
        current = table.partitions()
        if len(current) != len(self._partitions):
            return False
        return all(
            (state := self._partitions.get(partition)) is not None
            and state.signature == table.partition_signature(partition)
            for partition in current
        )

    def stale_partitions(self) -> list[str]:
        """Partitions whose block identity changed since the last refresh."""
        table = self._table()
        return [
            partition
            for partition in table.partitions()
            if (state := self._partitions.get(partition)) is None
            or state.signature != table.partition_signature(partition)
        ]

    # --------------------------------------------------------------- refresh

    def refresh(self, executor: "LocalExecutor | None" = None) -> RollupRefreshReport:
        """Re-materialise exactly the partitions whose block set changed.

        Unchanged partitions are recognised by their block identity and not
        read at all; partitions that no longer exist lose their state.  The
        refresh is idempotent — a second call right after is a metadata-only
        no-op.
        """
        table = self._table()
        current = {
            partition: table.partition_signature(partition)
            for partition in table.partitions()
        }
        dropped = tuple(sorted(p for p in self._partitions if p not in current))
        for partition in dropped:
            del self._partitions[partition]
        refreshed: list[str] = []
        for partition, signature in current.items():
            known = self._partitions.get(partition)
            if known is not None and known.signature == signature:
                continue
            states = table.aggregate_states(
                self.spec.aggregates,
                partitions=[partition],
                column_predicates=self.spec.column_predicates,
                group_by=list(self.spec.group_by) or None,
                group_key=self.spec.group_key,
                executor=executor,
            )
            self._partitions[partition] = _PartitionState(
                signature=signature, states=states
            )
            refreshed.append(partition)
        if refreshed or dropped:
            self._result_cache = None
        self.refresh_count += 1
        self.partitions_refreshed += len(refreshed)
        return RollupRefreshReport(
            rollup=self.spec.name,
            refreshed_partitions=tuple(sorted(refreshed)),
            dropped_partitions=dropped,
            total_partitions=len(current),
        )

    # --------------------------------------------------------------- serving

    def result(self) -> dict[str, Any] | dict[Any, dict[str, Any]]:
        """The finalised roll-up over every materialised partition.

        Merges the stored per-partition states in sorted partition order —
        the same order the live block walk visits partitions — so the output
        equals :meth:`WarehouseTable.aggregate` over the materialised state,
        with zero DFS access.  The merged result is cached until the next
        refresh invalidates it; callers receive their own copy.
        """
        if self._result_cache is None:
            merged: dict[Any, dict[str, _AggState]] = {}
            for partition in sorted(self._partitions):
                merge_states(
                    merged, self._partitions[partition].states, self.spec.aggregates
                )
            self._result_cache = finalise_states(
                merged, self.spec.aggregates, grouped=bool(self.spec.group_by)
            )
        if not self.spec.group_by:
            return dict(self._result_cache)
        return {key: dict(row) for key, row in self._result_cache.items()}

    def result_if_fresh(self) -> dict | None:
        """The materialised result, or ``None`` when any partition is stale
        (callers then fall back to the live grouped-aggregation path)."""
        return self.result() if self.is_fresh() else None

    def fresh_partition_groups(self) -> dict[str, set] | None:
        """Group keys present in each materialised partition, or ``None`` when
        stale.

        For day-partitioned tables this answers "which groups were active on
        which day" without touching a block — e.g. the per-outlet active-day
        counts in :meth:`repro.core.analytics.WarehouseAnalytics.outlet_activity_profiles`.
        """
        if not self.spec.group_by or not self.is_fresh():
            return None
        return {
            partition: set(state.states)
            for partition, state in self._partitions.items()
        }

    def partition_count(self) -> int:
        return len(self._partitions)


class RollupManager:
    """Registry of the materialized roll-ups of one :class:`Warehouse`."""

    def __init__(self, warehouse: "Warehouse") -> None:
        self._warehouse = warehouse
        self._rollups: dict[str, MaterializedRollup] = {}

    def register(self, spec: RollupSpec, refresh: bool = False) -> MaterializedRollup:
        """Register ``spec`` (its table must exist); optionally refresh now."""
        if spec.name in self._rollups:
            raise WarehouseError(f"roll-up {spec.name!r} is already registered")
        rollup = MaterializedRollup(spec, self._warehouse)
        self._rollups[spec.name] = rollup
        if refresh:
            rollup.refresh()
        return rollup

    def unregister(self, name: str) -> None:
        if name not in self._rollups:
            raise WarehouseError(f"no roll-up named {name!r}")
        del self._rollups[name]

    def get(self, name: str) -> MaterializedRollup | None:
        return self._rollups.get(name)

    def names(self) -> list[str]:
        return sorted(self._rollups)

    def serve(self, name: str) -> dict | None:
        """Finalised result of ``name`` when registered *and* fresh, else
        ``None`` — the single entry point analytics readers consult before
        falling back to a live aggregation."""
        rollup = self._rollups.get(name)
        if rollup is None:
            return None
        return rollup.result_if_fresh()

    def refresh_all(
        self,
        tables: Sequence[str] | None = None,
        executor: "LocalExecutor | None" = None,
    ) -> dict[str, RollupRefreshReport]:
        """Refresh every registered roll-up (optionally only those on
        ``tables``); roll-ups whose table was dropped are skipped.

        Unchanged roll-ups cost one metadata comparison each, so the
        scheduled migration calls this unconditionally after appending.
        """
        wanted = set(tables) if tables is not None else None
        reports: dict[str, RollupRefreshReport] = {}
        for name in self.names():
            rollup = self._rollups[name]
            if wanted is not None and rollup.spec.table not in wanted:
                continue
            if not self._warehouse.has_table(rollup.spec.table):
                continue
            reports[name] = rollup.refresh(executor=executor)
        return reports

    def discard_table(self, table: str) -> None:
        """Drop every roll-up registered on ``table`` (the table is gone)."""
        for name in [
            name for name, rollup in self._rollups.items()
            if rollup.spec.table == table
        ]:
            del self._rollups[name]

    def overview(self) -> dict[str, dict[str, Any]]:
        """Monitoring snapshot: per roll-up table, partition count, freshness
        and lifetime refresh counters (metadata only, no DFS reads)."""
        return {
            name: {
                "table": rollup.spec.table,
                "partitions": rollup.partition_count(),
                "fresh": rollup.is_fresh(),
                "refresh_count": rollup.refresh_count,
                "partitions_refreshed": rollup.partitions_refreshed,
            }
            for name, rollup in sorted(self._rollups.items())
        }
