"""Simulated distributed file system.

Files are split into fixed-size blocks, each block is replicated onto
``replication`` distinct data nodes, and a name node (the
:class:`DistributedFileSystem` object itself) keeps the file → blocks →
nodes metadata.  Node failures can be injected to exercise the re-replication
and degraded-read paths the "distributed and robust fashion" claim implies.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ...errors import WarehouseError


@dataclass
class DataNode:
    """One storage node holding block replicas.

    ``used_bytes`` is a running counter maintained on every ``store``/``drop``
    so placement decisions never have to re-sum all resident replicas.
    """

    node_id: str
    alive: bool = True
    blocks: dict[str, bytes] = field(default_factory=dict)
    used_bytes: int = 0

    def __post_init__(self) -> None:
        # Seed the counter when a node is constructed with resident blocks.
        self.used_bytes = sum(len(data) for data in self.blocks.values())

    def store(self, block_id: str, data: bytes) -> None:
        if not self.alive:
            raise WarehouseError(f"data node {self.node_id} is down")
        previous = self.blocks.get(block_id)
        if previous is not None:
            self.used_bytes -= len(previous)
        self.blocks[block_id] = data
        self.used_bytes += len(data)

    def read(self, block_id: str) -> bytes:
        if not self.alive:
            raise WarehouseError(f"data node {self.node_id} is down")
        if block_id not in self.blocks:
            raise WarehouseError(f"data node {self.node_id} has no block {block_id}")
        return self.blocks[block_id]

    def drop(self, block_id: str) -> None:
        data = self.blocks.pop(block_id, None)
        if data is not None:
            self.used_bytes -= len(data)


@dataclass(frozen=True)
class _BlockMeta:
    block_id: str
    size: int


class DistributedFileSystem:
    """Name node + data nodes with block replication."""

    def __init__(
        self,
        n_nodes: int = 3,
        replication: int = 2,
        block_size: int = 64 * 1024,
        read_latency: float = 0.0,
    ) -> None:
        if n_nodes < 1:
            raise WarehouseError("the DFS needs at least one data node")
        if replication < 1:
            raise WarehouseError("replication must be >= 1")
        if block_size < 1:
            raise WarehouseError("block_size must be >= 1")
        if read_latency < 0:
            raise WarehouseError("read_latency must be >= 0")
        self.replication = min(replication, n_nodes)
        self.block_size = block_size
        self.nodes: dict[str, DataNode] = {
            f"node-{i}": DataNode(node_id=f"node-{i}") for i in range(n_nodes)
        }
        # file path -> ordered list of block metadata
        self._files: dict[str, list[_BlockMeta]] = {}
        # block id -> node ids holding a replica
        self._block_locations: dict[str, list[str]] = {}
        self._block_counter = 0
        #: Simulated network round-trip paid on every read_file call.  The
        #: default of 0 keeps in-process tests instant; benchmarks set it to
        #: model remote block fetches, which parallel scans then overlap
        #: (the sleep releases the GIL, like real socket I/O would).
        self.read_latency = read_latency
        #: Number of read_file calls served and the total bytes they returned
        #: (lets callers assert stats-only warehouse aggregates never touch
        #: the data nodes, and lets benchmarks report scan IO volume).
        #: Guarded by a lock: parallel warehouse scans read concurrently.
        self.read_count = 0
        self.bytes_read = 0
        self._read_count_lock = threading.Lock()

    # ------------------------------------------------------------- file API

    def exists(self, path: str) -> bool:
        return path in self._files

    def list_files(self, prefix: str = "") -> list[str]:
        """All file paths (optionally filtered by prefix), sorted."""
        return sorted(p for p in self._files if p.startswith(prefix))

    def write_file(self, path: str, data: bytes, overwrite: bool = True) -> int:
        """Write ``data`` under ``path``; returns the number of blocks created."""
        if self.exists(path):
            if not overwrite:
                raise WarehouseError(f"file already exists: {path}")
            self.delete_file(path)

        blocks: list[_BlockMeta] = []
        for start in range(0, max(len(data), 1), self.block_size):
            chunk = data[start:start + self.block_size]
            block_id = self._new_block_id()
            targets = self._pick_nodes(self.replication)
            for node_id in targets:
                self.nodes[node_id].store(block_id, chunk)
            self._block_locations[block_id] = targets
            blocks.append(_BlockMeta(block_id=block_id, size=len(chunk)))
        self._files[path] = blocks
        return len(blocks)

    def read_file(self, path: str) -> bytes:
        """Read ``path``, tolerating dead replicas as long as one copy survives."""
        if path not in self._files:
            raise WarehouseError(f"no such file: {path}")
        with self._read_count_lock:
            self.read_count += 1
            self.bytes_read += sum(block.size for block in self._files[path])
        if self.read_latency > 0:
            time.sleep(self.read_latency)
        chunks: list[bytes] = []
        for block in self._files[path]:
            chunks.append(self._read_block(block.block_id))
        return b"".join(chunks)

    def delete_file(self, path: str) -> None:
        """Delete ``path`` and free its blocks (idempotent)."""
        blocks = self._files.pop(path, [])
        for block in blocks:
            for node_id in self._block_locations.pop(block.block_id, []):
                node = self.nodes.get(node_id)
                if node is not None:
                    node.drop(block.block_id)

    def file_size(self, path: str) -> int:
        if path not in self._files:
            raise WarehouseError(f"no such file: {path}")
        return sum(block.size for block in self._files[path])

    # -------------------------------------------------------------- failures

    def kill_node(self, node_id: str) -> None:
        """Mark a data node as failed (its replicas become unreadable)."""
        if node_id not in self.nodes:
            raise WarehouseError(f"unknown node: {node_id}")
        self.nodes[node_id].alive = False

    def revive_node(self, node_id: str) -> None:
        """Bring a failed node back (its old replicas become readable again)."""
        if node_id not in self.nodes:
            raise WarehouseError(f"unknown node: {node_id}")
        self.nodes[node_id].alive = True

    def under_replicated_blocks(self) -> list[str]:
        """Blocks with fewer live replicas than the replication factor."""
        out = []
        for block_id, locations in self._block_locations.items():
            live = [n for n in locations if self.nodes[n].alive]
            if len(live) < self.replication:
                out.append(block_id)
        return sorted(out)

    def rebalance(self) -> int:
        """Re-replicate under-replicated blocks onto live nodes; returns copies made."""
        copies = 0
        for block_id in self.under_replicated_blocks():
            locations = self._block_locations[block_id]
            live = [n for n in locations if self.nodes[n].alive]
            if not live:
                continue  # data loss: nothing to copy from
            data = self.nodes[live[0]].read(block_id)
            needed = self.replication - len(live)
            candidates = [
                node_id
                for node_id, node in sorted(self.nodes.items())
                if node.alive and node_id not in locations
            ]
            for node_id in candidates[:needed]:
                self.nodes[node_id].store(block_id, data)
                locations.append(node_id)
                copies += 1
        return copies

    # ------------------------------------------------------------- internals

    def _new_block_id(self) -> str:
        self._block_counter += 1
        return f"blk-{self._block_counter:08d}"

    def _pick_nodes(self, count: int) -> list[str]:
        """Choose the ``count`` least-loaded live nodes."""
        live = [(node.used_bytes, node_id) for node_id, node in self.nodes.items() if node.alive]
        if len(live) < count:
            if not live:
                raise WarehouseError("no live data nodes available")
            count = len(live)
        live.sort()
        return [node_id for _used, node_id in live[:count]]

    def _read_block(self, block_id: str) -> bytes:
        locations = self._block_locations.get(block_id, [])
        for node_id in locations:
            node = self.nodes[node_id]
            if node.alive and block_id in node.blocks:
                return node.read(block_id)
        raise WarehouseError(f"all replicas of block {block_id} are unavailable")

    # ------------------------------------------------------------ statistics

    def stats(self) -> dict[str, float]:
        """Cluster statistics (files, blocks, live nodes, bytes stored)."""
        return {
            "files": float(len(self._files)),
            "blocks": float(len(self._block_locations)),
            "live_nodes": float(sum(1 for n in self.nodes.values() if n.alive)),
            "total_nodes": float(len(self.nodes)),
            "stored_bytes": float(sum(n.used_bytes for n in self.nodes.values())),
        }
