"""Simulated distributed file system.

Files are split into fixed-size blocks, each block is replicated onto
``replication`` distinct data nodes, and a name node (the
:class:`DistributedFileSystem` object itself) keeps the file → blocks →
nodes metadata.  Node failures can be injected to exercise the re-replication
and degraded-read paths the "distributed and robust fashion" claim implies.

Fault tolerance: the name-node metadata (files, block locations, the block-id
counter) is guarded by one re-entrant lock — parallel scans, compaction and
rebalancing mutate it concurrently — and ``write_file`` is all-or-nothing:
replicas stored before a mid-write failure are rolled back, and an overwrite
keeps the old file's blocks readable until the new blocks are fully placed.
A :class:`repro.storage.faults.FaultInjector` can be attached to exercise the
``dfs.write`` / ``dfs.read`` sites, a
:class:`repro.storage.faults.RetryPolicy` absorbs transient faults, and a
:class:`repro.storage.faults.SubsystemHealth` record (usually owned by the
platform's :class:`repro.storage.faults.HealthMonitor`) tracks retries and
exhaustion.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ...errors import RetryExhaustedError, TransientFaultError, WarehouseError
from ..faults import FaultInjector, RetryPolicy, SubsystemHealth


@dataclass
class DataNode:
    """One storage node holding block replicas.

    ``used_bytes`` is a running counter maintained on every ``store``/``drop``
    so placement decisions never have to re-sum all resident replicas.
    """

    node_id: str
    alive: bool = True
    blocks: dict[str, bytes] = field(default_factory=dict)
    used_bytes: int = 0

    def __post_init__(self) -> None:
        # Seed the counter when a node is constructed with resident blocks.
        self.used_bytes = sum(len(data) for data in self.blocks.values())

    def store(self, block_id: str, data: bytes) -> None:
        if not self.alive:
            raise WarehouseError(f"data node {self.node_id} is down")
        previous = self.blocks.get(block_id)
        if previous is not None:
            self.used_bytes -= len(previous)
        self.blocks[block_id] = data
        self.used_bytes += len(data)

    def read(self, block_id: str) -> bytes:
        if not self.alive:
            raise WarehouseError(f"data node {self.node_id} is down")
        if block_id not in self.blocks:
            raise WarehouseError(f"data node {self.node_id} has no block {block_id}")
        return self.blocks[block_id]

    def drop(self, block_id: str) -> None:
        data = self.blocks.pop(block_id, None)
        if data is not None:
            self.used_bytes -= len(data)


@dataclass(frozen=True)
class _BlockMeta:
    block_id: str
    size: int


class DistributedFileSystem:
    """Name node + data nodes with block replication."""

    def __init__(
        self,
        n_nodes: int = 3,
        replication: int = 2,
        block_size: int = 64 * 1024,
        read_latency: float = 0.0,
        fault_injector: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
        health: SubsystemHealth | None = None,
    ) -> None:
        if n_nodes < 1:
            raise WarehouseError("the DFS needs at least one data node")
        if replication < 1:
            raise WarehouseError("replication must be >= 1")
        if block_size < 1:
            raise WarehouseError("block_size must be >= 1")
        if read_latency < 0:
            raise WarehouseError("read_latency must be >= 0")
        self.replication = min(replication, n_nodes)
        self.block_size = block_size
        self.nodes: dict[str, DataNode] = {
            f"node-{i}": DataNode(node_id=f"node-{i}") for i in range(n_nodes)
        }
        # file path -> ordered list of block metadata
        self._files: dict[str, list[_BlockMeta]] = {}
        # block id -> node ids holding a replica
        self._block_locations: dict[str, list[str]] = {}
        self._block_counter = 0
        #: One re-entrant lock for all name-node metadata: block-id
        #: allocation, file registration, location lists and node liveness.
        #: Parallel scans, compaction and rebalance mutate these concurrently.
        self._meta_lock = threading.RLock()
        #: Simulated network round-trip paid on every read_file call.  The
        #: default of 0 keeps in-process tests instant; benchmarks set it to
        #: model remote block fetches, which parallel scans then overlap
        #: (the sleep releases the GIL, like real socket I/O would).
        self.read_latency = read_latency
        #: Number of read_file calls served and the total bytes they returned
        #: (lets callers assert stats-only warehouse aggregates never touch
        #: the data nodes, and lets benchmarks report scan IO volume).
        #: Guarded by a lock: parallel warehouse scans read concurrently.
        self.read_count = 0
        self.bytes_read = 0
        self._read_count_lock = threading.Lock()
        #: Optional fault-tolerance wiring (see module docstring).  All three
        #: may also be attached after construction by the platform.
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy
        self.health = health

    # ------------------------------------------------------------- file API

    def exists(self, path: str) -> bool:
        with self._meta_lock:
            return path in self._files

    def list_files(self, prefix: str = "") -> list[str]:
        """All file paths (optionally filtered by prefix), sorted."""
        with self._meta_lock:
            return sorted(p for p in self._files if p.startswith(prefix))

    def write_file(self, path: str, data: bytes, overwrite: bool = True) -> int:
        """Write ``data`` under ``path``; returns the number of blocks created.

        All-or-nothing: a failure after some replicas are stored rolls those
        replicas back, and when overwriting, the old file stays fully intact
        (readable by concurrent scans) until every new block is placed.
        Transient faults at the ``dfs.write`` site are absorbed by the
        attached retry policy.
        """
        with self._meta_lock:
            if path in self._files and not overwrite:
                raise WarehouseError(f"file already exists: {path}")

        def attempt() -> int:
            if self.fault_injector is not None:
                self.fault_injector.check("dfs.write", path)
            with self._meta_lock:
                return self._write_file_locked(path, data, overwrite)

        return self._guarded(f"dfs write {path}", attempt)

    def _write_file_locked(self, path: str, data: bytes, overwrite: bool) -> int:
        """One write attempt under the metadata lock (atomic swap on success)."""
        if path in self._files and not overwrite:
            raise WarehouseError(f"file already exists: {path}")
        blocks: list[_BlockMeta] = []
        placed: list[tuple[str, list[str]]] = []  # (block_id, node ids) to roll back
        try:
            for start in range(0, max(len(data), 1), self.block_size):
                chunk = data[start:start + self.block_size]
                block_id = self._new_block_id()
                targets = self._pick_nodes(self.replication)
                stored: list[str] = []
                placed.append((block_id, stored))
                for node_id in targets:
                    self.nodes[node_id].store(block_id, chunk)
                    stored.append(node_id)
                self._block_locations[block_id] = targets
                blocks.append(_BlockMeta(block_id=block_id, size=len(chunk)))
        except Exception:
            # Roll back every replica this attempt stored: the write is
            # all-or-nothing, no orphan blocks and no half-registered file.
            for block_id, stored in placed:
                for node_id in stored:
                    node = self.nodes.get(node_id)
                    if node is not None:
                        node.drop(block_id)
                self._block_locations.pop(block_id, None)
            raise
        old_blocks = self._files.get(path)
        self._files[path] = blocks
        if old_blocks:
            self._drop_blocks(old_blocks)
        return len(blocks)

    def read_file(self, path: str) -> bytes:
        """Read ``path``, tolerating dead replicas as long as one copy survives."""

        def attempt() -> bytes:
            if self.fault_injector is not None:
                self.fault_injector.check("dfs.read", path)
            with self._meta_lock:
                if path not in self._files:
                    raise WarehouseError(f"no such file: {path}")
                blocks = list(self._files[path])
            with self._read_count_lock:
                self.read_count += 1
                self.bytes_read += sum(block.size for block in blocks)
            if self.read_latency > 0:
                time.sleep(self.read_latency)
            chunks: list[bytes] = []
            for block in blocks:
                chunks.append(self._read_block(block.block_id))
            return b"".join(chunks)

        return self._guarded(f"dfs read {path}", attempt)

    def delete_file(self, path: str) -> None:
        """Delete ``path`` and free its blocks (idempotent)."""
        with self._meta_lock:
            blocks = self._files.pop(path, [])
            self._drop_blocks(blocks)

    def _drop_blocks(self, blocks: list[_BlockMeta]) -> None:
        for block in blocks:
            for node_id in self._block_locations.pop(block.block_id, []):
                node = self.nodes.get(node_id)
                if node is not None:
                    node.drop(block.block_id)

    def file_size(self, path: str) -> int:
        with self._meta_lock:
            if path not in self._files:
                raise WarehouseError(f"no such file: {path}")
            return sum(block.size for block in self._files[path])

    # -------------------------------------------------------------- failures

    def kill_node(self, node_id: str) -> None:
        """Mark a data node as failed (its replicas become unreadable)."""
        with self._meta_lock:
            if node_id not in self.nodes:
                raise WarehouseError(f"unknown node: {node_id}")
            self.nodes[node_id].alive = False

    def revive_node(self, node_id: str) -> None:
        """Bring a failed node back (its old replicas become readable again)."""
        with self._meta_lock:
            if node_id not in self.nodes:
                raise WarehouseError(f"unknown node: {node_id}")
            self.nodes[node_id].alive = True

    def under_replicated_blocks(self) -> list[str]:
        """Blocks with fewer live replicas than the replication factor."""
        with self._meta_lock:
            out = []
            for block_id, locations in self._block_locations.items():
                live = [n for n in locations if self.nodes[n].alive]
                if len(live) < self.replication:
                    out.append(block_id)
            return sorted(out)

    def rebalance(self) -> int:
        """Re-replicate under-replicated blocks onto live nodes; returns copies made.

        Runs entirely under the metadata lock: location lists are shared with
        concurrent reads and writes, so replica placement must not interleave
        with block allocation or file deletion.
        """
        with self._meta_lock:
            copies = 0
            for block_id in self.under_replicated_blocks():
                locations = self._block_locations.get(block_id)
                if locations is None:
                    continue  # deleted concurrently with the snapshot above
                live = [n for n in locations if self.nodes[n].alive]
                if not live:
                    continue  # data loss: nothing to copy from
                data = self.nodes[live[0]].read(block_id)
                needed = self.replication - len(live)
                candidates = [
                    node_id
                    for node_id, node in sorted(self.nodes.items())
                    if node.alive and node_id not in locations
                ]
                for node_id in candidates[:needed]:
                    self.nodes[node_id].store(block_id, data)
                    locations.append(node_id)
                    copies += 1
            return copies

    # ------------------------------------------------------------- internals

    def _guarded(self, description: str, attempt):
        """Run one op under the attached retry policy + health bookkeeping."""
        policy = self.retry_policy
        health = self.health
        if policy is None:
            try:
                result = attempt()
            except TransientFaultError as exc:
                if health is not None:
                    health.degrade(exc)
                raise
        else:
            def note(_attempt_no: int, exc: BaseException) -> None:
                if health is not None:
                    health.note_retry(exc)

            try:
                result = policy.call(attempt, description=description, on_retry=note)
            except RetryExhaustedError as exc:
                if health is not None:
                    health.degrade(exc)
                raise
        if health is not None and health.state != "ok":
            health.recover()
        return result

    def _new_block_id(self) -> str:
        with self._meta_lock:
            self._block_counter += 1
            return f"blk-{self._block_counter:08d}"

    def _pick_nodes(self, count: int) -> list[str]:
        """Choose the ``count`` least-loaded live nodes."""
        with self._meta_lock:
            live = [
                (node.used_bytes, node_id)
                for node_id, node in self.nodes.items()
                if node.alive
            ]
            if len(live) < count:
                if not live:
                    raise WarehouseError("no live data nodes available")
                count = len(live)
            live.sort()
            return [node_id for _used, node_id in live[:count]]

    def _read_block(self, block_id: str) -> bytes:
        with self._meta_lock:
            locations = list(self._block_locations.get(block_id, []))
        for node_id in locations:
            node = self.nodes[node_id]
            if node.alive and block_id in node.blocks:
                return node.read(block_id)
        raise WarehouseError(f"all replicas of block {block_id} are unavailable")

    # ------------------------------------------------------------ statistics

    def stats(self) -> dict[str, float]:
        """Cluster statistics (files, blocks, live nodes, bytes stored)."""
        with self._meta_lock:
            return {
                "files": float(len(self._files)),
                "blocks": float(len(self._block_locations)),
                "live_nodes": float(sum(1 for n in self.nodes.values() if n.alive)),
                "total_nodes": float(len(self.nodes)),
                "stored_bytes": float(sum(n.used_bytes for n in self.nodes.values())),
            }
