"""Columnar block format of the warehouse tables.

Rows are grouped into blocks; inside a block each column is stored as its own
array together with min/max/null statistics, enabling column pruning and
predicate push-down during scans.

Blocks serialise to a **versioned** JSON byte format:

* **Format 2** (current) encodes each column as a whole unit rather than
  value-at-a-time.  Low-cardinality columns are dictionary-encoded (distinct
  values once, plus an integer code per row), timestamp columns are encoded as
  one ISO-string array, and plain JSON-safe columns are stored as-is with no
  per-value transform.  Dictionary codes are type-tagged while encoding so
  ``1``, ``1.0`` and ``True`` never collapse onto one dictionary slot.
* **Format 1** (the seed format: ``{"n_rows", "columns", "stats"}`` with
  per-value ``{"__ts__": ...}`` timestamp wrappers) is still read by
  :meth:`ColumnarBlock.from_bytes`, so blocks written before the format bump
  keep deserialising.

The column arrays inside a decoded block (``ColumnarBlock.columns``) are the
unit of vectorised execution: :mod:`repro.storage.warehouse.warehouse` builds
selection vectors over them directly instead of materialising row dicts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Iterable, Sequence

from ...errors import WarehouseError

#: Current serialisation format version (legacy blocks carry no version key).
BLOCK_FORMAT_VERSION = 2


def _encode_value(value: Any) -> Any:
    if isinstance(value, datetime):
        return {"__ts__": value.isoformat()}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {"__ts__"}:
        return datetime.fromisoformat(value["__ts__"])
    return value


def _comparable(values: Iterable[Any]) -> list[Any]:
    out = [v for v in values if v is not None]
    if not out:
        return []
    first_type = type(out[0])
    if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in out):
        return out
    if all(isinstance(v, first_type) for v in out):
        return out
    return []


def _dictionary_budget(n_rows: int) -> int:
    """Maximum dictionary size worth paying for a column of ``n_rows`` values."""
    return max(16, n_rows // 4)


#: Types eligible for dictionary encoding.  Scalars only: a shared dictionary
#: slot decodes to one object per distinct value, which is only safe when that
#: object is immutable (a tuple would decode to one *list* aliased across all
#: equal rows — those fall through to the plain array, which JSON-decodes a
#: fresh object per row).
_DICT_ENCODABLE = (str, int, float, bool, datetime)


def _encode_column(values: list[Any]) -> dict[str, Any]:
    """Encode one whole column array for storage.

    Tries dictionary encoding first (low-cardinality scalar columns shrink to
    a small value dictionary plus integer codes); falls back to a typed array
    when timestamps are present, and to the raw JSON array otherwise.
    Non-scalar values (e.g. list-valued columns) skip the dictionary path.
    """
    budget = _dictionary_budget(len(values))
    codes: list[int | None] | None = []
    mapping: dict[Any, int] = {}
    dictionary: list[Any] = []
    for value in values:
        if value is None:
            codes.append(None)
            continue
        if not isinstance(value, _DICT_ENCODABLE):
            codes = None
            break
        # Key on repr, not __eq__: equal-but-distinct values (tz-aware
        # datetimes at the same instant, -0.0 vs 0.0) must keep their own
        # dictionary slot or the round-trip would rewrite them.
        key = (type(value).__name__, repr(value))
        code = mapping.get(key)
        if code is None:
            if len(dictionary) >= budget:
                codes = None
                break
            code = len(dictionary)
            mapping[key] = code
            dictionary.append(value)
        codes.append(code)

    if codes is not None and len(dictionary) < len(values):
        return {
            "enc": "dict",
            "values": [_encode_value(v) for v in dictionary],
            "codes": codes,
        }
    if any(isinstance(v, datetime) for v in values):
        return {"enc": "typed", "data": [_encode_value(v) for v in values]}
    return {"enc": "plain", "data": values}


def _decode_column(spec: dict[str, Any]) -> list[Any]:
    """Decode one format-2 column specification back into a value array."""
    enc = spec.get("enc")
    if enc == "plain":
        return list(spec["data"])
    if enc == "typed":
        return [_decode_value(v) for v in spec["data"]]
    if enc == "dict":
        dictionary = [_decode_value(v) for v in spec["values"]]
        return [None if code is None else dictionary[code] for code in spec["codes"]]
    raise WarehouseError(f"unknown column encoding {enc!r}")


@dataclass
class ColumnarBlock:
    """One block of a warehouse table: column arrays + per-column statistics."""

    columns: dict[str, list[Any]]
    n_rows: int
    stats: dict[str, dict[str, Any]] = field(default_factory=dict)

    @classmethod
    def from_rows(cls, rows: Sequence[dict[str, Any]], column_names: Sequence[str]) -> "ColumnarBlock":
        """Build a block from row dictionaries (missing columns become ``None``)."""
        if not rows:
            raise WarehouseError("cannot build a block from zero rows")
        columns: dict[str, list[Any]] = {
            name: [row.get(name) for row in rows] for name in column_names
        }
        stats: dict[str, dict[str, Any]] = {}
        for name, values in columns.items():
            comparable = _comparable(values)
            stats[name] = {
                "nulls": sum(1 for v in values if v is None),
                "min": min(comparable) if comparable else None,
                "max": max(comparable) if comparable else None,
            }
        return cls(columns=columns, n_rows=len(rows), stats=stats)

    def to_rows(self, columns: Sequence[str] | None = None) -> list[dict[str, Any]]:
        """Materialise the block back into row dictionaries (optionally projected)."""
        names = list(columns) if columns is not None else list(self.columns)
        missing = [n for n in names if n not in self.columns]
        if missing:
            raise WarehouseError(f"block has no column(s) {missing!r}")
        return [
            {name: self.columns[name][i] for name in names}
            for i in range(self.n_rows)
        ]

    def column(self, name: str) -> list[Any]:
        """Copy of one column's values (mutation-safe)."""
        return list(self.column_array(name))

    def column_array(self, name: str) -> list[Any]:
        """The internal column array — treat as read-only (shared with caches)."""
        if name not in self.columns:
            raise WarehouseError(f"block has no column {name!r}")
        return self.columns[name]

    # ------------------------------------------------------------ statistics

    def might_contain(self, column: str, low: Any = None, high: Any = None) -> bool:
        """Zone-map check: could a value of ``column`` fall in ``[low, high]``?

        Conservative: returns ``True`` whenever statistics are missing or the
        bounds are not comparable with the stored min/max.
        """
        stats = self.stats.get(column)
        if not stats or stats["min"] is None or stats["max"] is None:
            return True
        try:
            if low is not None and stats["max"] < low:
                return False
            if high is not None and stats["min"] > high:
                return False
        except TypeError:
            return True
        return True

    # ---------------------------------------------------------- serialisation

    def to_bytes(self) -> bytes:
        """Serialise the block to versioned JSON bytes (format 2)."""
        payload = {
            "format": BLOCK_FORMAT_VERSION,
            "n_rows": self.n_rows,
            "columns": {
                name: _encode_column(values) for name, values in self.columns.items()
            },
            "stats": {
                name: {key: _encode_value(value) for key, value in stat.items()}
                for name, stat in self.stats.items()
            },
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "ColumnarBlock":
        """Deserialise a block in the current *or* the legacy (seed) format."""
        try:
            payload = json.loads(data.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise WarehouseError(f"corrupt block data: {exc}") from exc
        if payload.get("format", 1) >= 2:
            columns = {
                name: _decode_column(spec)
                for name, spec in payload["columns"].items()
            }
        else:
            columns = {
                name: [_decode_value(v) for v in values]
                for name, values in payload["columns"].items()
            }
        stats = {
            name: {key: _decode_value(value) for key, value in stat.items()}
            for name, stat in payload.get("stats", {}).items()
        }
        return cls(columns=columns, n_rows=int(payload["n_rows"]), stats=stats)
