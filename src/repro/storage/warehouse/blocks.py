"""Columnar block format of the warehouse tables.

Rows are grouped into blocks; inside a block each column is stored as its own
array together with min/max statistics, enabling column pruning and predicate
push-down during scans.  Blocks serialise to JSON bytes for storage on the
simulated DFS.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Iterable, Sequence

from ...errors import WarehouseError


def _encode_value(value: Any) -> Any:
    if isinstance(value, datetime):
        return {"__ts__": value.isoformat()}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {"__ts__"}:
        return datetime.fromisoformat(value["__ts__"])
    return value


def _comparable(values: Iterable[Any]) -> list[Any]:
    out = [v for v in values if v is not None]
    if not out:
        return []
    first_type = type(out[0])
    if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in out):
        return out
    if all(isinstance(v, first_type) for v in out):
        return out
    return []


@dataclass
class ColumnarBlock:
    """One block of a warehouse table: column arrays + per-column statistics."""

    columns: dict[str, list[Any]]
    n_rows: int
    stats: dict[str, dict[str, Any]] = field(default_factory=dict)

    @classmethod
    def from_rows(cls, rows: Sequence[dict[str, Any]], column_names: Sequence[str]) -> "ColumnarBlock":
        """Build a block from row dictionaries (missing columns become ``None``)."""
        if not rows:
            raise WarehouseError("cannot build a block from zero rows")
        columns: dict[str, list[Any]] = {
            name: [row.get(name) for row in rows] for name in column_names
        }
        stats: dict[str, dict[str, Any]] = {}
        for name, values in columns.items():
            comparable = _comparable(values)
            stats[name] = {
                "nulls": sum(1 for v in values if v is None),
                "min": min(comparable) if comparable else None,
                "max": max(comparable) if comparable else None,
            }
        return cls(columns=columns, n_rows=len(rows), stats=stats)

    def to_rows(self, columns: Sequence[str] | None = None) -> list[dict[str, Any]]:
        """Materialise the block back into row dictionaries (optionally projected)."""
        names = list(columns) if columns is not None else list(self.columns)
        missing = [n for n in names if n not in self.columns]
        if missing:
            raise WarehouseError(f"block has no column(s) {missing!r}")
        return [
            {name: self.columns[name][i] for name in names}
            for i in range(self.n_rows)
        ]

    def column(self, name: str) -> list[Any]:
        """Values of one column."""
        if name not in self.columns:
            raise WarehouseError(f"block has no column {name!r}")
        return list(self.columns[name])

    # ------------------------------------------------------------ statistics

    def might_contain(self, column: str, low: Any = None, high: Any = None) -> bool:
        """Zone-map check: could a value of ``column`` fall in ``[low, high]``?

        Conservative: returns ``True`` whenever statistics are missing or the
        bounds are not comparable with the stored min/max.
        """
        stats = self.stats.get(column)
        if not stats or stats["min"] is None or stats["max"] is None:
            return True
        try:
            if low is not None and stats["max"] < low:
                return False
            if high is not None and stats["min"] > high:
                return False
        except TypeError:
            return True
        return True

    # ---------------------------------------------------------- serialisation

    def to_bytes(self) -> bytes:
        """Serialise the block to JSON bytes."""
        payload = {
            "n_rows": self.n_rows,
            "columns": {
                name: [_encode_value(v) for v in values]
                for name, values in self.columns.items()
            },
            "stats": {
                name: {key: _encode_value(value) for key, value in stat.items()}
                for name, stat in self.stats.items()
            },
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "ColumnarBlock":
        """Deserialise a block produced by :meth:`to_bytes`."""
        try:
            payload = json.loads(data.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise WarehouseError(f"corrupt block data: {exc}") from exc
        columns = {
            name: [_decode_value(v) for v in values]
            for name, values in payload["columns"].items()
        }
        stats = {
            name: {key: _decode_value(value) for key, value in stat.items()}
            for name, stat in payload.get("stats", {}).items()
        }
        return cls(columns=columns, n_rows=int(payload["n_rows"]), stats=stats)
