"""Columnar block format of the warehouse tables.

Rows are grouped into blocks; inside a block each column is stored as its own
array together with min/max/null statistics, enabling column pruning and
predicate push-down during scans.

Blocks serialise to a **versioned** JSON byte format (the full wire layout is
documented in ``docs/warehouse-format.md``):

* **Format 3** (current) adds two things on top of format 2:

  - an optional **sort key**: rows may be sorted by one or more columns before
    encoding, and the applied key is recorded in the payload.  Sorted blocks
    have tight, often disjoint zone maps on the sort column and support
    binary-search range filtering (:func:`sorted_range`) instead of a full
    column pass.
  - **run-length encoding** for sorted / low-change columns: a column whose
    equal values cluster into few runs is stored as ``[count, value]`` pairs.

* **Format 2** encodes each column as a whole unit rather than value-at-a-time.
  Low-cardinality columns are dictionary-encoded (distinct values once, plus an
  integer code per row), timestamp columns are encoded as one ISO-string array,
  and plain JSON-safe columns are stored as-is with no per-value transform.
  Dictionary codes are type-tagged while encoding so ``1``, ``1.0`` and
  ``True`` never collapse onto one dictionary slot.
* **Format 1** (the seed format: ``{"n_rows", "columns", "stats"}`` with
  per-value ``{"__ts__": ...}`` timestamp wrappers) is still read by
  :meth:`ColumnarBlock.from_bytes`, so blocks written before the format bumps
  keep deserialising.

The column arrays inside a decoded block (``ColumnarBlock.columns``) are the
unit of vectorised execution: :mod:`repro.storage.warehouse.warehouse` builds
selection vectors over them directly instead of materialising row dicts.
Dictionary-encoded columns additionally keep their decoded dictionary and raw
code array (:meth:`ColumnarBlock.dictionary`) so grouped aggregation can bucket
rows by small integer codes instead of hashing the decoded values row-by-row.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Iterable, Sequence

from ...errors import WarehouseError

#: Current serialisation format version (legacy blocks carry no version key).
BLOCK_FORMAT_VERSION = 3


def _encode_value(value: Any) -> Any:
    if isinstance(value, datetime):
        return {"__ts__": value.isoformat()}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {"__ts__"}:
        return datetime.fromisoformat(value["__ts__"])
    return value


def _comparable(values: Iterable[Any]) -> list[Any]:
    out = [v for v in values if v is not None]
    if not out:
        return []
    first_type = type(out[0])
    if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in out):
        return out
    if all(isinstance(v, first_type) for v in out):
        return out
    return []


def ordering_token(value: Any) -> tuple[bool, Any]:
    """Total-order token used for sort keys: ``None`` sorts before any value."""
    return (value is not None, value)


def sort_rows(
    rows: Sequence[dict[str, Any]], sort_key: Sequence[str]
) -> tuple[list[dict[str, Any]], tuple[str, ...] | None]:
    """Sort rows by ``sort_key`` columns (``None`` first), best effort.

    Returns ``(rows, applied_key)``.  When the key values have no consistent
    ordering (mixed types), the rows come back in their original order and the
    applied key is ``None`` — callers must not claim the data is clustered.
    The sort is stable, so equal-key rows keep their insertion order.
    """
    key = tuple(sort_key)
    if not key:
        return list(rows), None
    try:
        ordered = sorted(
            rows, key=lambda row: tuple(ordering_token(row.get(c)) for c in key)
        )
    except TypeError:
        return list(rows), None
    return ordered, key


def sorted_range(array: Sequence[Any], low: Any, high: Any) -> tuple[int, int] | None:
    """Index range ``[start, stop)`` of values in ``[low, high]`` of a sorted array.

    The array must be sorted in :func:`ordering_token` order (``None`` values
    first).  ``None`` bounds are unbounded on that side; ``None`` values never
    match a bounded filter, so they are excluded from the range.  Returns
    ``None`` when the bounds are not comparable with the array values — the
    caller then falls back to a linear filter pass.
    """
    try:
        if low is None:
            # Skip the leading None run: None never matches a bounded filter.
            start = bisect.bisect_left(array, True, key=lambda v: v is not None)
        else:
            start = bisect.bisect_left(array, (True, low), key=ordering_token)
        if high is None:
            stop = len(array)
        else:
            stop = bisect.bisect_right(array, (True, high), key=ordering_token)
    except TypeError:
        return None
    return start, stop


def _dictionary_budget(n_rows: int) -> int:
    """Maximum dictionary size worth paying for a column of ``n_rows`` values."""
    return max(16, n_rows // 4)


#: Types eligible for dictionary and run-length encoding.  Scalars only: a
#: shared dictionary slot / run value decodes to one object reused across all
#: equal rows, which is only safe when that object is immutable (a tuple would
#: decode to one *list* aliased across all equal rows — those fall through to
#: the plain array, which JSON-decodes a fresh object per row).
_DICT_ENCODABLE = (str, int, float, bool, datetime)


def _strict_key(value: Any) -> tuple[str, str]:
    """Identity key for encoding: equal-but-distinct values stay distinct.

    Keyed on repr, not ``__eq__``: values like ``1`` / ``1.0`` / ``True``,
    ``-0.0`` vs ``0.0`` or tz-aware datetimes at the same instant must keep
    their own dictionary slot / run, or the round-trip would rewrite them.
    """
    return (type(value).__name__, repr(value))


def _rle_runs(values: list[Any]) -> list[list[Any]] | None:
    """``[count, value]`` runs of the column, or ``None`` if RLE-ineligible.

    Ineligible means non-scalar values *or* too many runs to be worth it
    (``2 × runs`` must not exceed the row count) — the loop aborts the moment
    the run budget is blown, so high-cardinality columns don't pay a full
    repr() pass on the write path just to have the result thrown away.
    """
    budget = len(values) // 2
    runs: list[list[Any]] = []
    previous: Any = None
    for value in values:
        if value is not None and not isinstance(value, _DICT_ENCODABLE):
            return None
        key = None if value is None else _strict_key(value)
        if runs and key == previous:
            runs[-1][0] += 1
        else:
            if len(runs) >= budget:
                return None
            runs.append([1, value])
            previous = key
    return runs


def _encode_column(values: list[Any]) -> dict[str, Any]:
    """Encode one whole column array for storage.

    Tries run-length encoding first (sorted / low-change columns collapse to
    ``[count, value]`` runs), then dictionary encoding (low-cardinality scalar
    columns shrink to a small value dictionary plus integer codes); falls back
    to a typed array when timestamps are present, and to the raw JSON array
    otherwise.  Non-scalar values (e.g. list-valued columns) skip both the RLE
    and the dictionary path.
    """
    runs = _rle_runs(values)
    if runs is not None:
        return {
            "enc": "rle",
            "runs": [[count, _encode_value(value)] for count, value in runs],
        }

    budget = _dictionary_budget(len(values))
    codes: list[int | None] | None = []
    mapping: dict[Any, int] = {}
    dictionary: list[Any] = []
    for value in values:
        if value is None:
            codes.append(None)
            continue
        if not isinstance(value, _DICT_ENCODABLE):
            codes = None
            break
        key = _strict_key(value)
        code = mapping.get(key)
        if code is None:
            if len(dictionary) >= budget:
                codes = None
                break
            code = len(dictionary)
            mapping[key] = code
            dictionary.append(value)
        codes.append(code)

    if codes is not None and len(dictionary) < len(values):
        return {
            "enc": "dict",
            "values": [_encode_value(v) for v in dictionary],
            "codes": codes,
        }
    if any(isinstance(v, datetime) for v in values):
        return {"enc": "typed", "data": [_encode_value(v) for v in values]}
    return {"enc": "plain", "data": values}


def _decode_dictionary(
    spec: dict[str, Any]
) -> tuple[list[Any], list[int | None]]:
    """Decoded ``(values, codes)`` of a ``dict``-encoded column spec."""
    return [_decode_value(v) for v in spec["values"]], spec["codes"]


def _expand_dictionary(values: list[Any], codes: list[int | None]) -> list[Any]:
    """Materialise a dictionary column back into its per-row value array."""
    return [None if code is None else values[code] for code in codes]


def _decode_column(spec: dict[str, Any]) -> list[Any]:
    """Decode one format-2/3 column specification back into a value array."""
    enc = spec.get("enc")
    if enc == "plain":
        return list(spec["data"])
    if enc == "typed":
        return [_decode_value(v) for v in spec["data"]]
    if enc == "dict":
        return _expand_dictionary(*_decode_dictionary(spec))
    if enc == "rle":
        out: list[Any] = []
        for count, value in spec["runs"]:
            # One decoded object per run, shared by every row of the run —
            # safe because only immutable scalars are RLE-encoded.
            out.extend([_decode_value(value)] * count)
        return out
    raise WarehouseError(f"unknown column encoding {enc!r}")


@dataclass
class ColumnarBlock:
    """One block of a warehouse table: column arrays + per-column statistics.

    ``sort_key`` names the columns the rows are physically sorted by (``None``
    when unsorted); ``dictionaries`` maps dictionary-encoded column names to
    their ``(values, codes)`` pair as read off the wire, giving aggregation a
    code-level fast path (it is empty for blocks built straight from rows).
    """

    columns: dict[str, list[Any]]
    n_rows: int
    stats: dict[str, dict[str, Any]] = field(default_factory=dict)
    sort_key: tuple[str, ...] | None = None
    dictionaries: dict[str, tuple[list[Any], list[int | None]]] = field(
        default_factory=dict, repr=False, compare=False
    )

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[dict[str, Any]],
        column_names: Sequence[str],
        sort_key: Sequence[str] | None = None,
    ) -> "ColumnarBlock":
        """Build a block from row dictionaries (missing columns become ``None``).

        With ``sort_key`` the rows are sorted by those columns first (stable,
        ``None`` first); if their values have no consistent ordering the block
        is built unsorted and carries no sort key.
        """
        if not rows:
            raise WarehouseError("cannot build a block from zero rows")
        applied: tuple[str, ...] | None = None
        if sort_key:
            rows, applied = sort_rows(rows, sort_key)
        columns: dict[str, list[Any]] = {
            name: [row.get(name) for row in rows] for name in column_names
        }
        stats: dict[str, dict[str, Any]] = {}
        for name, values in columns.items():
            comparable = _comparable(values)
            stats[name] = {
                "nulls": sum(1 for v in values if v is None),
                "min": min(comparable) if comparable else None,
                "max": max(comparable) if comparable else None,
            }
        return cls(columns=columns, n_rows=len(rows), stats=stats, sort_key=applied)

    def to_rows(self, columns: Sequence[str] | None = None) -> list[dict[str, Any]]:
        """Materialise the block back into row dictionaries (optionally projected)."""
        names = list(columns) if columns is not None else list(self.columns)
        missing = [n for n in names if n not in self.columns]
        if missing:
            raise WarehouseError(f"block has no column(s) {missing!r}")
        return [
            {name: self.columns[name][i] for name in names}
            for i in range(self.n_rows)
        ]

    def column(self, name: str) -> list[Any]:
        """Copy of one column's values (mutation-safe)."""
        return list(self.column_array(name))

    def column_array(self, name: str) -> list[Any]:
        """The internal column array — treat as read-only (shared with caches)."""
        if name not in self.columns:
            raise WarehouseError(f"block has no column {name!r}")
        return self.columns[name]

    def dictionary(self, name: str) -> tuple[list[Any], list[int | None]] | None:
        """``(values, codes)`` of a dictionary-encoded column, else ``None``.

        Only available on blocks decoded from bytes; the codes array is
        positionally aligned with :meth:`column_array` (``None`` code = null).
        """
        return self.dictionaries.get(name)

    def is_sorted_by(self, column: str) -> bool:
        """Whether the block's rows are physically sorted by ``column``.

        Only the *leading* sort-key column is totally ordered across the whole
        block, so only it supports binary-search range filtering.
        """
        return bool(self.sort_key) and self.sort_key[0] == column

    # ------------------------------------------------------------ statistics

    def might_contain(self, column: str, low: Any = None, high: Any = None) -> bool:
        """Zone-map check: could a value of ``column`` fall in ``[low, high]``?

        Conservative: returns ``True`` whenever statistics are missing or the
        bounds are not comparable with the stored min/max.
        """
        stats = self.stats.get(column)
        if not stats or stats["min"] is None or stats["max"] is None:
            return True
        try:
            if low is not None and stats["max"] < low:
                return False
            if high is not None and stats["min"] > high:
                return False
        except TypeError:
            return True
        return True

    # ---------------------------------------------------------- serialisation

    def to_bytes(self) -> bytes:
        """Serialise the block to versioned JSON bytes (format 3)."""
        payload = {
            "format": BLOCK_FORMAT_VERSION,
            "n_rows": self.n_rows,
            "columns": {
                name: _encode_column(values) for name, values in self.columns.items()
            },
            "stats": {
                name: {key: _encode_value(value) for key, value in stat.items()}
                for name, stat in self.stats.items()
            },
        }
        if self.sort_key:
            payload["sort_key"] = list(self.sort_key)
        return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "ColumnarBlock":
        """Deserialise a block in the current *or* any legacy format."""
        try:
            payload = json.loads(data.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise WarehouseError(f"corrupt block data: {exc}") from exc
        dictionaries: dict[str, tuple[list[Any], list[int | None]]] = {}
        if payload.get("format", 1) >= 2:
            columns: dict[str, list[Any]] = {}
            for name, spec in payload["columns"].items():
                if spec.get("enc") == "dict":
                    values, codes = _decode_dictionary(spec)
                    dictionaries[name] = (values, codes)
                    columns[name] = _expand_dictionary(values, codes)
                else:
                    columns[name] = _decode_column(spec)
        else:
            columns = {
                name: [_decode_value(v) for v in values]
                for name, values in payload["columns"].items()
            }
        stats = {
            name: {key: _decode_value(value) for key, value in stat.items()}
            for name, stat in payload.get("stats", {}).items()
        }
        sort_key = payload.get("sort_key")
        return cls(
            columns=columns,
            n_rows=int(payload["n_rows"]),
            stats=stats,
            sort_key=tuple(sort_key) if sort_key else None,
            dictionaries=dictionaries,
        )
