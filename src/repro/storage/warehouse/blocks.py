"""Columnar block format of the warehouse tables.

Rows are grouped into blocks; inside a block each column is stored as its own
array together with min/max/null statistics, enabling column pruning and
predicate push-down during scans.

Blocks serialise to a **versioned** byte format (the full wire layout is
documented in ``docs/warehouse-format.md``):

* **Format 4** (current) frames the whole block as ``RWB4`` magic + a codec
  byte + the block payload, zlib-compressed on the wire by default.  The
  payload itself is a small JSON header (statistics, sort key, per-column
  encoding specs) followed by a binary body holding the bulk column data as
  fixed-width typed arrays: dictionary codes and integer columns as
  narrowest-fitting signed integers, float columns as C doubles.  Two wins
  over format 3: the wire shrinks by the zlib ratio, and the expensive part
  of decode (``zlib.decompress`` plus ``array.frombytes``) runs outside the
  GIL, so executor workers genuinely overlap block decode — not just DFS
  fetch latency — during parallel scans.  Incompressible payloads fall back
  to a stored (uncompressed) codec rather than growing on the wire.
* **Format 3** adds two things on top of format 2:

  - an optional **sort key**: rows may be sorted by one or more columns before
    encoding, and the applied key is recorded in the payload.  Sorted blocks
    have tight, often disjoint zone maps on the sort column and support
    binary-search range filtering (:func:`sorted_range`) instead of a full
    column pass.
  - **run-length encoding** for sorted / low-change columns: a column whose
    equal values cluster into few runs is stored as ``[count, value]`` pairs.

* **Format 2** encodes each column as a whole unit rather than value-at-a-time.
  Low-cardinality columns are dictionary-encoded (distinct values once, plus an
  integer code per row), timestamp columns are encoded as one ISO-string array,
  and plain JSON-safe columns are stored as-is with no per-value transform.
  Dictionary codes are type-tagged while encoding so ``1``, ``1.0`` and
  ``True`` never collapse onto one dictionary slot.
* **Format 1** (the seed format: ``{"n_rows", "columns", "stats"}`` with
  per-value ``{"__ts__": ...}`` timestamp wrappers) is still read by
  :meth:`ColumnarBlock.from_bytes`, so blocks written before the format bumps
  keep deserialising.

The column arrays inside a decoded block (``ColumnarBlock.columns``) are the
unit of vectorised execution: :mod:`repro.storage.warehouse.warehouse` builds
selection vectors over them directly instead of materialising row dicts.
Dictionary-encoded columns additionally keep their decoded dictionary and raw
code array (:meth:`ColumnarBlock.dictionary`) so grouped aggregation can bucket
rows by small integer codes instead of hashing the decoded values row-by-row.
"""

from __future__ import annotations

import bisect
import json
import zlib
from array import array
from collections.abc import Mapping
from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Callable, Iterable, Sequence

from ...errors import WarehouseError

#: Current serialisation format version (legacy blocks carry no version key).
BLOCK_FORMAT_VERSION = 4

#: Leading magic of the format-4 wire frame; legacy formats (1-3) are bare
#: JSON and therefore start with ``{``, so the two never collide.
WIRE_MAGIC = b"RWB4"

#: Codec byte following the magic: zlib-compressed or stored payload.
_CODEC_ZLIB = b"z"
_CODEC_STORED = b"0"

#: Default zlib level for newly written blocks (0 disables compression).
DEFAULT_COMPRESSION_LEVEL = 6


def _encode_value(value: Any) -> Any:
    if isinstance(value, datetime):
        return {"__ts__": value.isoformat()}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {"__ts__"}:
        return datetime.fromisoformat(value["__ts__"])
    return value


def _comparable(values: Iterable[Any]) -> list[Any]:
    out = [v for v in values if v is not None]
    if not out:
        return []
    first_type = type(out[0])
    if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in out):
        return out
    if all(isinstance(v, first_type) for v in out):
        return out
    return []


def ordering_token(value: Any) -> tuple[bool, Any]:
    """Total-order token used for sort keys: ``None`` sorts before any value."""
    return (value is not None, value)


def sort_rows(
    rows: Sequence[dict[str, Any]], sort_key: Sequence[str]
) -> tuple[list[dict[str, Any]], tuple[str, ...] | None]:
    """Sort rows by ``sort_key`` columns (``None`` first), best effort.

    Returns ``(rows, applied_key)``.  When the key values have no consistent
    ordering (mixed types), the rows come back in their original order and the
    applied key is ``None`` — callers must not claim the data is clustered.
    The sort is stable, so equal-key rows keep their insertion order.
    """
    key = tuple(sort_key)
    if not key:
        return list(rows), None
    try:
        ordered = sorted(
            rows, key=lambda row: tuple(ordering_token(row.get(c)) for c in key)
        )
    except TypeError:
        return list(rows), None
    return ordered, key


def sorted_range(array: Sequence[Any], low: Any, high: Any) -> tuple[int, int] | None:
    """Index range ``[start, stop)`` of values in ``[low, high]`` of a sorted array.

    The array must be sorted in :func:`ordering_token` order (``None`` values
    first).  ``None`` bounds are unbounded on that side; ``None`` values never
    match a bounded filter, so they are excluded from the range.  Returns
    ``None`` when the bounds are not comparable with the array values — the
    caller then falls back to a linear filter pass.
    """
    try:
        if low is None:
            # Skip the leading None run: None never matches a bounded filter.
            start = bisect.bisect_left(array, True, key=lambda v: v is not None)
        else:
            start = bisect.bisect_left(array, (True, low), key=ordering_token)
        if high is None:
            stop = len(array)
        else:
            stop = bisect.bisect_right(array, (True, high), key=ordering_token)
    except TypeError:
        return None
    return start, stop


def _dictionary_budget(n_rows: int) -> int:
    """Maximum dictionary size worth paying for a column of ``n_rows`` values."""
    return max(16, n_rows // 4)


#: Types eligible for dictionary and run-length encoding.  Scalars only: a
#: shared dictionary slot / run value decodes to one object reused across all
#: equal rows, which is only safe when that object is immutable (a tuple would
#: decode to one *list* aliased across all equal rows — those fall through to
#: the plain array, which JSON-decodes a fresh object per row).
_DICT_ENCODABLE = (str, int, float, bool, datetime)


def _strict_key(value: Any) -> tuple[str, str]:
    """Identity key for encoding: equal-but-distinct values stay distinct.

    Keyed on repr, not ``__eq__``: values like ``1`` / ``1.0`` / ``True``,
    ``-0.0`` vs ``0.0`` or tz-aware datetimes at the same instant must keep
    their own dictionary slot / run, or the round-trip would rewrite them.
    """
    return (type(value).__name__, repr(value))


def _rle_runs(values: list[Any]) -> list[list[Any]] | None:
    """``[count, value]`` runs of the column, or ``None`` if RLE-ineligible.

    Ineligible means non-scalar values *or* too many runs to be worth it
    (``2 × runs`` must not exceed the row count) — the loop aborts the moment
    the run budget is blown, so high-cardinality columns don't pay a full
    repr() pass on the write path just to have the result thrown away.
    """
    budget = len(values) // 2
    runs: list[list[Any]] = []
    previous: Any = None
    for value in values:
        if value is not None and not isinstance(value, _DICT_ENCODABLE):
            return None
        key = None if value is None else _strict_key(value)
        if runs and key == previous:
            runs[-1][0] += 1
        else:
            if len(runs) >= budget:
                return None
            runs.append([1, value])
            previous = key
    return runs


def _decode_dictionary(
    spec: dict[str, Any]
) -> tuple[list[Any], list[int | None]]:
    """Decoded ``(values, codes)`` of a ``dict``-encoded column spec."""
    return [_decode_value(v) for v in spec["values"]], spec["codes"]


def _expand_dictionary(values: list[Any], codes: list[int | None]) -> list[Any]:
    """Materialise a dictionary column back into its per-row value array."""
    return [None if code is None else values[code] for code in codes]


def _decode_column(spec: dict[str, Any]) -> list[Any]:
    """Decode one format-2/3 column specification back into a value array."""
    enc = spec.get("enc")
    if enc == "plain":
        return list(spec["data"])
    if enc == "typed":
        return [_decode_value(v) for v in spec["data"]]
    if enc == "dict":
        return _expand_dictionary(*_decode_dictionary(spec))
    if enc == "rle":
        out: list[Any] = []
        for count, value in spec["runs"]:
            # One decoded object per run, shared by every row of the run —
            # safe because only immutable scalars are RLE-encoded.
            out.extend([_decode_value(value)] * count)
        return out
    raise WarehouseError(f"unknown column encoding {enc!r}")


# ---------------------------------------------------------------- format-4 wire

#: Fixed item sizes of the binary body segments.  ``array`` typecodes are
#: platform-sized in principle; decode verifies the local interpreter agrees
#: with the wire before trusting any offsets.
_SEG_ITEMSIZE = {"b": 1, "h": 2, "i": 4, "q": 8, "d": 8}

#: Inclusive value ranges of the signed-integer segment typecodes, narrowest
#: first — columns are stored at the smallest width that fits.
_INT_RANGES = (
    ("b", -(1 << 7), (1 << 7) - 1),
    ("h", -(1 << 15), (1 << 15) - 1),
    ("i", -(1 << 31), (1 << 31) - 1),
    ("q", -(1 << 63), (1 << 63) - 1),
)


def validate_compression_level(level: Any) -> int:
    """Check a compression level knob (an int in ``[0, 9]``; 0 = store raw)."""
    if not isinstance(level, int) or isinstance(level, bool) or not 0 <= level <= 9:
        raise WarehouseError(
            f"compression_level must be an integer in [0, 9], got {level!r}"
        )
    return level


def wrap_payload(payload: bytes, compression_level: int = DEFAULT_COMPRESSION_LEVEL) -> bytes:
    """Frame a format-4 payload for the wire: magic + codec byte + body.

    ``compression_level`` 1-9 zlib-compresses the payload; 0 stores it raw.
    A payload that zlib cannot shrink (already-compressed or high-entropy
    data) is stored raw as well, so the wire never grows past
    ``len(payload) + 5``.
    """
    validate_compression_level(compression_level)
    if compression_level > 0:
        compressed = zlib.compress(payload, compression_level)
        if len(compressed) < len(payload):
            return WIRE_MAGIC + _CODEC_ZLIB + compressed
    return WIRE_MAGIC + _CODEC_STORED + payload


def unwrap_payload(data: bytes) -> bytes:
    """The raw payload of a format-4 wire frame (decompressing if needed)."""
    if data[:4] != WIRE_MAGIC:
        raise WarehouseError("not a format-4 block frame")
    codec = data[4:5]
    if codec == _CODEC_ZLIB:
        try:
            return zlib.decompress(data[5:])
        except zlib.error as exc:
            raise WarehouseError(f"corrupt block data: {exc}") from exc
    if codec == _CODEC_STORED:
        return data[5:]
    raise WarehouseError(f"unknown block codec {codec!r}")


def wire_payload(data: bytes) -> dict[str, Any]:
    """Decoded JSON header/payload of a block in any wire format.

    Introspection helper for tests, tools and storage statistics.  Legacy
    formats (1-3) are bare JSON, so this is the whole payload; for format-4
    frames it is the payload *header* — body-backed columns reference their
    binary segment through a ``seg`` spec instead of inlining values.
    """
    if data[:4] == WIRE_MAGIC:
        header, _base = _split_payload(unwrap_payload(data))
        return header
    try:
        return json.loads(data.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise WarehouseError(f"corrupt block data: {exc}") from exc


def _split_payload(payload: bytes) -> tuple[dict[str, Any], int]:
    """``(header, body_offset)`` of a format-4 payload."""
    if len(payload) < 4:
        raise WarehouseError("corrupt block data: truncated payload")
    header_len = int.from_bytes(payload[:4], "big")
    if 4 + header_len > len(payload):
        raise WarehouseError("corrupt block data: header length out of range")
    try:
        header = json.loads(payload[4:4 + header_len].decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise WarehouseError(f"corrupt block data: {exc}") from exc
    return header, 4 + header_len


def _int_typecode(low: int, high: int) -> str | None:
    """Narrowest signed segment typecode covering ``[low, high]``, if any."""
    for typecode, lo, hi in _INT_RANGES:
        if low >= lo and high <= hi:
            return typecode
    return None


def _append_segment(body: bytearray, typecode: str, values: Sequence) -> dict[str, Any]:
    """Append a typed array to the body; returns its ``seg`` spec."""
    seg = {"t": typecode, "off": len(body), "n": len(values)}
    body += array(typecode, values).tobytes()
    return seg


def _read_segment(seg: dict[str, Any], payload: bytes, base: int) -> array:
    """Materialise one binary body segment back into a typed array."""
    typecode = seg.get("t")
    itemsize = _SEG_ITEMSIZE.get(typecode)
    if itemsize is None:
        raise WarehouseError(f"unknown segment typecode {typecode!r}")
    out = array(typecode)
    if out.itemsize != itemsize:
        raise WarehouseError(
            f"platform array({typecode!r}) width {out.itemsize} does not match "
            f"the wire width {itemsize}"
        )
    start = base + seg["off"]
    stop = start + itemsize * seg["n"]
    if seg["off"] < 0 or seg["n"] < 0 or stop > len(payload):
        raise WarehouseError("corrupt block data: segment out of range")
    out.frombytes(memoryview(payload)[start:stop])
    return out


# The format-4 framing (wrap/split) and typed binary segments are shared wire
# machinery: the FTS engine serialises its posting lists with the same frame,
# header + body layout, and narrowest-fit integer segments as warehouse
# columns.  Public aliases keep the underscore names private to this module.
split_payload = _split_payload
int_typecode = _int_typecode
append_segment = _append_segment
read_segment = _read_segment


def _try_numeric_segment(values: list[Any], body: bytearray) -> dict[str, Any] | None:
    """Body-segment spec for an all-int or all-float column, else ``None``.

    Strict types only (``bool`` is not an int here, and a mixed int/float
    column must keep per-value types), integers must fit in 64 bits, and the
    null-position list kept in the header must stay small relative to the
    column — otherwise the column falls through to a header encoding.
    """
    kind: str | None = None
    low = high = 0
    nulls: list[int] = []
    for position, value in enumerate(values):
        if value is None:
            nulls.append(position)
            continue
        value_type = type(value)
        if value_type is int:
            if kind is None:
                low = high = value
                kind = "int"
            elif kind != "int":
                return None
            elif value < low:
                low = value
            elif value > high:
                high = value
        elif value_type is float:
            if kind is None:
                kind = "float"
            elif kind != "float":
                return None
        else:
            return None
    if kind is None or 8 * len(nulls) > len(values):
        return None
    if kind == "int":
        typecode = _int_typecode(low, high)
        if typecode is None:  # beyond 64-bit: Python ints are unbounded
            return None
    else:
        typecode = "d"
    data = [0 if v is None else v for v in values] if nulls else values
    spec = {"enc": kind, "seg": _append_segment(body, typecode, data)}
    if nulls:
        spec["nulls"] = nulls
    return spec


def _encode_column_v4(values: list[Any], body: bytearray) -> dict[str, Any]:
    """Encode one column for the format-4 payload.

    The decision ladder, with the bulk data moved into binary body segments:
    RLE first (runs stay in the header — they are few by construction), then
    dictionary encoding with the per-row *codes* as a narrow integer segment
    (code ``-1`` = null), then whole-column int/float segments, then the
    header-resident ``typed``/``plain`` fallbacks for everything else.
    """
    runs = _rle_runs(values)
    if runs is not None:
        return {
            "enc": "rle",
            "runs": [[count, _encode_value(value)] for count, value in runs],
        }

    budget = _dictionary_budget(len(values))
    codes: list[int] | None = []
    mapping: dict[Any, int] = {}
    dictionary: list[Any] = []
    for value in values:
        if value is None:
            codes.append(-1)
            continue
        if not isinstance(value, _DICT_ENCODABLE):
            codes = None
            break
        key = _strict_key(value)
        code = mapping.get(key)
        if code is None:
            if len(dictionary) >= budget:
                codes = None
                break
            code = len(dictionary)
            mapping[key] = code
            dictionary.append(value)
        codes.append(code)
    if codes is not None and len(dictionary) < len(values):
        typecode = _int_typecode(-1, max(len(dictionary) - 1, 0))
        spec = {
            "enc": "dict",
            "values": [_encode_value(v) for v in dictionary],
            "seg": _append_segment(body, typecode, codes),
        }
        if -1 in codes:
            # Recorded at write time so decode can use a null-free codes
            # array verbatim without scanning it for sentinels first.
            spec["has_nulls"] = True
        return spec

    numeric = _try_numeric_segment(values, body)
    if numeric is not None:
        return numeric
    if any(isinstance(v, datetime) for v in values):
        return {"enc": "typed", "data": [_encode_value(v) for v in values]}
    return {"enc": "plain", "data": values}


class _LazyColumns(Mapping):
    """Column name → value-array mapping that materialises on first access.

    Format-4 blocks decode their (small) JSON header eagerly but expand a
    column's body segment / header spec only when something touches it, so a
    scan projecting two of ten columns never pays for the other eight.  The
    mapping presents the *full* column schema for membership, iteration and
    length; only ``__getitem__`` (and iterating ``items``/``values``)
    triggers materialisation.  Deliberately a :class:`Mapping`, not a
    ``dict`` subclass: ``dict(columns)`` / ``{**columns}`` then go through
    ``keys()`` + ``__getitem__`` and see every column, instead of CPython's
    concrete-dict fast path copying a half-materialised store.

    Materialising the same column twice from two scan threads is a benign
    race (both compute the same value array); once a column is materialised
    its loader slot is cleared so the decompressed payload the loaders close
    over is freed as soon as nothing still needs it.
    """

    __slots__ = ("_loaders", "_materialised")

    def __init__(self, loaders: dict[str, Callable[[], list[Any]]]) -> None:
        self._loaders: dict[str, Callable[[], list[Any]] | None] = loaders
        self._materialised: dict[str, list[Any]] = {}

    def __getitem__(self, name: str) -> list[Any]:
        value = self._materialised.get(name)
        if value is not None:
            return value
        loader = self._loaders[name]  # KeyError: no such column
        if loader is None:
            # Another thread materialised (and released) this column between
            # our lookup miss and now; the value is present.
            return self._materialised[name]
        value = loader()
        self._materialised[name] = value
        self._loaders[name] = None
        return value

    def __contains__(self, name: object) -> bool:
        return name in self._loaders

    def __iter__(self):
        return iter(self._loaders)

    def __len__(self) -> int:
        return len(self._loaders)

    def __repr__(self) -> str:
        pending = [name for name in self._loaders if name not in self._materialised]
        return f"_LazyColumns({self._materialised!r}, pending={pending!r})"


@dataclass
class ColumnarBlock:
    """One block of a warehouse table: column arrays + per-column statistics.

    ``sort_key`` names the columns the rows are physically sorted by (``None``
    when unsorted); ``dictionaries`` maps dictionary-encoded column names to
    their ``(values, codes)`` pair as read off the wire, giving aggregation a
    code-level fast path (it is empty for blocks built straight from rows).
    ``role`` distinguishes ordinary ``"base"`` blocks from CDC ``"delta"``
    blocks (row versions merged into the base at read time); it rides in the
    JSON header, leaving the format-4 wire layout unchanged.
    """

    columns: Mapping[str, list[Any]]
    n_rows: int
    stats: dict[str, dict[str, Any]] = field(default_factory=dict)
    sort_key: tuple[str, ...] | None = None
    role: str = "base"
    dictionaries: dict[str, tuple[list[Any], Sequence[int | None]]] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Lazy ``(values, codes)`` loaders of not-yet-materialised dictionary
    #: columns (format-4 decode); resolved and cached by :meth:`dictionary`.
    _dict_loaders: dict[str, Callable[[], tuple[list[Any], Sequence[int | None]]]] = field(
        default_factory=dict, repr=False, compare=False
    )

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[dict[str, Any]],
        column_names: Sequence[str],
        sort_key: Sequence[str] | None = None,
        role: str = "base",
    ) -> "ColumnarBlock":
        """Build a block from row dictionaries (missing columns become ``None``).

        With ``sort_key`` the rows are sorted by those columns first (stable,
        ``None`` first); if their values have no consistent ordering the block
        is built unsorted and carries no sort key.
        """
        if not rows:
            raise WarehouseError("cannot build a block from zero rows")
        applied: tuple[str, ...] | None = None
        if sort_key:
            rows, applied = sort_rows(rows, sort_key)
        columns: dict[str, list[Any]] = {
            name: [row.get(name) for row in rows] for name in column_names
        }
        stats: dict[str, dict[str, Any]] = {}
        for name, values in columns.items():
            comparable = _comparable(values)
            stats[name] = {
                "nulls": sum(1 for v in values if v is None),
                "min": min(comparable) if comparable else None,
                "max": max(comparable) if comparable else None,
            }
        return cls(
            columns=columns, n_rows=len(rows), stats=stats, sort_key=applied, role=role
        )

    def to_rows(self, columns: Sequence[str] | None = None) -> list[dict[str, Any]]:
        """Materialise the block back into row dictionaries (optionally projected)."""
        names = list(columns) if columns is not None else list(self.columns)
        missing = [n for n in names if n not in self.columns]
        if missing:
            raise WarehouseError(f"block has no column(s) {missing!r}")
        return [
            {name: self.columns[name][i] for name in names}
            for i in range(self.n_rows)
        ]

    def column(self, name: str) -> list[Any]:
        """Copy of one column's values (mutation-safe)."""
        return list(self.column_array(name))

    def column_array(self, name: str) -> list[Any]:
        """The internal column array — treat as read-only (shared with caches)."""
        if name not in self.columns:
            raise WarehouseError(f"block has no column {name!r}")
        return self.columns[name]

    def dictionary(self, name: str) -> tuple[list[Any], Sequence[int | None]] | None:
        """``(values, codes)`` of a dictionary-encoded column, else ``None``.

        Only available on blocks decoded from bytes; the codes sequence is
        positionally aligned with :meth:`column_array` (``None`` code = null).
        A null-free codes sequence may be a typed ``array`` of small ints
        rather than a list — treat it as a read-only int sequence.
        """
        pair = self.dictionaries.get(name)
        if pair is None:
            loader = self._dict_loaders.get(name)
            if loader is not None:
                pair = loader()
                self.dictionaries[name] = pair
                # Drop the loader so the payload bytes it closes over can be
                # freed once nothing else still needs them.
                self._dict_loaders.pop(name, None)
            else:
                # A concurrent caller may have resolved and dropped the
                # loader between our two lookups; its store to
                # ``dictionaries`` happens before the drop, so re-reading is
                # race-free.
                pair = self.dictionaries.get(name)
        return pair

    def is_sorted_by(self, column: str) -> bool:
        """Whether the block's rows are physically sorted by ``column``.

        Only the *leading* sort-key column is totally ordered across the whole
        block, so only it supports binary-search range filtering.
        """
        return bool(self.sort_key) and self.sort_key[0] == column

    # ------------------------------------------------------------ statistics

    def might_contain(self, column: str, low: Any = None, high: Any = None) -> bool:
        """Zone-map check: could a value of ``column`` fall in ``[low, high]``?

        Conservative: returns ``True`` whenever statistics are missing or the
        bounds are not comparable with the stored min/max.
        """
        stats = self.stats.get(column)
        if not stats or stats["min"] is None or stats["max"] is None:
            return True
        try:
            if low is not None and stats["max"] < low:
                return False
            if high is not None and stats["min"] > high:
                return False
        except TypeError:
            return True
        return True

    # ---------------------------------------------------------- serialisation

    def to_payload(self) -> bytes:
        """The uncompressed format-4 payload: JSON header + binary body.

        ``len(to_payload())`` is the block's *uncompressed* byte count; the
        wire frame (:func:`wrap_payload`) adds the magic/codec envelope and
        the zlib compression.
        """
        body = bytearray()
        columns = {
            name: _encode_column_v4(values, body)
            for name, values in self.columns.items()
        }
        header = {
            "format": BLOCK_FORMAT_VERSION,
            "n_rows": self.n_rows,
            "columns": columns,
            "stats": {
                name: {key: _encode_value(value) for key, value in stat.items()}
                for name, stat in self.stats.items()
            },
        }
        if self.sort_key:
            header["sort_key"] = list(self.sort_key)
        if self.role != "base":
            header["role"] = self.role
        encoded = json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")
        return len(encoded).to_bytes(4, "big") + encoded + bytes(body)

    def to_bytes(self, compression_level: int = DEFAULT_COMPRESSION_LEVEL) -> bytes:
        """Serialise the block to versioned wire bytes (format 4)."""
        return wrap_payload(self.to_payload(), compression_level)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ColumnarBlock":
        """Deserialise a block in the current *or* any legacy format."""
        if data[:4] == WIRE_MAGIC:
            payload_bytes = unwrap_payload(data)
            header, base = _split_payload(payload_bytes)
            stats = {
                name: {key: _decode_value(value) for key, value in stat.items()}
                for name, stat in header.get("stats", {}).items()
            }
            sort_key = header.get("sort_key")

            # Columns materialise lazily: each loader closes over the payload
            # bytes and its header spec, so a scan touching two columns never
            # expands the rest.  Dictionary columns share one cached
            # ``(values, codes)`` pair between :meth:`dictionary` (the grouped
            # fast path) and the expanded value array.
            column_loaders: dict[str, Callable[[], list[Any]]] = {}
            dict_loaders: dict[str, Callable[[], tuple[list[Any], Sequence[int | None]]]] = {}
            block_cell: list[ColumnarBlock] = []

            def make_loaders(name: str, spec: dict[str, Any]) -> Callable[[], list[Any]]:
                enc = spec.get("enc")
                if enc == "dict":
                    def load_pair() -> tuple[list[Any], Sequence[int | None]]:
                        values = [_decode_value(v) for v in spec["values"]]
                        if "seg" in spec:
                            arr = _read_segment(spec["seg"], payload_bytes, base)
                            # -1 codes mark nulls (flagged at write time); a
                            # null-free array is kept as-is — grouping hashes
                            # its small ints directly.
                            codes: Sequence[int | None] = (
                                [None if c < 0 else c for c in arr]
                                if spec.get("has_nulls") else arr
                            )
                        else:  # header-resident dictionary (hand-built payloads)
                            codes = spec["codes"]
                        return values, codes

                    dict_loaders[name] = load_pair
                    return lambda: _expand_dictionary(*block_cell[0].dictionary(name))
                if enc in ("int", "float"):
                    def load_numeric() -> list[Any]:
                        decoded = list(_read_segment(spec["seg"], payload_bytes, base))
                        for position in spec.get("nulls", ()):
                            decoded[position] = None
                        return decoded

                    return load_numeric
                return lambda: _decode_column(spec)

            for name, spec in header["columns"].items():
                column_loaders[name] = make_loaders(name, spec)
            block = cls(
                columns=_LazyColumns(column_loaders),
                n_rows=int(header["n_rows"]),
                stats=stats,
                sort_key=tuple(sort_key) if sort_key else None,
                role=str(header.get("role", "base")),
                _dict_loaders=dict_loaders,
            )
            block_cell.append(block)
            return block
        try:
            payload = json.loads(data.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise WarehouseError(f"corrupt block data: {exc}") from exc
        dictionaries: dict[str, tuple[list[Any], list[int | None]]] = {}
        if payload.get("format", 1) >= 2:
            columns: dict[str, list[Any]] = {}
            for name, spec in payload["columns"].items():
                if spec.get("enc") == "dict":
                    values, codes = _decode_dictionary(spec)
                    dictionaries[name] = (values, codes)
                    columns[name] = _expand_dictionary(values, codes)
                else:
                    columns[name] = _decode_column(spec)
        else:
            columns = {
                name: [_decode_value(v) for v in values]
                for name, values in payload["columns"].items()
            }
        stats = {
            name: {key: _decode_value(value) for key, value in stat.items()}
            for name, stat in payload.get("stats", {}).items()
        }
        sort_key = payload.get("sort_key")
        return cls(
            columns=columns,
            n_rows=int(payload["n_rows"]),
            stats=stats,
            sort_key=tuple(sort_key) if sort_key else None,
            role=str(payload.get("role", "base")),
            dictionaries=dictionaries,
        )
