"""Partitioned columnar warehouse tables over the simulated DFS.

Each :class:`WarehouseTable` is partitioned by the value of one column
(typically the calendar day of a timestamp); every partition holds one or more
columnar blocks persisted as DFS files.  Tables may additionally declare a
**sort key**: rows of each partition are then sorted by those columns before
being cut into blocks, which clusters the layout — block zone maps on the sort
column become tight and mostly disjoint, range scans early-exit as soon as the
remaining blocks start past the filter bound, and inside each sorted block a
range filter is a binary search instead of a column pass.

Three access paths are offered:

* **Row-at-a-time** — :meth:`WarehouseTable.scan` materialises row dicts and
  applies an arbitrary row predicate.  This is the compatibility / streaming
  path for one-shot full-row consumers (e.g. model training) and deliberately
  bypasses the block cache so such streams don't churn it; the columnar reads
  below — including :meth:`WarehouseTable.read_column` — are the repeated
  analytics access pattern and are served through the cache.
* **Vectorised** — :meth:`WarehouseTable.scan_columns`,
  :meth:`WarehouseTable.scan_filtered` and :meth:`WarehouseTable.aggregate`
  evaluate conjunctive range filters and per-column predicates as *selection
  vectors* over the raw column arrays of each block.  Row dicts are only built
  for surviving rows, and only when the caller asks for rows (late
  materialisation).  Multi-column zone (min/max) statistics prune whole blocks
  before any DFS read; pure ``count``/``min``/``max`` aggregates are answered
  from block statistics without reading a single block; repeated reads are
  served from a per-table LRU cache of decoded blocks that is invalidated on
  :meth:`WarehouseTable.drop_partition` / :meth:`Warehouse.drop_table`.
  :meth:`WarehouseTable.aggregate` supports grouped aggregation (GROUP BY one
  or more columns) that buckets rows by dictionary *codes* — small integers —
  whenever the group column is dictionary-encoded on the wire, instead of
  hashing the decoded values row-by-row.
* **Parallel** — the vectorised entry points accept an optional
  :class:`~repro.compute.executor.LocalExecutor`; block fetch + decode +
  filter then fan out across its workers (overlapping simulated DFS read
  latency *and*, on compressed block-format-4 tables, the GIL-releasing
  zlib decompression itself) while results are merged back in deterministic
  block order, so the output is identical for any worker count, including
  ``max_workers=1``.

Tables compress their blocks on the wire (``compression_level``, default
zlib level 6; 0 stores raw bytes) and keep per-block compressed /
uncompressed byte counts in the name-node metadata
(:meth:`WarehouseTable.storage_stats`).  Partitions that fragmented into
many small blocks across appends are merged back into few large sorted
blocks by :meth:`WarehouseTable.compact_partition` /
:meth:`Warehouse.compact`.

Standing grouped aggregations can be registered as **materialized roll-ups**
(:mod:`repro.storage.warehouse.rollups`, reachable via
:attr:`Warehouse.rollups`): :meth:`WarehouseTable.aggregate_states` hands out
the mergeable per-group accumulators, :meth:`WarehouseTable.partition_signature`
the block identity that drives their incremental refresh.

**Restart recovery** — every state-changing operation also writes a small
per-table *manifest* file next to the blocks (``_manifest.json`` under the
table's DFS prefix) recording the block refs, the CDC per-key newest-LSN
index, suppression epochs and folded flags.  :meth:`WarehouseTable.recover`
(called automatically by :meth:`Warehouse.create_table` when the DFS already
holds files for the table) rebuilds the in-memory state from that manifest in
O(manifest) — falling back to a full block rescan when the manifest is
missing, torn, or disagrees with the actual file listing — so
:meth:`WarehouseTable.append_deltas` stays exactly-once across process
restarts.
"""

from __future__ import annotations

import copy
import json
import re
import threading
from collections import Counter, OrderedDict
from dataclasses import dataclass
from datetime import date, datetime
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from ...compute.executor import LocalExecutor
from ...compute.shuffle import canonical_key
from ...errors import RetryExhaustedError, TransientFaultError, WarehouseError
from ..faults import SubsystemHealth
from .blocks import (
    DEFAULT_COMPRESSION_LEVEL,
    ColumnarBlock,
    _decode_value,
    _encode_value,
    ordering_token,
    sort_rows,
    sorted_range,
    unwrap_payload,
    validate_compression_level,
    wrap_payload,
)
from .dfs import DistributedFileSystem

#: ``(column, low, high)`` — inclusive bounds, ``None`` meaning unbounded.
RangeFilter = tuple[str, Any, Any]


def _unhashable_group(group_cols: Sequence[str], exc: TypeError) -> WarehouseError:
    return WarehouseError(
        f"group-by column(s) {list(group_cols)!r} have unhashable values "
        f"(pass group_key to map them): {exc}"
    )


def _own_value(value: Any) -> Any:
    """Copy a mutable cell value so callers own it (cached blocks stay pristine).

    A deep copy, so nested mutables (lists of dicts, ...) are owned too —
    the same contract as the decode-fresh :meth:`WarehouseTable.scan` path.
    """
    return copy.deepcopy(value) if isinstance(value, (list, dict, set)) else value


def day_partitioner(column: str) -> Callable[[dict[str, Any]], str]:
    """Partition rows by the calendar day of a timestamp column."""

    def partition(row: dict[str, Any]) -> str:
        value = row.get(column)
        if isinstance(value, datetime):
            return value.date().isoformat()
        if isinstance(value, date):
            return value.isoformat()
        if isinstance(value, str) and len(value) >= 10:
            return value[:10]
        return "unknown"

    return partition


#: Strings shaped like a type tag ("int:1", "https://...") must themselves be
#: tagged, or they would collide with tagged non-string keys.
_TAG_SHAPED = re.compile(r"[A-Za-z_]\w*:")


def value_partitioner(column: str) -> Callable[[dict[str, Any]], str]:
    """Partition rows by the value of a column.

    Keys are canonicalised with the same scheme as :mod:`repro.compute.shuffle`
    so equal-but-differently-typed values (``1``/``1.0``/``True``) share one
    partition, while *unequal* values of different types (``1`` vs ``"1"``)
    never collide: non-strings are tagged with their canonical type name, and
    strings keep their natural partition name unless they are shaped like a
    tag themselves (then they get an explicit ``str:`` tag).
    """

    def partition(row: dict[str, Any]) -> str:
        value = row.get(column)
        if value is None:
            return "null"
        if isinstance(value, str):
            # Tag-shaped strings and the literal "null" would collide with
            # tagged non-string keys / the None partition.
            if _TAG_SHAPED.match(value) or value == "null":
                return f"str:{value}"
            return value
        value = canonical_key(value)
        return f"{type(value).__name__}:{value}"

    return partition


@dataclass
class _BlockRef:
    path: str
    n_rows: int
    stats: dict[str, dict[str, Any]]
    sort_key: tuple[str, ...] | None = None
    #: Wire bytes actually stored on the DFS (post-compression) and the
    #: uncompressed payload bytes they decode to — the per-block compression
    #: accounting surfaced by :meth:`WarehouseTable.storage_stats`.
    compressed_bytes: int = 0
    uncompressed_bytes: int = 0
    #: ``"base"`` or ``"delta"`` — mirrors the block-header role.
    role: str = "base"
    #: In-memory block of a *synthetic* ref (the merged base+delta view of a
    #: partition).  Synthetic refs are never persisted: ``_load_block``
    #: returns this object directly and the path is only an identity token.
    block: ColumnarBlock | None = None


@dataclass
class _DeltaEntry:
    """Latest CDC version of one primary key (last-writer-wins by LSN).

    ``partition`` is where that version lives (for deletes: where the deleted
    row lived); ``folded`` flips when a compaction folds the version into the
    partition's base blocks, after which the base row *is* the latest version
    and must no longer be suppressed at merge time.
    """

    lsn: int
    partition: str
    op: str  # "u" (upsert) | "d" (delete)
    folded: bool = False


#: Version stamp of the per-table manifest document.  Bump on layout changes:
#: an unknown version makes :meth:`WarehouseTable.recover` fall back to the
#: full block rescan, never misread a newer manifest.
_MANIFEST_VERSION = 1


def _encode_key(key: Any) -> Any:
    """JSON-encode a canonical primary key (tuples and datetimes round-trip)."""
    if isinstance(key, tuple):
        return {"__tuple__": [_encode_key(item) for item in key]}
    return _encode_value(key)


def _decode_key(obj: Any) -> Any:
    if isinstance(obj, dict) and set(obj) == {"__tuple__"}:
        return tuple(_decode_key(item) for item in obj["__tuple__"])
    return _decode_value(obj)


def _encode_ref(ref: "_BlockRef") -> dict[str, Any]:
    return {
        "path": ref.path,
        "n_rows": ref.n_rows,
        "stats": {
            column: {name: _encode_value(value) for name, value in stat.items()}
            for column, stat in ref.stats.items()
        },
        "sort_key": list(ref.sort_key) if ref.sort_key else None,
        "compressed_bytes": ref.compressed_bytes,
        "uncompressed_bytes": ref.uncompressed_bytes,
        "role": ref.role,
    }


def _decode_ref(obj: Mapping[str, Any]) -> "_BlockRef":
    sort_key = obj["sort_key"]
    return _BlockRef(
        path=obj["path"],
        n_rows=int(obj["n_rows"]),
        stats={
            column: {name: _decode_value(value) for name, value in stat.items()}
            for column, stat in obj["stats"].items()
        },
        sort_key=tuple(sort_key) if sort_key else None,
        compressed_bytes=int(obj["compressed_bytes"]),
        uncompressed_bytes=int(obj["uncompressed_bytes"]),
        role=obj["role"],
    )


def _block_file_counter(path: str) -> int:
    """The allocation counter embedded in a block filename (0 if unparsable)."""
    match = re.search(r"(?:block|delta)-(\d+)\.blk$", path)
    return int(match.group(1)) if match else 0


class _BlockCache:
    """A small LRU cache of decoded :class:`ColumnarBlock` objects by DFS path.

    Thread-safe: parallel scans load blocks from executor worker threads.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[str, ColumnarBlock] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, path: str) -> ColumnarBlock | None:
        with self._lock:
            block = self._entries.get(path)
            if block is None:
                self.misses += 1
                return None
            self._entries.move_to_end(path)
            self.hits += 1
            return block

    def put(self, path: str, block: ColumnarBlock) -> None:
        if self.capacity < 1:
            return
        with self._lock:
            self._entries[path] = block
            self._entries.move_to_end(path)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def invalidate(self, path: str) -> None:
        with self._lock:
            self._entries.pop(path, None)

    def resident(self, paths: Iterable[str]) -> bool:
        """Whether every path is currently cached (a scheduling heuristic:
        eviction may race the answer, which costs only a suboptimal choice)."""
        with self._lock:
            return all(path in self._entries for path in paths)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Aggregate functions answerable from block statistics alone.
_STATS_ONLY_FUNCTIONS = {"count", "min", "max"}
_AGGREGATE_FUNCTIONS = {"count", "count_distinct", "min", "max", "sum", "avg"}


def validate_aggregate_functions(
    aggregates: Mapping[str, tuple[str, str]], context: str = ""
) -> None:
    """Check every alias maps to a known function with a legal column spec.

    The single source of the aggregate-function rules, shared by
    :meth:`WarehouseTable.aggregate` / :meth:`WarehouseTable.aggregate_states`
    and by :class:`~repro.storage.warehouse.rollups.RollupSpec` construction,
    so a spec can never pass one check and fail the other.
    """
    for alias, (function, column) in aggregates.items():
        if function not in _AGGREGATE_FUNCTIONS:
            raise WarehouseError(
                f"{context}unknown aggregate function {function!r} for {alias!r}"
            )
        if column == "*" and function != "count":
            raise WarehouseError(
                f"{context}aggregate {function!r} needs a column, not '*'"
            )


class WarehouseTable:
    """One partitioned columnar table (optionally clustered by a sort key)."""

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        dfs: DistributedFileSystem,
        partitioner: Callable[[dict[str, Any]], str],
        block_rows: int = 4096,
        cache_blocks: int = 64,
        sort_key: Sequence[str] | None = None,
        compression_level: int = DEFAULT_COMPRESSION_LEVEL,
        primary_key: str | None = None,
        durable_manifest: bool = True,
        degraded_reads: bool = False,
        health: SubsystemHealth | None = None,
    ) -> None:
        if not columns:
            raise WarehouseError(f"table {name!r} needs at least one column")
        if block_rows < 1:
            raise WarehouseError("block_rows must be >= 1")
        self.name = name
        self.columns = list(columns)
        self.dfs = dfs
        self.partitioner = partitioner
        self.block_rows = block_rows
        self._compression_level = validate_compression_level(compression_level)
        self._sort_key: tuple[str, ...] | None = tuple(sort_key) if sort_key else None
        if self._sort_key:
            missing = [c for c in self._sort_key if c not in self.columns]
            if missing:
                raise WarehouseError(
                    f"table {name!r} sort key references unknown column(s) {missing!r}"
                )
        if primary_key is not None and primary_key not in self.columns:
            raise WarehouseError(
                f"table {name!r} primary key {primary_key!r} is not a column"
            )
        self.primary_key = primary_key
        self._partitions: dict[str, list[_BlockRef]] = {}
        self._block_counter = 0
        self._cache = _BlockCache(cache_blocks)
        # --- CDC delta state (only populated on tables receiving deltas) ---
        #: Small sorted delta blocks per partition, merged into the base at
        #: read time and folded into it by :meth:`compact_partition`.
        self._delta_partitions: dict[str, list[_BlockRef]] = {}
        #: Latest landed version per primary key (canonical form) — the
        #: last-writer-wins index.  Never pruned: it is also the exactly-once
        #: guard against redelivered deltas.
        self._delta_info: dict[Any, _DeltaEntry] = {}
        #: Current partition of each primary key (maintained once a primary
        #: key is known), used to detect cross-partition row moves.
        self._pk_partition: dict[Any, str] = {}
        #: Bumped when a delta moves/updates a key *away* from a partition:
        #: that partition's bytes did not change but its merged view did, so
        #: the epoch is folded into its signature and merge-cache key.
        self._suppression_epoch: dict[str, int] = {}
        #: Cached merged view per partition: ``(cache key, synthetic refs)``.
        self._merged_refs: dict[str, tuple[tuple, list[_BlockRef]]] = {}
        self._merge_counter = 0
        #: Per-partition read counters (how often a scan/aggregate touched the
        #: partition) — drives hot-first compaction ordering.
        self._read_counts: Counter[str] = Counter()
        #: Write the per-table recovery manifest after every state change.
        #: The manifest is an accelerator, not the source of truth — a failed
        #: manifest write degrades health and the next open rescans blocks.
        self.durable_manifest = durable_manifest
        #: With degraded reads enabled, a partition whose delta blocks cannot
        #: be read (after retries) serves its base blocks instead of raising —
        #: stale-but-available, surfaced through ``health``.
        self.degraded_reads = degraded_reads
        #: Optional health record (usually the platform monitor's
        #: ``"warehouse"`` subsystem) fed by degraded reads + manifest faults.
        self.health = health

    @property
    def sort_key(self) -> tuple[str, ...] | None:
        """The declared clustering columns (``None`` for unsorted tables)."""
        return self._sort_key

    @property
    def compression_level(self) -> int:
        """The zlib level newly written blocks are compressed at (0 = raw)."""
        return self._compression_level

    # ---------------------------------------------------------------- writes

    def append(self, rows: Iterable[dict[str, Any]]) -> int:
        """Append rows, grouping them into per-partition blocks; returns rows written.

        On tables with a sort key, each partition's batch is sorted by the key
        columns before being cut into blocks, so the blocks of one append are
        clustered: their sort-column ranges are tight and mutually disjoint.
        Rows whose key values have no consistent ordering are written unsorted
        (the blocks then simply carry no sort-key metadata).
        """
        grouped: dict[str, list[dict[str, Any]]] = {}
        count = 0
        for row in rows:
            partition = self.partitioner(row)
            grouped.setdefault(partition, []).append(row)
            if self.primary_key is not None:
                self._pk_partition[canonical_key(row.get(self.primary_key))] = partition
            count += 1
        for partition, partition_rows in grouped.items():
            applied: tuple[str, ...] | None = None
            if self._sort_key:
                partition_rows, applied = sort_rows(partition_rows, self._sort_key)
            for start in range(0, len(partition_rows), self.block_rows):
                chunk = partition_rows[start:start + self.block_rows]
                self._write_block(partition, chunk, applied)
        if count:
            self._write_manifest()
        return count

    def _write_block(
        self,
        partition: str,
        rows: list[dict[str, Any]],
        sort_key: tuple[str, ...] | None = None,
    ) -> None:
        self._partitions.setdefault(partition, []).append(
            self._store_block(partition, rows, sort_key)
        )

    def _store_block(
        self,
        partition: str,
        rows: list[dict[str, Any]],
        sort_key: tuple[str, ...] | None = None,
    ) -> _BlockRef:
        """Encode + persist one block on the DFS and return its (unregistered)
        reference — callers decide when the block becomes visible."""
        block = ColumnarBlock.from_rows(rows, self.columns, sort_key=sort_key)
        payload = block.to_payload()
        data = wrap_payload(payload, self._compression_level)
        self._block_counter += 1
        path = f"/warehouse/{self.name}/{partition}/block-{self._block_counter:06d}.blk"
        self.dfs.write_file(path, data)
        return _BlockRef(
            path=path, n_rows=block.n_rows, stats=block.stats,
            sort_key=block.sort_key,
            compressed_bytes=len(data), uncompressed_bytes=len(payload),
        )

    def append_deltas(
        self,
        entries: Sequence[tuple[int, str, dict[str, Any]]],
        primary_key: str | None = None,
    ) -> int:
        """Land CDC row deltas as small sorted delta blocks; returns rows applied.

        ``entries`` are ``(lsn, op, row)`` triples with ``op`` one of
        ``"insert"``/``"upsert"``/``"u"`` (latest row version) or
        ``"delete"``/``"d"`` (tombstone; ``row`` is the deleted row, used for
        partition routing).  Application is **idempotent**: an entry whose LSN
        is not strictly greater than the latest landed version of its primary
        key is dropped, so redelivered broker batches (consumer restart,
        checkpoint replay) never land twice — regardless of delivery order
        across broker partitions.

        Reads merge these deltas into the base blocks with last-writer-wins
        by primary key/LSN (see :meth:`_effective_refs`);
        :meth:`compact_partition` folds them into the base for good.
        """
        if primary_key is not None:
            if self.primary_key is None:
                if primary_key not in self.columns:
                    raise WarehouseError(
                        f"table {self.name!r} primary key {primary_key!r} is not a column"
                    )
                self.primary_key = primary_key
            elif primary_key != self.primary_key:
                raise WarehouseError(
                    f"table {self.name!r} primary key is {self.primary_key!r}, "
                    f"not {primary_key!r}"
                )
        if self.primary_key is None:
            raise WarehouseError(
                f"table {self.name!r} needs a primary key to apply CDC deltas"
            )
        fresh: dict[str, list[tuple[int, str, dict[str, Any]]]] = {}
        applied = 0
        for lsn, op, row in sorted(entries, key=lambda entry: entry[0]):
            opcode = "d" if op in ("d", "delete") else "u"
            key = canonical_key(row.get(self.primary_key))
            existing = self._delta_info.get(key)
            if existing is not None and lsn <= existing.lsn:
                continue  # duplicate or stale redelivery
            target = self.partitioner(row)
            previous = self._pk_partition.get(key)
            if previous is not None and previous != target:
                # The key's old partition keeps its bytes but loses the row
                # from its merged view — bump its epoch so signatures and
                # cached merges notice.
                self._suppression_epoch[previous] = (
                    self._suppression_epoch.get(previous, 0) + 1
                )
                self._merged_refs.pop(previous, None)
            self._delta_info[key] = _DeltaEntry(lsn=lsn, partition=target, op=opcode)
            if opcode == "d":
                self._pk_partition.pop(key, None)
            else:
                self._pk_partition[key] = target
            fresh.setdefault(target, []).append((lsn, opcode, row))
            applied += 1
        for partition, items in fresh.items():
            delta_rows = [
                {
                    **{name: row.get(name) for name in self.columns},
                    "_cdc_lsn": lsn,
                    "_cdc_op": opcode,
                }
                for lsn, opcode, row in items
            ]
            applied_key: tuple[str, ...] | None = None
            if self._sort_key:
                delta_rows, applied_key = sort_rows(delta_rows, self._sort_key)
            for start in range(0, len(delta_rows), self.block_rows):
                chunk = delta_rows[start:start + self.block_rows]
                self._delta_partitions.setdefault(partition, []).append(
                    self._store_delta_block(partition, chunk, applied_key)
                )
            self._merged_refs.pop(partition, None)
        if applied:
            self._write_manifest()
        return applied

    def _store_delta_block(
        self,
        partition: str,
        rows: list[dict[str, Any]],
        sort_key: tuple[str, ...] | None = None,
    ) -> _BlockRef:
        block = ColumnarBlock.from_rows(
            rows, self.columns + ["_cdc_lsn", "_cdc_op"],
            sort_key=sort_key, role="delta",
        )
        payload = block.to_payload()
        data = wrap_payload(payload, self._compression_level)
        self._block_counter += 1
        path = f"/warehouse/{self.name}/{partition}/delta-{self._block_counter:06d}.blk"
        self.dfs.write_file(path, data)
        return _BlockRef(
            path=path, n_rows=block.n_rows, stats=block.stats,
            sort_key=block.sort_key,
            compressed_bytes=len(data), uncompressed_bytes=len(payload),
            role="delta",
        )

    def delta_block_count(self, partition: str | None = None) -> int:
        """Physical delta blocks awaiting a fold (optionally of one partition)."""
        if partition is not None:
            return len(self._delta_partitions.get(partition, []))
        return sum(len(refs) for refs in self._delta_partitions.values())

    def _effective_refs(self, partition: str) -> list[_BlockRef]:
        """The partition's readable block refs: base blocks as stored, or the
        merged base+delta view when deltas (or away-moves) are outstanding.

        The merged view is rebuilt from rows and cut into ``block_rows``
        chunks exactly like an append of the same rows, so its blocks — and
        therefore zone statistics, stats-only aggregates and float fold order
        — are indistinguishable from a fresh batch copy of the merged data.
        """
        base = self._partitions.get(partition, [])
        deltas = self._delta_partitions.get(partition, [])
        epoch = self._suppression_epoch.get(partition, 0)
        if not deltas and not epoch:
            return base
        cache_key = (
            tuple(ref.path for ref in base),
            tuple(ref.path for ref in deltas),
            epoch,
        )
        cached = self._merged_refs.get(partition)
        if cached is not None and cached[0] == cache_key:
            return cached[1]
        try:
            refs = self._build_merged_refs(partition, base, deltas)
        except (TransientFaultError, RetryExhaustedError, WarehouseError) as exc:
            if not self.degraded_reads:
                raise
            # Degradation ladder: the merged view is unavailable (delta blocks
            # unreadable after retries) — serve the base blocks, stale but
            # consistent, and surface the downgrade instead of dying.
            if self.health is not None:
                self.health.degrade(exc)
            return base
        self._merged_refs[partition] = (cache_key, refs)
        return refs

    def _merged_rows(
        self,
        partition: str,
        base_refs: list[_BlockRef],
        delta_refs: list[_BlockRef],
    ) -> list[dict[str, Any]]:
        """Last-writer-wins merge of a partition's base and delta rows.

        Base rows are walked in stored order; a row whose key has a newer
        delta version is substituted in place (targeting this partition) or
        dropped (delete, or moved to another partition).  Surviving delta
        rows with no base predecessor here are appended in LSN order — the
        position a fresh batch copy would have given them.
        """
        assert self.primary_key is not None
        pk = self.primary_key
        latest: dict[Any, tuple[int, dict[str, Any]]] = {}
        for ref in delta_refs:
            block = self._cache.get(ref.path)
            if block is None:
                block = ColumnarBlock.from_bytes(self.dfs.read_file(ref.path))
            for row in block.to_rows():
                lsn = row.pop("_cdc_lsn")
                opcode = row.pop("_cdc_op")
                entry = self._delta_info.get(canonical_key(row.get(pk)))
                if entry is not None and lsn == entry.lsn and opcode == "u":
                    latest[canonical_key(row.get(pk))] = (lsn, row)
        merged: list[dict[str, Any]] = []
        for ref in base_refs:
            block = self._cache.get(ref.path)
            if block is None:
                block = ColumnarBlock.from_bytes(self.dfs.read_file(ref.path))
            for row in block.to_rows():
                key = canonical_key(row.get(pk))
                entry = self._delta_info.get(key)
                if entry is None:
                    merged.append(row)
                elif entry.folded and entry.partition == partition:
                    merged.append(row)  # base row already is the latest version
                elif entry.partition == partition and entry.op == "u":
                    replacement = latest.pop(key, None)
                    merged.append(row if replacement is None else replacement[1])
                # else: deleted, or moved to another partition — drop.
        merged.extend(row for _lsn, row in sorted(latest.values(), key=lambda v: v[0]))
        return merged

    def _build_merged_refs(
        self,
        partition: str,
        base_refs: list[_BlockRef],
        delta_refs: list[_BlockRef],
    ) -> list[_BlockRef]:
        rows = self._merged_rows(partition, base_refs, delta_refs)
        if not rows:
            return []
        applied: tuple[str, ...] | None = None
        if self._sort_key:
            rows, applied = sort_rows(rows, self._sort_key)
        self._merge_counter += 1
        refs: list[_BlockRef] = []
        for index, start in enumerate(range(0, len(rows), self.block_rows)):
            chunk = rows[start:start + self.block_rows]
            # Sorted column order: the wire header is serialised with sorted
            # keys, so durable blocks decode — and scan — alphabetically.
            # The in-memory merged view must be indistinguishable from one.
            block = ColumnarBlock.from_rows(
                chunk, sorted(self.columns), sort_key=applied
            )
            refs.append(_BlockRef(
                path=(
                    f"/warehouse/{self.name}/{partition}/"
                    f"merged-{self._merge_counter:06d}-{index:04d}.mem"
                ),
                n_rows=block.n_rows, stats=block.stats, sort_key=block.sort_key,
                block=block,
            ))
        return refs

    def drop_partition(self, partition: str) -> int:
        """Delete every block of ``partition``; returns the number of rows removed."""
        refs = self._partitions.pop(partition, [])
        removed = 0
        for ref in refs:
            self._cache.invalidate(ref.path)
            self.dfs.delete_file(ref.path)
            removed += ref.n_rows
        for ref in self._delta_partitions.pop(partition, []):
            self._cache.invalidate(ref.path)
            self.dfs.delete_file(ref.path)
            removed += ref.n_rows
        self._merged_refs.pop(partition, None)
        self._suppression_epoch.pop(partition, None)
        doomed = [k for k, e in self._delta_info.items() if e.partition == partition]
        for key in doomed:
            del self._delta_info[key]
        orphans = [k for k, p in self._pk_partition.items() if p == partition]
        for key in orphans:
            del self._pk_partition[key]
        self._write_manifest()
        return removed

    def compact_partition(self, partition: str) -> dict[str, int]:
        """Merge the partition's blocks into as few full blocks as possible.

        Every append cuts its own blocks, so a partition that received many
        small batches fragments into many small blocks.  Compaction reads the
        whole partition back, re-sorts it by the table's sort key (one global
        sort — data that arrived unsorted across appends is re-clustered into
        disjoint sorted blocks), rewrites it as ``ceil(rows / block_rows)``
        blocks, then deletes the old files (freeing their DFS space) and
        invalidates their block-cache entries.  On tables without a sort key
        the concatenated row order is preserved exactly.

        With outstanding CDC deltas (or rows moved away by deltas), compaction
        additionally **folds** them: the merged last-writer-wins view is what
        gets rewritten as base blocks, the delta blocks are deleted and the
        folded key versions are marked so reads stop suppressing the (now
        up-to-date) base rows.

        Returns a report: ``rows``, ``blocks_before``/``blocks_after`` and
        ``compressed_bytes_before``/``compressed_bytes_after``
        (delta blocks count as blocks/bytes before the rewrite).
        """
        refs = self._partitions.get(partition)
        delta_refs = self._delta_partitions.get(partition, [])
        if refs is None and not delta_refs:
            raise WarehouseError(
                f"table {self.name!r} has no partition {partition!r}"
            )
        base_refs = refs or []
        folding = bool(delta_refs) or bool(self._suppression_epoch.get(partition))
        if folding:
            rows = self._merged_rows(partition, base_refs, delta_refs)
        else:
            rows = []
            for ref in base_refs:
                # One-shot reads of doomed blocks: peek at the cache for blocks
                # already resident, but never populate it — cycling a large
                # fragmented partition through the LRU would evict the analytics
                # working set for entries invalidated moments later.
                block = self._cache.get(ref.path)
                if block is None:
                    block = ColumnarBlock.from_bytes(self.dfs.read_file(ref.path))
                rows.extend(block.to_rows())
        applied: tuple[str, ...] | None = None
        if self._sort_key:
            rows, applied = sort_rows(rows, self._sort_key)
        # Write every replacement block *before* touching the partition's
        # visible refs: a write failure mid-compaction then leaves the old
        # layout fully intact — and the replacements written so far are
        # deleted again, so an aborted compaction leaks no orphan blocks.
        old_refs = base_refs + delta_refs
        new_refs: list[_BlockRef] = []
        try:
            for start in range(0, len(rows), self.block_rows):
                new_refs.append(
                    self._store_block(
                        partition, rows[start:start + self.block_rows], applied
                    )
                )
        except Exception:
            for ref in new_refs:
                try:
                    self.dfs.delete_file(ref.path)
                except WarehouseError:
                    pass  # best-effort cleanup of an already-failing pass
            raise
        self._partitions[partition] = new_refs
        for ref in old_refs:
            self._cache.invalidate(ref.path)
            self.dfs.delete_file(ref.path)
        if folding:
            self._delta_partitions.pop(partition, None)
            self._merged_refs.pop(partition, None)
            self._suppression_epoch.pop(partition, None)
            for key, entry in self._delta_info.items():
                if entry.partition == partition:
                    # The base now holds (or, for deletes, lacks) exactly this
                    # version; only a strictly newer delta may override it.
                    entry.folded = True
        self._write_manifest()
        return {
            "rows": len(rows),
            "blocks_before": len(old_refs),
            "blocks_after": len(new_refs),
            "compressed_bytes_before": sum(r.compressed_bytes for r in old_refs),
            "compressed_bytes_after": sum(r.compressed_bytes for r in new_refs),
        }

    # -------------------------------------------------- durability & recovery

    def delta_high_water(self) -> int:
        """The highest CDC LSN landed in this table (0 when none).

        After :meth:`recover`, this is the warehouse-side high-water mark the
        CDC applier reconciles its broker offsets against: messages at or
        below it are already landed and will be dropped by the exactly-once
        index on redelivery.
        """
        return max((entry.lsn for entry in self._delta_info.values()), default=0)

    def _manifest_path(self) -> str:
        return f"/warehouse/{self.name}/_manifest.json"

    def _manifest_payload(self) -> dict[str, Any]:
        return {
            "version": _MANIFEST_VERSION,
            "table": self.name,
            "primary_key": self.primary_key,
            "block_counter": self._block_counter,
            "partitions": {
                partition: [_encode_ref(ref) for ref in refs]
                for partition, refs in self._partitions.items()
            },
            "delta_partitions": {
                partition: [_encode_ref(ref) for ref in refs]
                for partition, refs in self._delta_partitions.items()
            },
            "suppression_epoch": dict(self._suppression_epoch),
            "delta_info": [
                [_encode_key(key), entry.lsn, entry.partition, entry.op, entry.folded]
                for key, entry in self._delta_info.items()
            ],
            "pk_partition": [
                [_encode_key(key), partition]
                for key, partition in self._pk_partition.items()
            ],
        }

    def _write_manifest(self) -> None:
        """Persist the recovery manifest (atomic via the DFS write path).

        The manifest accelerates :meth:`recover` to O(manifest) instead of
        O(read every block); it is *not* the source of truth — recovery
        cross-checks it against the actual file listing and rescans on any
        disagreement.  A manifest write failure therefore degrades health
        rather than failing the data operation that triggered it.
        """
        if not self.durable_manifest:
            return
        data = json.dumps(self._manifest_payload(), sort_keys=True).encode("utf-8")
        try:
            self.dfs.write_file(self._manifest_path(), data)
        except (TransientFaultError, RetryExhaustedError, WarehouseError) as exc:
            if self.health is not None:
                self.health.degrade(exc)

    def recover(self) -> dict[str, Any]:
        """Rebuild in-memory state from the DFS after a process restart.

        Fast path: parse the per-table manifest and adopt it when its block
        paths agree exactly with the DFS file listing.  Fallback (manifest
        missing, torn, unknown version, or stale vs the listing): read every
        ``block-``/``delta-`` file back, rebuilding block refs from the block
        headers, the per-key newest-LSN index and partition map from the
        delta/base rows, and suppression epochs from keys whose base row
        lives in a partition their latest version moved away from.  Folded
        flags are unrecoverable by rescan — safe, because a redelivered
        folded version re-applies content identical to the base row.

        Returns a report: ``source`` (``"manifest"``/``"scan"``/``"empty"``),
        block/key counts and the recovered ``delta_high_water``.
        """
        prefix = f"/warehouse/{self.name}/"
        manifest_path = self._manifest_path()
        block_paths = [
            path
            for path in self.dfs.list_files(prefix)
            if path != manifest_path and path.endswith(".blk")
        ]
        source = "scan"
        if self.dfs.exists(manifest_path):
            payload: dict[str, Any] | None
            try:
                payload = json.loads(self.dfs.read_file(manifest_path))
            except (
                ValueError,
                UnicodeDecodeError,
                TransientFaultError,
                RetryExhaustedError,
                WarehouseError,
            ):
                payload = None  # torn or unreadable manifest → rescan
            if payload is not None and self._adopt_manifest(payload, block_paths):
                source = "manifest"
        if source != "manifest":
            if block_paths:
                self._recover_from_scan(prefix, block_paths)
                # Re-seed the manifest so the *next* open takes the fast path.
                self._write_manifest()
            else:
                source = "empty"
        self._cache.clear()
        self._merged_refs.clear()
        return {
            "source": source,
            "base_blocks": sum(len(refs) for refs in self._partitions.values()),
            "delta_blocks": self.delta_block_count(),
            "tracked_keys": len(self._delta_info),
            "delta_high_water": self.delta_high_water(),
        }

    def _adopt_manifest(
        self, payload: dict[str, Any], block_paths: list[str]
    ) -> bool:
        """Parse + validate a manifest document; adopt it only when its block
        paths agree exactly with the DFS listing.  Returns adoption success."""
        if not isinstance(payload, dict):
            return False
        if payload.get("version") != _MANIFEST_VERSION or payload.get("table") != self.name:
            return False
        try:
            partitions = {
                partition: [_decode_ref(obj) for obj in refs]
                for partition, refs in payload["partitions"].items()
            }
            delta_partitions = {
                partition: [_decode_ref(obj) for obj in refs]
                for partition, refs in payload["delta_partitions"].items()
            }
            suppression = {
                partition: int(epoch)
                for partition, epoch in payload["suppression_epoch"].items()
                if int(epoch)
            }
            delta_info = {
                _decode_key(key): _DeltaEntry(
                    lsn=int(lsn), partition=partition, op=op, folded=bool(folded)
                )
                for key, lsn, partition, op, folded in payload["delta_info"]
            }
            pk_partition = {
                _decode_key(key): partition
                for key, partition in payload["pk_partition"]
            }
            block_counter = int(payload["block_counter"])
            primary_key = payload["primary_key"]
        except (KeyError, TypeError, ValueError, AttributeError):
            return False  # structurally torn manifest → rescan
        manifest_paths = {
            ref.path
            for refs in list(partitions.values()) + list(delta_partitions.values())
            for ref in refs
        }
        if manifest_paths != set(block_paths):
            return False  # blocks landed after the last manifest write → rescan
        if primary_key is not None and self.primary_key is None:
            if primary_key in self.columns:
                self.primary_key = primary_key
        self._partitions = partitions
        self._delta_partitions = delta_partitions
        self._suppression_epoch = suppression
        self._delta_info = delta_info
        self._pk_partition = pk_partition
        self._block_counter = max(
            block_counter, max(map(_block_file_counter, block_paths), default=0)
        )
        return True

    def _recover_from_scan(self, prefix: str, block_paths: list[str]) -> None:
        """Full fallback: rebuild all state by reading every block back."""
        partitions: dict[str, list[_BlockRef]] = {}
        delta_partitions: dict[str, list[_BlockRef]] = {}
        delta_info: dict[Any, _DeltaEntry] = {}
        pk_partition: dict[Any, str] = {}
        base_keys: list[tuple[Any, str]] = []
        max_counter = 0
        for path in sorted(block_paths):
            relative = path[len(prefix):]
            partition, _, filename = relative.rpartition("/")
            if not partition:
                continue  # stray file outside a partition directory
            data = self.dfs.read_file(path)
            block = ColumnarBlock.from_bytes(data)
            ref = _BlockRef(
                path=path, n_rows=block.n_rows, stats=block.stats,
                sort_key=block.sort_key,
                compressed_bytes=len(data),
                uncompressed_bytes=len(unwrap_payload(data)),
                role=block.role,
            )
            max_counter = max(max_counter, _block_file_counter(path))
            if filename.startswith("delta-") or block.role == "delta":
                if self.primary_key is None:
                    raise WarehouseError(
                        f"table {self.name!r} needs a primary key to recover "
                        "its CDC delta state from a block rescan"
                    )
                delta_partitions.setdefault(partition, []).append(ref)
                for row in block.to_rows():
                    lsn = row["_cdc_lsn"]
                    opcode = row["_cdc_op"]
                    key = canonical_key(row.get(self.primary_key))
                    existing = delta_info.get(key)
                    if existing is None or lsn > existing.lsn:
                        delta_info[key] = _DeltaEntry(
                            lsn=lsn, partition=partition, op=opcode
                        )
            else:
                partitions.setdefault(partition, []).append(ref)
                if self.primary_key is not None:
                    for value in block.columns[self.primary_key]:
                        base_keys.append((canonical_key(value), partition))
        # Base rows record where each key physically lives; the newest delta
        # version then overrides (or, for deletes, removes) that location.
        for key, partition in base_keys:
            pk_partition[key] = partition
        for key, entry in delta_info.items():
            if entry.op == "d":
                pk_partition.pop(key, None)
            else:
                pk_partition[key] = entry.partition
        # A base row whose latest version moved to another partition must be
        # suppressed at merge time even though its partition has no delta
        # blocks — recover those partitions' suppression epochs.
        suppression: dict[str, int] = {}
        for key, base_partition in base_keys:
            entry = delta_info.get(key)
            if entry is not None and entry.op == "u" and entry.partition != base_partition:
                suppression[base_partition] = 1
        self._partitions = partitions
        self._delta_partitions = delta_partitions
        self._delta_info = delta_info
        self._pk_partition = pk_partition
        self._suppression_epoch = suppression
        self._block_counter = max(self._block_counter, max_counter)

    # ----------------------------------------------------------------- reads

    def partitions(self) -> list[str]:
        """All partition keys, sorted (delta-only partitions included)."""
        if not self._delta_partitions:
            return sorted(self._partitions)
        return sorted(set(self._partitions) | set(self._delta_partitions))

    def row_count(self, partition: str | None = None) -> int:
        """Total *visible* rows (optionally of a single partition): with
        outstanding deltas this is the merged row count, not the physical one."""
        if partition is not None:
            return sum(ref.n_rows for ref in self._effective_refs(partition))
        return sum(
            ref.n_rows
            for partition in self.partitions()
            for ref in self._effective_refs(partition)
        )

    def scan(
        self,
        columns: Sequence[str] | None = None,
        partitions: Sequence[str] | None = None,
        predicate: Callable[[dict[str, Any]], bool] | None = None,
        zone_filter: tuple[str, Any, Any] | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Row-at-a-time scan (streaming; bypasses the block cache).

        Parameters
        ----------
        columns:
            Columns to materialise (all by default).
        partitions:
            Restrict the scan to these partition keys (partition pruning).
        predicate:
            Row-level filter applied after reading a block.
        zone_filter:
            ``(column, low, high)`` bounds used to skip blocks whose min/max
            statistics prove they contain no matching rows.
        """
        zone_filters = [zone_filter] if zone_filter is not None else None
        for _partition, ref in self._iter_refs(partitions, zone_filters):
            block = (
                ref.block if ref.block is not None
                else ColumnarBlock.from_bytes(self.dfs.read_file(ref.path))
            )
            for row in block.to_rows(columns):
                if predicate is None or predicate(row):
                    yield row

    def scan_columns(
        self,
        columns: Sequence[str],
        partitions: Sequence[str] | None = None,
        range_filters: Sequence[RangeFilter] | None = None,
        column_predicates: Mapping[str, Callable[[Any], bool]] | None = None,
        executor: LocalExecutor | None = None,
    ) -> Iterator[dict[str, list[Any]]]:
        """Vectorised scan: yield per-block column arrays for surviving rows.

        Filters are evaluated column-at-a-time as a selection vector over the
        block's raw arrays; only then are the projected columns compacted, so
        non-surviving rows are never materialised.  ``range_filters`` are
        conjunctive inclusive ``(column, low, high)`` bounds (``None`` bound =
        unbounded; ``None`` values never match a bounded filter) that also
        prune whole blocks via their zone statistics.  On clustered tables a
        range filter on the leading sort-key column additionally early-exits
        the block walk and binary-searches inside each sorted block.
        ``column_predicates`` maps column names to per-value predicates.
        Filter columns need not be projected.

        With ``executor``, block fetch + decode + filter fan out across its
        worker threads (the whole scan is materialised before the first yield);
        blocks are still yielded in the exact order of the sequential scan, so
        results are identical for any worker count.

        Returned arrays are fresh lists owned by the caller, but the cell
        values themselves are shared with the block cache — treat nested
        mutable values (e.g. list-valued columns) as read-only, or use
        :meth:`scan_filtered`, which copies them.
        """
        self._check_columns(columns)
        self._check_columns(f[0] for f in range_filters or ())
        self._check_columns(column_predicates or ())

        def project(ref: _BlockRef) -> dict[str, list[Any]] | None:
            block = self._load_block(ref)
            selection = _selection_vector(block, range_filters, column_predicates)
            if selection is None:
                return {name: list(block.columns[name]) for name in columns}
            if not selection:
                return None
            return {
                name: [block.columns[name][i] for i in selection]
                for name in columns
            }

        refs = [ref for _partition, ref in self._iter_refs(partitions, range_filters)]
        for block_columns in self._map_refs(refs, project, executor, "scan_columns"):
            if block_columns is not None:
                yield block_columns

    def scan_filtered(
        self,
        columns: Sequence[str] | None = None,
        partitions: Sequence[str] | None = None,
        range_filters: Sequence[RangeFilter] | None = None,
        column_predicates: Mapping[str, Callable[[Any], bool]] | None = None,
        executor: LocalExecutor | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Late-materialised row scan: dicts are built only for surviving rows.

        Mutable cell values are copied so callers own the rows outright (the
        same contract as :meth:`scan`) without corrupting the block cache.
        """
        names = list(columns) if columns is not None else list(self.columns)
        for block_columns in self.scan_columns(
            names, partitions, range_filters, column_predicates, executor
        ):
            arrays = [block_columns[name] for name in names]
            for values in zip(*arrays):
                yield {name: _own_value(value) for name, value in zip(names, values)}

    def aggregate(
        self,
        aggregates: Mapping[str, tuple[str, str]],
        partitions: Sequence[str] | None = None,
        range_filters: Sequence[RangeFilter] | None = None,
        column_predicates: Mapping[str, Callable[[Any], bool]] | None = None,
        group_by: str | Sequence[str] | None = None,
        group_key: Callable[[Any], Any] | None = None,
        executor: LocalExecutor | None = None,
    ) -> dict[str, Any] | dict[Any, dict[str, Any]]:
        """Aggregate over the table without materialising rows.

        ``aggregates`` maps output aliases to ``(function, column)`` pairs with
        functions ``count``/``count_distinct``/``min``/``max``/``sum``/``avg``
        (``count`` of ``"*"`` counts rows, of a column counts non-null values;
        the others ignore nulls).  ``group_by`` is one column name or a
        sequence of them: the result is then ``{group: {alias: value}}`` where
        the group is the column value (single column) or the tuple of column
        values (several), optionally mapped through ``group_key``; without
        ``group_by``, one ``{alias: value}`` dict.  Grouping runs on the wire
        encoding where possible: dictionary-encoded group columns are bucketed
        by their integer codes and decoded (and ``group_key``-mapped) once per
        distinct value per block, not once per row.

        With ``executor``, per-block partial aggregation states are computed on
        its worker threads and merged in deterministic block order, so results
        are identical for any worker count (including float ``sum``/``avg``,
        whose accumulation order is preserved).

        Unfiltered, ungrouped ``count``/``min``/``max`` aggregates are answered
        purely from the per-block statistics kept on the name-node side — no
        DFS read happens at all (unless a block's statistics are inconclusive,
        e.g. a mixed-type column, in which case that call falls back to the
        block-reading path; values with no consistent ordering then raise
        :class:`WarehouseError`).
        """
        group_cols = self._validate_aggregate_args(
            aggregates, group_by, range_filters, column_predicates
        )

        unfiltered = not range_filters and not column_predicates
        if group_cols is None and unfiltered and all(
            function in _STATS_ONLY_FUNCTIONS for function, _column in aggregates.values()
        ):
            result = self._aggregate_from_stats(aggregates, partitions)
            if result is not None:
                return result

        return self._aggregate_blocks(
            aggregates, partitions, range_filters, column_predicates,
            group_cols, group_key, executor,
        )

    def aggregate_states(
        self,
        aggregates: Mapping[str, tuple[str, str]],
        partitions: Sequence[str] | None = None,
        range_filters: Sequence[RangeFilter] | None = None,
        column_predicates: Mapping[str, Callable[[Any], bool]] | None = None,
        group_by: str | Sequence[str] | None = None,
        group_key: Callable[[Any], Any] | None = None,
        executor: LocalExecutor | None = None,
    ) -> dict[Any, dict[str, "_AggState"]]:
        """Mergeable partial aggregation states per group (``None`` = ungrouped).

        The building block of the materialized roll-up subsystem
        (:mod:`repro.storage.warehouse.rollups`): same arguments, validation
        and block walk as :meth:`aggregate`, but the per-group accumulators are
        returned *unfinalised*, so states computed for disjoint partition sets
        can later be combined with :func:`merge_states` and finalised with
        :func:`finalise_states`.  Merging per-partition states in sorted
        partition order reproduces the whole-table :meth:`aggregate` result
        exactly — floats included, because both sides fold block states within
        each partition first and partitions second (see :meth:`_fold_states`).
        """
        group_cols = self._validate_aggregate_args(
            aggregates, group_by, range_filters, column_predicates
        )
        pairs = list(self._iter_refs(partitions, range_filters))
        return self._fold_states(
            pairs, aggregates, range_filters, column_predicates,
            group_cols, group_key, executor,
        )

    def partition_signature(self, partition: str) -> tuple[str, ...]:
        """The partition's block identity: its blocks' DFS paths, in ref order.

        Appends add paths, compaction replaces them and drops remove the
        partition entirely, so the signature changes exactly when the
        partition's physical block set changes — the staleness test that
        drives incremental roll-up refreshes.  CDC state is part of the
        identity: landed delta-block paths are appended, and a suppression
        epoch marker is added when deltas moved rows *away* without touching
        this partition's bytes — so incremental refresh consumes deltas for
        free.  Name-node metadata only; no DFS read happens.
        """
        refs = self._partitions.get(partition)
        delta_refs = self._delta_partitions.get(partition)
        if refs is None and delta_refs is None:
            raise WarehouseError(f"table {self.name!r} has no partition {partition!r}")
        signature = tuple(ref.path for ref in refs or []) + tuple(
            ref.path for ref in delta_refs or []
        )
        epoch = self._suppression_epoch.get(partition, 0)
        if epoch:
            signature += (f"#suppression-epoch={epoch}",)
        return signature

    def read_column(self, column: str, partitions: Sequence[str] | None = None) -> list[Any]:
        """All values of ``column``, read directly from the block column arrays.

        Mutable values are copied so callers own the result outright (the
        cached blocks stay pristine, matching the :meth:`scan` contract).
        """
        self._check_columns([column])
        out: list[Any] = []
        for _partition, ref in self._iter_refs(partitions, None):
            out.extend(_own_value(v) for v in self._load_block(ref).columns[column])
        return out

    def block_count(self) -> int:
        """Physical blocks on the DFS (base + not-yet-folded delta blocks)."""
        return (
            sum(len(refs) for refs in self._partitions.values())
            + self.delta_block_count()
        )

    def cache_info(self) -> dict[str, int]:
        """Block-cache statistics: hits, misses, resident entries, capacity."""
        return {
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "entries": len(self._cache),
            "capacity": self._cache.capacity,
        }

    def storage_totals(self) -> dict[str, Any]:
        """Table-wide storage accounting (no per-partition breakdown).

        The cheap variant of :meth:`storage_stats` for monitoring endpoints:
        one pass over the block refs, constant-size output.
        ``fragmented_partitions`` counts partitions holding more than one
        block — the partitions a compaction pass would merge.
        """
        compressed = uncompressed = fragmented = 0
        for partition in self.partitions():
            refs = self._partitions.get(partition, []) + self._delta_partitions.get(
                partition, []
            )
            if len(refs) > 1:
                fragmented += 1
            for ref in refs:
                compressed += ref.compressed_bytes
                uncompressed += ref.uncompressed_bytes
        return {
            "table": self.name,
            "compression_level": self._compression_level,
            "block_count": self.block_count(),
            "delta_block_count": self.delta_block_count(),
            "row_count": self.row_count(),
            "partition_count": len(self.partitions()),
            "fragmented_partitions": fragmented,
            "compressed_bytes": compressed,
            "uncompressed_bytes": uncompressed,
            "compression_ratio": (uncompressed / compressed) if compressed else 1.0,
        }

    def storage_stats(self) -> dict[str, Any]:
        """Physical storage accounting from the name-node block metadata.

        Reports the table's compression level, totals, the table-wide
        compression ratio (uncompressed / compressed) and a per-partition
        breakdown listing every block's compressed / uncompressed byte
        counts.  No DFS read happens — the sizes were recorded at write time.
        """
        partitions: dict[str, dict[str, Any]] = {}
        for partition in self.partitions():
            refs = self._partitions.get(partition, []) + self._delta_partitions.get(
                partition, []
            )
            partitions[partition] = {
                "rows": sum(ref.n_rows for ref in refs),
                "reads": self._read_counts.get(partition, 0),
                "compressed_bytes": sum(ref.compressed_bytes for ref in refs),
                "uncompressed_bytes": sum(ref.uncompressed_bytes for ref in refs),
                "blocks": [
                    {
                        "path": ref.path,
                        "rows": ref.n_rows,
                        "role": ref.role,
                        "compressed_bytes": ref.compressed_bytes,
                        "uncompressed_bytes": ref.uncompressed_bytes,
                    }
                    for ref in refs
                ],
            }
        return {**self.storage_totals(), "partitions": partitions}

    # ------------------------------------------------------------- internals

    def _check_columns(self, columns: Iterable[str]) -> None:
        missing = [c for c in columns if c not in self.columns]
        if missing:
            raise WarehouseError(f"table {self.name!r} has no column(s) {missing!r}")

    def _validate_aggregate_args(
        self,
        aggregates: Mapping[str, tuple[str, str]],
        group_by: str | Sequence[str] | None,
        range_filters: Sequence[RangeFilter] | None,
        column_predicates: Mapping[str, Callable[[Any], bool]] | None,
    ) -> list[str] | None:
        """Shared argument validation of :meth:`aggregate` /
        :meth:`aggregate_states`; returns the normalised group column list."""
        validate_aggregate_functions(aggregates)
        self._check_columns(
            column for _function, column in aggregates.values() if column != "*"
        )
        if group_by is None:
            group_cols: list[str] | None = None
        elif isinstance(group_by, str):
            group_cols = [group_by]
        else:
            group_cols = list(group_by)
            if not group_cols:
                raise WarehouseError("group_by needs at least one column")
        if group_cols is not None:
            self._check_columns(group_cols)
        self._check_columns(f[0] for f in range_filters or ())
        self._check_columns(column_predicates or ())
        return group_cols

    def _iter_refs(
        self,
        partitions: Sequence[str] | None,
        range_filters: Sequence[RangeFilter] | None,
    ) -> Iterator[tuple[str, _BlockRef]]:
        """Partition-pruned, zone-pruned iteration over block references.

        On clustered tables the blocks of each partition are walked in
        ascending order of their sort-column minimum (a deterministic clustered
        read order); a range filter with an upper bound on the sort column then
        stops the walk at the first block that starts past the bound — every
        later block's minimum is even greater, so none can match.
        """
        wanted = set(partitions) if partitions is not None else None
        sort_col = self._sort_key[0] if self._sort_key else None
        high_bound: Any = None
        has_bound = False
        if sort_col is not None and range_filters:
            for column, _low, high in range_filters:
                if column == sort_col and high is not None:
                    high_bound = high
                    has_bound = True
                    break
        for partition in self.partitions():
            if wanted is not None and partition not in wanted:
                continue
            refs = self._effective_refs(partition)
            self._read_counts[partition] += 1
            if sort_col is not None:
                ordered = _refs_in_min_order(refs, sort_col)
                if ordered is not None:
                    for ref in ordered:
                        if has_bound and _min_exceeds(ref, sort_col, high_bound):
                            break  # clustered early-exit
                        if range_filters and not _zones_might_match(ref.stats, range_filters):
                            continue
                        yield partition, ref
                    continue
            for ref in refs:
                if range_filters and not _zones_might_match(ref.stats, range_filters):
                    continue
                yield partition, ref

    def _map_refs(
        self,
        refs: list[_BlockRef],
        fn: Callable[[_BlockRef], Any],
        executor: LocalExecutor | None,
        description: str,
    ) -> Iterator[Any]:
        """Apply ``fn`` per block ref, serially or on executor workers.

        The parallel path cuts the block list into a few chunks per worker —
        enough tasks to overlap DFS read latency and decode work across the
        pool, few enough that dispatch overhead stays negligible when there
        are many small blocks — and relies on :meth:`LocalExecutor.run`
        preserving task order, so results stream back in the exact order of
        the sequential path.

        Thread workers only pay off while per-block work happens *outside*
        the GIL.  Two such sources exist: a DFS read latency (standing in for
        the network round-trip of a real distributed file system) and —
        since block format 4 — ``zlib`` decompression plus typed-array
        materialisation, both of which release the GIL.  The fan-out
        therefore engages when the DFS charges a latency *or* the table
        writes compressed blocks; with neither (a zero-latency DFS holding
        raw blocks), and likewise when every requested block is already
        decoded in the cache, per-block work is GIL-bound Python and the
        fan-out is skipped — thread dispatch would add contention and win
        nothing.
        """
        if (
            executor is None
            or executor.max_workers <= 1
            or len(refs) <= 1
            or (
                getattr(self.dfs, "read_latency", 0) <= 0
                and self._compression_level == 0
            )
            or self._cache.resident(ref.path for ref in refs)
        ):
            return (fn(ref) for ref in refs)
        chunk = max(1, -(-len(refs) // (executor.max_workers * 4)))
        batches = executor.run(
            [refs[i:i + chunk] for i in range(0, len(refs), chunk)],
            lambda batch: [fn(ref) for ref in batch],
            description=f"{description}({self.name})",
        )
        return (result for batch in batches for result in batch)

    def _load_block(self, ref: _BlockRef) -> ColumnarBlock:
        if ref.block is not None:
            # Synthetic merged ref: the block lives in memory with the ref
            # (and is cached by ``_merged_refs``), not in the LRU.
            return ref.block
        block = self._cache.get(ref.path)
        if block is None:
            block = ColumnarBlock.from_bytes(self.dfs.read_file(ref.path))
            self._cache.put(ref.path, block)
        return block

    def _aggregate_from_stats(
        self,
        aggregates: Mapping[str, tuple[str, str]],
        partitions: Sequence[str] | None,
    ) -> dict[str, Any] | None:
        """Answer count/min/max from block statistics; ``None`` if inconclusive."""
        out: dict[str, Any] = {}
        refs = [ref for _partition, ref in self._iter_refs(partitions, None)]
        for alias, (function, column) in aggregates.items():
            if function == "count":
                if column == "*":
                    out[alias] = sum(ref.n_rows for ref in refs)
                else:
                    total = 0
                    for ref in refs:
                        stats = ref.stats.get(column)
                        if stats is None:
                            return None
                        total += ref.n_rows - stats["nulls"]
                    out[alias] = total
            else:  # min / max
                extremes = []
                for ref in refs:
                    stats = ref.stats.get(column)
                    if stats is None:
                        return None
                    if stats[function] is None:
                        if stats["nulls"] < ref.n_rows:
                            # Non-null values exist but min/max were not
                            # comparable (mixed types): stats are inconclusive.
                            return None
                        continue
                    extremes.append(stats[function])
                if not extremes:
                    out[alias] = None
                else:
                    try:
                        out[alias] = min(extremes) if function == "min" else max(extremes)
                    except TypeError:
                        return None
        return out

    def _aggregate_blocks(
        self,
        aggregates: Mapping[str, tuple[str, str]],
        partitions: Sequence[str] | None,
        range_filters: Sequence[RangeFilter] | None,
        column_predicates: Mapping[str, Callable[[Any], bool]] | None,
        group_cols: list[str] | None,
        group_key: Callable[[Any], Any] | None,
        executor: LocalExecutor | None,
    ) -> dict[str, Any] | dict[Any, dict[str, Any]]:
        only_row_counts = all(
            function == "count" and column == "*" for function, column in aggregates.values()
        )
        pairs = list(self._iter_refs(partitions, range_filters))

        if only_row_counts:
            def counts_partial(ref: _BlockRef) -> Any:
                return self._block_partial(
                    ref, aggregates, range_filters, column_predicates,
                    group_cols, group_key, True,
                )

            refs = [ref for _partition, ref in pairs]
            partials = self._map_refs(refs, counts_partial, executor, "aggregate")
            row_counter: Counter = Counter()
            for counts in partials:
                if counts:
                    row_counter.update(counts)
            if group_cols is None:
                total = row_counter[None] if row_counter else 0
                return {alias: total for alias in aggregates}
            return {
                key: {alias: count for alias in aggregates}
                for key, count in row_counter.items()
            }

        states = self._fold_states(
            pairs, aggregates, range_filters, column_predicates,
            group_cols, group_key, executor,
        )
        return finalise_states(states, aggregates, grouped=group_cols is not None)

    def _fold_states(
        self,
        pairs: list[tuple[str, _BlockRef]],
        aggregates: Mapping[str, tuple[str, str]],
        range_filters: Sequence[RangeFilter] | None,
        column_predicates: Mapping[str, Callable[[Any], bool]] | None,
        group_cols: list[str] | None,
        group_key: Callable[[Any], Any] | None,
        executor: LocalExecutor | None,
    ) -> dict[Any, dict[str, _AggState]]:
        """Fold per-block partial states into per-group accumulators.

        The fold is two-level: block states merge within their partition first
        (in the deterministic block walk order), then the per-partition states
        merge in partition walk order.  Both levels are independent of the
        worker count, and — more importantly — the whole-table fold becomes
        bit-identical (floats included) to folding each partition on its own
        and merging the per-partition states afterwards, which is exactly what
        materialized roll-ups do on their incremental refresh path.
        """
        refs = [ref for _partition, ref in pairs]

        def partial(ref: _BlockRef) -> Any:
            return self._block_partial(
                ref, aggregates, range_filters, column_predicates,
                group_cols, group_key, False,
            )

        partials = self._map_refs(refs, partial, executor, "aggregate")
        states: dict[Any, dict[str, _AggState]] = {}
        partition_states: dict[Any, dict[str, _AggState]] = {}
        current: str | None = None
        for (partition, _ref), block_states in zip(pairs, partials):
            if partition != current:
                _adopt_states(states, partition_states, aggregates)
                partition_states = {}
                current = partition
            if block_states:
                _adopt_states(partition_states, block_states, aggregates)
        _adopt_states(states, partition_states, aggregates)
        return states

    def _block_partial(
        self,
        ref: _BlockRef,
        aggregates: Mapping[str, tuple[str, str]],
        range_filters: Sequence[RangeFilter] | None,
        column_predicates: Mapping[str, Callable[[Any], bool]] | None,
        group_cols: list[str] | None,
        group_key: Callable[[Any], Any] | None,
        only_row_counts: bool,
    ) -> dict[Any, Any] | None:
        """Partial aggregation state of one block (``None`` if nothing survives).

        Returns ``{group: row_count}`` when every aggregate is ``count(*)``
        (so the merge is one ``Counter.update``), else
        ``{group: {alias: _AggState}}``; the ungrouped case uses ``None`` as
        its single group key.
        """
        block = self._load_block(ref)
        selection = _selection_vector(block, range_filters, column_predicates)
        if selection is not None and not selection:
            return None
        n_selected = block.n_rows if selection is None else len(selection)

        group_positions: dict[Any, list[int]] | None = None
        if group_cols is not None:
            local_keys, decode = _local_group_keys(block, group_cols, selection)
            if only_row_counts:
                # Bucket once at C speed over codes/values, then decode and
                # group_key-map each *distinct* local key exactly once.
                try:
                    local_counts = Counter(local_keys)
                except TypeError as exc:
                    if group_key is None:
                        raise _unhashable_group(group_cols, exc) from exc
                    # group_key is the escape hatch for unhashable values:
                    # map every row through it before bucketing.
                    try:
                        return dict(Counter(
                            group_key(decode(local_key)) for local_key in local_keys
                        ))
                    except TypeError as exc2:
                        raise _unhashable_group(group_cols, exc2) from exc2
                counts: dict[Any, int] = {}
                for local_key, n in local_counts.items():
                    key = decode(local_key)
                    if group_key is not None:
                        key = group_key(key)
                    try:
                        counts[key] = counts.get(key, 0) + n
                    except TypeError as exc:
                        raise _unhashable_group(group_cols, exc) from exc
                return counts
            group_positions = _group_positions(local_keys, decode, group_key, group_cols)
        elif only_row_counts:
            return {None: n_selected}

        # Compact each referenced column once per block — not once per alias.
        compacted: dict[str, list[Any]] = {}

        def selected_values(column: str) -> list[Any]:
            if column not in compacted:
                array = block.columns[column]
                compacted[column] = (
                    list(array) if selection is None else [array[i] for i in selection]
                )
            return compacted[column]

        states: dict[Any, dict[str, _AggState]] = {}
        for alias, (function, column) in aggregates.items():
            if group_positions is None:
                cell = states.setdefault(None, {}).setdefault(alias, _AggState())
                if column == "*":
                    cell.update(function, [], n_selected, star=True)
                else:
                    values = selected_values(column)
                    cell.update(function, values, len(values), star=False)
            elif column == "*":
                for key, positions in group_positions.items():
                    cell = states.setdefault(key, {}).setdefault(alias, _AggState())
                    cell.update(function, [], len(positions), star=True)
            else:
                values = selected_values(column)
                for key, positions in group_positions.items():
                    cell = states.setdefault(key, {}).setdefault(alias, _AggState())
                    group_values = [values[p] for p in positions]
                    cell.update(function, group_values, len(group_values), star=False)
        return states


class _AggState:
    """Accumulator for one (group, aggregate) cell."""

    __slots__ = ("count", "total", "minimum", "maximum", "distinct")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.minimum: Any = None
        self.maximum: Any = None
        self.distinct: set | None = None

    def update(self, function: str, values: list[Any], n_selected: int, star: bool) -> None:
        if function == "count":
            self.count += n_selected if star else sum(1 for v in values if v is not None)
            return
        if function == "count_distinct":
            if self.distinct is None:
                self.distinct = set()
            try:
                self.distinct.update(v for v in values if v is not None)
            except TypeError as exc:
                raise WarehouseError(
                    f"column values are unhashable for 'count_distinct': {exc}"
                ) from exc
            return
        non_null = [v for v in values if v is not None]
        if not non_null:
            return
        try:
            if function in ("sum", "avg"):
                self.count += len(non_null)
                self.total += sum(non_null)
            elif function == "min":
                low = min(non_null)
                self.minimum = low if self.minimum is None else min(self.minimum, low)
            elif function == "max":
                high = max(non_null)
                self.maximum = high if self.maximum is None else max(self.maximum, high)
        except TypeError as exc:
            raise WarehouseError(f"column values have no consistent ordering for {function!r}: {exc}") from exc

    def merge(self, other: "_AggState", function: str) -> None:
        """Fold another partial state in (same arithmetic as sequential updates)."""
        self.count += other.count
        self.total += other.total
        if other.distinct is not None:
            if self.distinct is None:
                self.distinct = set()
            self.distinct |= other.distinct
        try:
            if other.minimum is not None:
                self.minimum = (
                    other.minimum if self.minimum is None
                    else min(self.minimum, other.minimum)
                )
            if other.maximum is not None:
                self.maximum = (
                    other.maximum if self.maximum is None
                    else max(self.maximum, other.maximum)
                )
        except TypeError as exc:
            raise WarehouseError(
                f"column values have no consistent ordering for {function!r}: {exc}"
            ) from exc

    def result(self, function: str) -> Any:
        if function == "count":
            return self.count
        if function == "count_distinct":
            return len(self.distinct) if self.distinct is not None else 0
        if function == "sum":
            return self.total if self.count else None
        if function == "avg":
            return self.total / self.count if self.count else None
        return self.minimum if function == "min" else self.maximum


def _adopt_states(
    target: dict[Any, dict[str, "_AggState"]],
    source: dict[Any, dict[str, "_AggState"]],
    aggregates: Mapping[str, tuple[str, str]],
) -> None:
    """Merge ``source`` group states into ``target``, adopting state objects
    on first sight (``source`` states are throwaway per-block partials)."""
    for key, group_states in source.items():
        cells = target.setdefault(key, {})
        for alias, state in group_states.items():
            cell = cells.get(alias)
            if cell is None:
                cells[alias] = state
            else:
                cell.merge(state, aggregates[alias][0])


def merge_states(
    target: dict[Any, dict[str, "_AggState"]],
    source: dict[Any, dict[str, "_AggState"]],
    aggregates: Mapping[str, tuple[str, str]],
) -> None:
    """Merge ``source`` group states into ``target`` without mutating source.

    Unlike the internal fold, every first-seen cell is merged into a *fresh*
    accumulator, so long-lived states (e.g. the per-partition states a
    materialized roll-up stores) can be combined repeatedly and still stay
    pristine.  Merging per-partition states in sorted partition order yields
    the exact :meth:`WarehouseTable.aggregate` result, floats included.
    """
    for key, group_states in source.items():
        cells = target.setdefault(key, {})
        for alias, state in group_states.items():
            cell = cells.get(alias)
            if cell is None:
                cell = cells[alias] = _AggState()
            cell.merge(state, aggregates[alias][0])


def finalise_states(
    states: dict[Any, dict[str, "_AggState"]],
    aggregates: Mapping[str, tuple[str, str]],
    grouped: bool,
) -> dict[str, Any] | dict[Any, dict[str, Any]]:
    """Turn merged group states into :meth:`WarehouseTable.aggregate` output."""

    def one(group_states: dict[str, _AggState]) -> dict[str, Any]:
        return {
            alias: group_states[alias].result(aggregates[alias][0])
            for alias in aggregates
        }

    if not grouped:
        empty = {alias: _AggState() for alias in aggregates}
        return one(states.get(None, empty))
    return {key: one(group_states) for key, group_states in states.items()}


def _local_group_keys(
    block: ColumnarBlock,
    group_cols: Sequence[str],
    selection: list[int] | None,
) -> tuple[list[Any], Callable[[Any], Any]]:
    """Per-row local group keys of a block plus their decoder.

    Dictionary-encoded group columns contribute their integer *codes* (cheap
    to hash, one small int per row) instead of the decoded values; the
    returned ``decode`` maps one distinct local key back to the real group
    key (single column: the value itself; several columns: their tuple).
    """
    arrays: list[list[Any]] = []
    dictionaries: list[list[Any] | None] = []
    for column in group_cols:
        pair = block.dictionary(column)
        if pair is not None:
            values, codes = pair
            arrays.append(codes if selection is None else [codes[i] for i in selection])
            dictionaries.append(values)
        else:
            array = block.columns[column]
            arrays.append(array if selection is None else [array[i] for i in selection])
            dictionaries.append(None)

    if len(arrays) == 1:
        dictionary = dictionaries[0]
        if dictionary is None:
            return arrays[0], lambda key: key
        return arrays[0], (
            lambda code: None if code is None else dictionary[code]
        )

    def decode(key_tuple: tuple) -> tuple:
        return tuple(
            value if dictionary is None
            else (None if value is None else dictionary[value])
            for value, dictionary in zip(key_tuple, dictionaries)
        )

    return list(zip(*arrays)), decode


def _group_positions(
    local_keys: list[Any],
    decode: Callable[[Any], Any],
    group_key: Callable[[Any], Any] | None,
    group_cols: Sequence[str],
) -> dict[Any, list[int]]:
    """Selected-row positions per (decoded, mapped) group key.

    Buckets by the cheap local keys first, then decodes / ``group_key``-maps
    each distinct local key exactly once.  When two local keys land on the
    same mapped group (e.g. a ``group_key`` that coarsens values), the merged
    position lists are re-sorted so downstream per-group value order matches a
    sequential row scan exactly.
    """
    local: dict[Any, list[int]] = {}
    try:
        for position, local_key in enumerate(local_keys):
            bucket = local.get(local_key)
            if bucket is None:
                local[local_key] = [position]
            else:
                bucket.append(position)
    except TypeError as exc:
        if group_key is None:
            raise _unhashable_group(group_cols, exc) from exc
        # group_key is the escape hatch for unhashable values: map every row
        # through it before bucketing (positions stay naturally sorted).
        out: dict[Any, list[int]] = {}
        try:
            for position, local_key in enumerate(local_keys):
                key = group_key(decode(local_key))
                out.setdefault(key, []).append(position)
        except TypeError as exc2:
            raise _unhashable_group(group_cols, exc2) from exc2
        return out

    out: dict[Any, list[int]] = {}
    merged = False
    for local_key, positions in local.items():
        key = decode(local_key)
        if group_key is not None:
            key = group_key(key)
        try:
            existing = out.get(key)
        except TypeError as exc:
            raise _unhashable_group(group_cols, exc) from exc
        if existing is None:
            out[key] = positions
        else:
            existing.extend(positions)
            merged = True
    if merged:
        for positions in out.values():
            positions.sort()
    return out


def _selection_vector(
    block: ColumnarBlock,
    range_filters: Sequence[RangeFilter] | None,
    column_predicates: Mapping[str, Callable[[Any], bool]] | None,
) -> list[int] | None:
    """Row indices surviving all filters; ``None`` means every row survives."""
    selection: list[int] | None = None
    filters = list(range_filters or ())
    # Sorted-block fast path: the leading sort-key column is totally ordered
    # across the block, so its range filter is a binary search rather than a
    # column pass.  Conjunctive filters commute, and both paths produce
    # ascending index lists, so evaluating it first never changes the result.
    if filters and block.sort_key:
        lead = block.sort_key[0]
        for index, (column, low, high) in enumerate(filters):
            if column == lead and (low is not None or high is not None):
                span = sorted_range(block.columns[column], low, high)
                if span is not None:
                    start, stop = span
                    if start >= stop:
                        return []
                    if not (start == 0 and stop == block.n_rows):
                        selection = list(range(start, stop))
                    filters.pop(index)
                break
    for column, low, high in filters:
        if low is None and high is None:
            continue
        array = block.columns[column]
        try:
            if selection is None:
                selection = [
                    i for i, v in enumerate(array)
                    if v is not None
                    and (low is None or v >= low)
                    and (high is None or v <= high)
                ]
            else:
                selection = [
                    i for i in selection
                    if array[i] is not None
                    and (low is None or array[i] >= low)
                    and (high is None or array[i] <= high)
                ]
        except TypeError as exc:
            raise WarehouseError(
                f"column {column!r} values have no consistent ordering for range filter: {exc}"
            ) from exc
        if not selection:
            return selection
    for column, predicate in (column_predicates or {}).items():
        array = block.columns[column]
        if selection is None:
            selection = [i for i, v in enumerate(array) if predicate(v)]
        else:
            selection = [i for i in selection if predicate(array[i])]
        if not selection:
            return selection
    return selection


def _zones_might_match(
    stats: dict[str, dict[str, Any]], range_filters: Sequence[RangeFilter]
) -> bool:
    """Conjunctive zone-map check: every filter must possibly match the block."""
    for column, low, high in range_filters:
        column_stats = stats.get(column)
        if column_stats is not None and not _zone_might_match(column_stats, low, high):
            return False
    return True


def _zone_might_match(stats: dict[str, Any], low: Any, high: Any) -> bool:
    if stats.get("min") is None or stats.get("max") is None:
        return True
    try:
        if low is not None and stats["max"] < low:
            return False
        if high is not None and stats["min"] > high:
            return False
    except TypeError:
        return True
    return True


def _refs_in_min_order(refs: list[_BlockRef], column: str) -> list[_BlockRef] | None:
    """Block refs ordered by their ``column`` minimum (``None``-stat blocks
    first, path as tiebreak), or ``None`` when the minima are not mutually
    comparable — callers then fall back to append order without early-exit."""

    def key(ref: _BlockRef) -> tuple:
        stats = ref.stats.get(column) or {}
        return ordering_token(stats.get("min")) + (ref.path,)

    try:
        return sorted(refs, key=key)
    except TypeError:
        return None


def _min_exceeds(ref: _BlockRef, column: str, bound: Any) -> bool:
    """Whether the block's ``column`` minimum provably exceeds ``bound``."""
    stats = ref.stats.get(column)
    minimum = stats.get("min") if stats else None
    if minimum is None:
        return False
    try:
        return minimum > bound
    except TypeError:
        return False


class Warehouse:
    """The collection of warehouse tables backed by one DFS."""

    def __init__(
        self,
        dfs: DistributedFileSystem | None = None,
        block_rows: int = 4096,
        cache_blocks: int = 64,
        compression_level: int = DEFAULT_COMPRESSION_LEVEL,
        durable_manifest: bool = True,
        degraded_reads: bool = False,
        health: SubsystemHealth | None = None,
    ) -> None:
        self.dfs = dfs or DistributedFileSystem()
        self.block_rows = block_rows
        self.cache_blocks = cache_blocks
        self.compression_level = validate_compression_level(compression_level)
        self.durable_manifest = durable_manifest
        self.degraded_reads = degraded_reads
        self.health = health
        self._tables: dict[str, WarehouseTable] = {}
        self._rollup_manager: Any | None = None

    def create_table(
        self,
        name: str,
        columns: Sequence[str],
        partition_column: str,
        partition_by: str = "day",
        if_not_exists: bool = False,
        sort_key: Sequence[str] | None = None,
        compression_level: int | None = None,
        primary_key: str | None = None,
        recover: bool = True,
    ) -> WarehouseTable:
        """Create a table partitioned by ``partition_column`` (by day or by value).

        ``sort_key`` declares clustering columns: every appended partition
        batch is sorted by them before being cut into blocks (see
        :meth:`WarehouseTable.append`).  ``compression_level`` overrides the
        warehouse-wide block compression level for this table.
        ``primary_key`` names the row-identity column required for CDC delta
        application (:meth:`WarehouseTable.append_deltas`); declare it at
        creation so base appends track row locations from the start.

        With ``recover`` (the default), a table whose DFS prefix already
        holds files — this process is reopening a warehouse another process
        (or a crashed run) wrote — rebuilds its in-memory state via
        :meth:`WarehouseTable.recover` before being returned, so the
        exactly-once CDC index survives restarts transparently.
        """
        if name in self._tables:
            if if_not_exists:
                return self._tables[name]
            raise WarehouseError(f"warehouse table {name!r} already exists")
        if partition_by == "day":
            partitioner = day_partitioner(partition_column)
        elif partition_by == "value":
            partitioner = value_partitioner(partition_column)
        else:
            raise WarehouseError(f"unknown partitioning scheme {partition_by!r}")
        table = WarehouseTable(
            name=name,
            columns=columns,
            dfs=self.dfs,
            partitioner=partitioner,
            block_rows=self.block_rows,
            cache_blocks=self.cache_blocks,
            sort_key=sort_key,
            compression_level=(
                self.compression_level if compression_level is None
                else compression_level
            ),
            primary_key=primary_key,
            durable_manifest=self.durable_manifest,
            degraded_reads=self.degraded_reads,
            health=self.health,
        )
        if recover and self.dfs.list_files(f"/warehouse/{name}/"):
            table.recover()
        self._tables[name] = table
        return table

    def table(self, name: str) -> WarehouseTable:
        if name not in self._tables:
            raise WarehouseError(f"no warehouse table named {name!r}")
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def drop_table(self, name: str) -> None:
        table = self.table(name)
        for partition in list(table.partitions()):
            table.drop_partition(partition)
        self.dfs.delete_file(table._manifest_path())
        del self._tables[name]
        if self._rollup_manager is not None:
            self._rollup_manager.discard_table(name)

    @property
    def rollups(self):
        """The warehouse's materialized roll-up registry (created on demand).

        See :mod:`repro.storage.warehouse.rollups`: specs register grouped
        aggregates that are materialised per partition and refreshed
        incrementally (only partitions whose block identity changed are
        re-aggregated, typically by the scheduled migration job).
        """
        if self._rollup_manager is None:
            from .rollups import RollupManager  # deferred: rollups imports us

            self._rollup_manager = RollupManager(self)
        return self._rollup_manager

    def register_rollup(self, spec, refresh: bool = False):
        """Register a :class:`~repro.storage.warehouse.rollups.RollupSpec`
        on this warehouse (convenience for ``warehouse.rollups.register``)."""
        return self.rollups.register(spec, refresh=refresh)

    def total_rows(self) -> int:
        return sum(table.row_count() for table in self._tables.values())

    def compact(
        self, table: str | None = None, min_blocks: int = 2
    ) -> dict[str, list[dict[str, Any]]]:
        """Compact fragmented partitions (of one table, or of every table).

        Only partitions holding at least ``min_blocks`` physical blocks are
        rewritten — a single-block partition is already as merged as it can
        get — except that partitions with outstanding CDC delta blocks (or
        rows suppressed by away-moves) are always folded, whatever their
        block count: folding bounds the merge-on-read cost.

        Partitions are visited hottest-first (by the per-partition read
        counters surfaced in :meth:`WarehouseTable.storage_stats`), so the
        partitions analytics actually touches get their merged layout back
        first if a pass is interrupted.

        Returns ``{table: [per-partition compaction reports]}``, listing only
        tables where work happened; each report additionally carries the
        partition key under ``"partition"``.
        """
        if min_blocks < 2:
            raise WarehouseError("min_blocks must be >= 2")
        names = [table] if table is not None else self.table_names()
        out: dict[str, list[dict[str, Any]]] = {}
        for name in names:
            target = self.table(name)
            reports = []
            ordered = sorted(
                target.partitions(),
                key=lambda p: (-target._read_counts.get(p, 0), p),
            )
            for partition in ordered:
                physical = len(target._partitions.get(partition, ()))
                deltas = target.delta_block_count(partition)
                dirty = deltas > 0 or bool(target._suppression_epoch.get(partition))
                if physical + deltas < min_blocks and not dirty:
                    continue
                report = target.compact_partition(partition)
                report["partition"] = partition
                reports.append(report)
            if reports:
                out[name] = reports
        return out

    def storage_stats(self) -> dict[str, dict[str, Any]]:
        """Per-table :meth:`WarehouseTable.storage_stats`, keyed by table name."""
        return {name: self.table(name).storage_stats() for name in self.table_names()}
